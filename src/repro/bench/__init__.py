"""Benchmark harness reproducing the paper's tables and figures."""

from .calibration import MB, paper_cluster, paper_costs
from .experiments import ALL_EXPERIMENTS, ExperimentResult
from .report import format_result, run_all

__all__ = [
    "MB",
    "paper_cluster",
    "paper_costs",
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "format_result",
    "run_all",
]
