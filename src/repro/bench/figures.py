"""Bar-chart rendering of experiment results.

The paper presents Figures 6-14 as grouped horizontal bar charts
(series per command, one group per worker count).  This module renders
the reproduced results in the same visual form, in plain text::

    == fig6: Engine, Isosurface, total runtime [s] ==
         1 | SimpleIso    ################################  34.8
           | ViewerIso    ########################          26.0
           | IsoDataMan   ###############                   16.8
         2 | ...

Use ``python -m repro figures fig6 fig12`` or
:func:`format_barchart` directly.
"""

from __future__ import annotations

from typing import Sequence

from .experiments import ALL_EXPERIMENTS, ExperimentResult

__all__ = ["format_barchart", "main"]

_BAR = "#"


def format_barchart(
    result: ExperimentResult,
    value_columns: Sequence[str] | None = None,
    label_column: str | None = None,
    width: int = 44,
) -> str:
    """Render numeric columns of ``result`` as grouped horizontal bars.

    ``label_column`` defaults to the first column; ``value_columns`` to
    every numeric column after it.
    """
    if not result.rows:
        return f"== {result.experiment_id}: {result.title} ==\n(no rows)"
    columns = list(result.columns)
    label_column = label_column or columns[0]
    if value_columns is None:
        value_columns = [
            c
            for c in columns
            if c != label_column
            and isinstance(result.rows[0].get(c), (int, float))
        ]
    if not value_columns:
        raise ValueError("no numeric columns to chart")
    peak = max(
        abs(float(row[c]))
        for row in result.rows
        for c in value_columns
        if row.get(c) is not None
    )
    if peak <= 0:
        peak = 1.0
    name_w = max(len(c) for c in value_columns)
    label_w = max(len(str(row[label_column])) for row in result.rows)
    lines = [f"== {result.experiment_id}: {result.title} =="]
    for row in result.rows:
        label = str(row[label_column])
        for i, column in enumerate(value_columns):
            value = float(row[column])
            bar = _BAR * max(1, round(abs(value) / peak * width)) if value else ""
            shown_label = label if i == 0 else ""
            lines.append(
                f"{shown_label:>{label_w}} | {column:<{name_w}}  "
                f"{bar:<{width}}  {value:.2f}"
            )
        lines.append(f"{'':>{label_w}} |")
    if result.notes:
        lines.append(f"   note: {result.notes}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    import sys

    names = list(argv if argv is not None else sys.argv[1:]) or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments {unknown}; known: {sorted(ALL_EXPERIMENTS)}")
        return 2
    for name in names:
        result = ALL_EXPERIMENTS[name]()
        try:
            print(format_barchart(result))
        except ValueError:
            from .report import format_result

            print(format_result(result))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
