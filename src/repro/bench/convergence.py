"""Numerical-verification studies: do the kernels converge at the
expected order?

Not a paper figure — the credibility layer beneath all of them.  Each
study compares a computed quantity against a closed-form answer over a
resolution (or tolerance) ladder and estimates the observed convergence
order from consecutive errors:

* isosurface area of a sphere → exact ``4 π r²`` (linear interpolation
  on tetrahedra ⇒ 2nd order in ``h``),
* λ2 of solid-body rotation on a *warped* grid → exact ``−ω²``
  (central differences ⇒ 2nd order),
* pathline orbit closure in a rotation field → error shrinks with the
  integrator tolerance.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.isosurface import extract_block_isosurface
from ..algorithms.lambda2 import lambda2_field
from ..algorithms.pathlines import trace_pathline
from ..grids.block import StructuredBlock
from ..grids.multiblock import MultiBlockDataset, TimeSeries
from ..synth.fields import cartesian_lattice, warp_lattice
from .experiments import ExperimentResult

__all__ = [
    "observed_orders",
    "isosurface_area_convergence",
    "lambda2_convergence",
    "pathline_tolerance_study",
]


def observed_orders(hs: list[float], errors: list[float]) -> list[float]:
    """Pairwise convergence order estimates log(e1/e2)/log(h1/h2)."""
    orders = []
    for (h1, e1), (h2, e2) in zip(zip(hs, errors), zip(hs[1:], errors[1:])):
        if e1 <= 0 or e2 <= 0:
            orders.append(float("inf"))
        else:
            orders.append(float(np.log(e1 / e2) / np.log(h1 / h2)))
    return orders


def isosurface_area_convergence(
    resolutions: tuple[int, ...] = (9, 17, 33), radius: float = 0.6
) -> ExperimentResult:
    """Sphere-area error of the tetrahedral isosurface vs resolution."""
    result = ExperimentResult(
        experiment_id="convergence-iso-area",
        title=f"Isosurface area of the r = {radius} sphere",
        columns=["n", "h", "area", "rel_error", "observed_order"],
        notes="Exact area 4 pi r^2; linear edge interpolation is 2nd order.",
    )
    exact = 4.0 * np.pi * radius**2
    hs, errors = [], []
    for n in resolutions:
        block = StructuredBlock(cartesian_lattice((-1, -1, -1), (1, 1, 1), (n, n, n)))
        block.set_field("r", np.linalg.norm(block.coords, axis=-1))
        mesh = extract_block_isosurface(block, "r", radius)
        error = abs(mesh.area() - exact) / exact
        hs.append(2.0 / (n - 1))
        errors.append(error)
        result.rows.append(
            {"n": n, "h": hs[-1], "area": mesh.area(), "rel_error": error,
             "observed_order": float("nan")}
        )
    for row, order in zip(result.rows[1:], observed_orders(hs, errors)):
        row["observed_order"] = order
    return result


def lambda2_convergence(
    resolutions: tuple[int, ...] = (9, 17, 33),
) -> ExperimentResult:
    """Velocity-gradient / λ2 truncation error on a fixed warped grid.

    Velocity is the (nonlinear, divergence-free) Taylor-Green-like field
    ``u = (sin πy cos πz, sin πz cos πx, sin πx cos πy)``; its gradient
    tensor — and hence λ2 — is known in closed form, so refining the
    *same* smooth curvilinear mapping must show second-order decay of
    the interior error.
    """
    from ..algorithms.lambda2 import lambda2_points
    from ..grids.geometry import velocity_gradient_tensor

    result = ExperimentResult(
        experiment_id="convergence-lambda2",
        title="λ2 of a nonlinear analytic field on a warped grid",
        columns=["n", "h", "rms_interior_error", "observed_order"],
        notes="Central differences through the curvilinear mapping: 2nd order.",
    )

    def velocity(p):
        x, y, z = np.pi * p[..., 0], np.pi * p[..., 1], np.pi * p[..., 2]
        return np.stack(
            [np.sin(y) * np.cos(z), np.sin(z) * np.cos(x), np.sin(x) * np.cos(y)],
            axis=-1,
        )

    def exact_gradient(p):
        x, y, z = np.pi * p[..., 0], np.pi * p[..., 1], np.pi * p[..., 2]
        zero = np.zeros_like(x)
        g = np.stack(
            [
                np.stack([zero, np.pi * np.cos(y) * np.cos(z),
                          -np.pi * np.sin(y) * np.sin(z)], axis=-1),
                np.stack([-np.pi * np.sin(x) * np.sin(z), zero,
                          np.pi * np.cos(z) * np.cos(x)], axis=-1),
                np.stack([np.pi * np.cos(x) * np.cos(y),
                          -np.pi * np.sin(x) * np.sin(y), zero], axis=-1),
            ],
            axis=-2,
        )
        return g

    hs, errors = [], []
    for n in resolutions:
        coords = cartesian_lattice((-1, -1, -1), (1, 1, 1), (n, n, n))
        # The *same* smooth mapping at every level (fixed amplitude).
        coords = warp_lattice(coords, amplitude=0.04, frequency=2.0)
        block = StructuredBlock(coords)
        block.set_field("velocity", velocity(block.coords))
        lam = lambda2_points(velocity_gradient_tensor(block))
        lam_exact = lambda2_points(exact_gradient(block.coords))
        diff = (lam - lam_exact)[2:-2, 2:-2, 2:-2]
        error = float(np.sqrt(np.mean(diff**2)))
        hs.append(2.0 / (n - 1))
        errors.append(error)
        result.rows.append(
            {"n": n, "h": hs[-1], "rms_interior_error": error,
             "observed_order": float("nan")}
        )
    for row, order in zip(result.rows[1:], observed_orders(hs, errors)):
        row["observed_order"] = order
    return result


def pathline_tolerance_study(
    rtols: tuple[float, ...] = (1e-2, 1e-4, 1e-6), omega: float = 1.0
) -> ExperimentResult:
    """Orbit-closure error of the adaptive tracer vs its tolerance."""
    result = ExperimentResult(
        experiment_id="convergence-pathline",
        title="Pathline orbit closure after one revolution",
        columns=["rtol", "closure_error", "n_points"],
        notes="Tighter tolerances must strictly reduce the closure error.",
    )

    def level(i):
        block = StructuredBlock(
            cartesian_lattice((-2, -2, -1), (2, 2, 1), (17, 17, 5))
        )
        x, y = block.coords[..., 0], block.coords[..., 1]
        block.set_field(
            "velocity",
            np.stack([-omega * y, omega * x, np.zeros_like(x)], axis=-1),
        )
        return MultiBlockDataset([block], time=float(i) * 10.0)

    series = TimeSeries([0.0, 10.0], level)
    period = 2.0 * np.pi / omega
    seed = np.array([1.0, 0.0, 0.0])
    for rtol in rtols:
        path = trace_pathline(
            series, seed, 0.0, period, rtol=rtol, max_steps=20000
        )
        error = float(np.linalg.norm(path.points[-1] - seed))
        result.rows.append(
            {"rtol": rtol, "closure_error": error, "n_points": path.n_points}
        )
    return result
