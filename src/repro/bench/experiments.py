"""One experiment per table/figure of the paper's evaluation (§7).

Every function returns an :class:`ExperimentResult` whose rows mirror
the series the paper plots.  Methodology follows §7: "All commands that
use the data manager operated on cached data ... one single call of the
command at hand was issued in advance of the measurements", except for
the prefetching experiments (Figs. 11 and 14), which "examine the cold
cache behavior".

Datasets are the synthetic Engine and Propfan stand-ins at laptop-scale
actual resolution with paper-scale modeled sizes (Table 1); timings come
from the calibrated simulated testbed (see calibration.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Sequence

import numpy as np

from .. import build_engine, build_propfan
from ..core.session import CommandResult, ViracochaSession
from .calibration import paper_cluster, paper_costs

__all__ = [
    "ExperimentResult",
    "WORKER_COUNTS",
    "PATHLINE_WORKER_COUNTS",
    "table1_datasets",
    "fig6_engine_iso_runtime",
    "fig7_propfan_iso_runtime",
    "fig8_iso_latency",
    "fig9_engine_vortex_runtime",
    "fig10_propfan_vortex_runtime",
    "fig11_vortex_prefetch",
    "fig12_vortex_latency",
    "fig13_pathlines_runtime",
    "fig14_pathline_prefetch",
    "fig15_component_breakdown",
    "ALL_EXPERIMENTS",
]

#: Figures 6-12 sweep 1..16 workers; the pathline figures stop at 8.
WORKER_COUNTS = (1, 2, 4, 8, 16)
PATHLINE_WORKER_COUNTS = (1, 2, 4, 8)

#: per-dataset iso levels (inside each pressure field's range) and
#: viewpoints (near the surface region, as an exploring user would sit).
ISO_LEVELS = {"engine": -0.3, "propfan": -2.6}
VIEWPOINTS = {"engine": (0.0, 0.0, -5.0), "propfan": (1.5, 0.0, -1.5)}
VIEWER_EXTRA = {"max_triangles": 2000}


def iso_params(dataset) -> dict[str, Any]:
    return {
        "isovalue": ISO_LEVELS[dataset.spec.name],
        "scalar": "pressure",
        "time_range": (0, 1),
        "viewpoint": VIEWPOINTS[dataset.spec.name],
    }
VORTEX_PARAMS = {"threshold": -0.5, "time_range": (0, 1)}
STREAM_EXTRA = {"batch_cells": 16, "slab_cells": 1}


@dataclass
class ExperimentResult:
    """A reproduced table/figure: labelled rows of measured values."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def column(self, name: str) -> list[Any]:
        return [row[name] for row in self.rows]

    def row_for(self, **match: Any) -> dict[str, Any]:
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match}")


@lru_cache(maxsize=None)
def engine_dataset():
    return build_engine(base_resolution=5)


@lru_cache(maxsize=None)
def propfan_dataset():
    return build_propfan(base_resolution=5)


def _session(dataset, n_workers: int) -> ViracochaSession:
    return ViracochaSession(
        dataset,
        cluster_config=paper_cluster(n_workers),
        costs=paper_costs(),
    )


def _pathline_seeds(n: int = 16) -> list[list[float]]:
    rng = np.random.default_rng(42)
    return [
        [rng.uniform(-0.6, 0.6), rng.uniform(-0.6, 0.6), rng.uniform(0.3, 1.3)]
        for _ in range(n)
    ]


def pathline_params() -> dict[str, Any]:
    return {
        "seeds": _pathline_seeds(),
        "time_range": (0, 12),
        "rtol": 1e-3,
        "max_steps": 120,
        "local_cache_blocks": 8,
    }


# ------------------------------------------------------------- Table 1


def table1_datasets() -> ExperimentResult:
    """Table 1: multi-block test data sets."""
    result = ExperimentResult(
        experiment_id="table1",
        title="Multi-block test data sets",
        columns=["dataset", "n_timesteps", "n_blocks", "size_on_disk_gb"],
        notes="Modeled on-disk sizes; paper: Engine 1.12 GB, Propfan 19.5 GB.",
    )
    for ds in (engine_dataset(), propfan_dataset()):
        result.rows.append(
            {
                "dataset": ds.spec.name,
                "n_timesteps": ds.spec.n_timesteps,
                "n_blocks": ds.spec.n_blocks,
                "size_on_disk_gb": round(ds.spec.size_on_disk / 1024**3, 3),
            }
        )
    return result


# ------------------------------------------------- iso total runtime


def _iso_runtime(dataset, experiment_id: str, title: str,
                 workers: Sequence[int] = WORKER_COUNTS) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=["workers", "SimpleIso", "ViewerIso", "IsoDataMan"],
        notes="DMS commands measured on cached data (one warm-up call, §7).",
    )
    params = iso_params(dataset)
    for nw in workers:
        session = _session(dataset, nw)
        simple = session.run("iso-simple", params=params)
        session.warm_cache("iso-dataman", params=params)
        dataman = session.run("iso-dataman", params=params)
        viewer = session.run("iso-viewer", params={**params, **VIEWER_EXTRA})
        result.rows.append(
            {
                "workers": nw,
                "SimpleIso": simple.total_runtime,
                "ViewerIso": viewer.total_runtime,
                "IsoDataMan": dataman.total_runtime,
            }
        )
    return result


def fig6_engine_iso_runtime(workers: Sequence[int] = WORKER_COUNTS) -> ExperimentResult:
    """Figure 6: Engine, isosurface, total runtime."""
    return _iso_runtime(engine_dataset(), "fig6", "Engine, Isosurface, total runtime [s]", workers)


def fig7_propfan_iso_runtime(workers: Sequence[int] = WORKER_COUNTS) -> ExperimentResult:
    """Figure 7: Propfan, isosurface, total runtime."""
    return _iso_runtime(propfan_dataset(), "fig7", "Propfan, Isosurface, total runtime [s]", workers)


# ------------------------------------------------------ iso latency


def fig8_iso_latency(workers: Sequence[int] = WORKER_COUNTS) -> ExperimentResult:
    """Figure 8: latency times for isosurface extraction (Propfan)."""
    result = ExperimentResult(
        experiment_id="fig8",
        title="Propfan, isosurface latency [s]",
        columns=["workers", "ViewerIso", "IsoDataMan"],
        notes="IsoDataMan latency equals its total runtime (single package).",
    )
    params = iso_params(propfan_dataset())
    for nw in workers:
        session = _session(propfan_dataset(), nw)
        session.warm_cache("iso-dataman", params=params)
        dataman = session.run("iso-dataman", params=params)
        viewer = session.run("iso-viewer", params={**params, **VIEWER_EXTRA})
        result.rows.append(
            {"workers": nw, "ViewerIso": viewer.latency, "IsoDataMan": dataman.latency}
        )
    return result


# ------------------------------------------------ vortex total runtime


def _vortex_runtime(dataset, experiment_id: str, title: str,
                    workers: Sequence[int] = WORKER_COUNTS) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=["workers", "SimpleVortex", "StreamedVortex", "VortexDataMan"],
        notes="DMS commands measured on cached data (§7).",
    )
    for nw in workers:
        session = _session(dataset, nw)
        simple = session.run("vortex-simple", params=VORTEX_PARAMS)
        session.warm_cache("vortex-dataman", params=VORTEX_PARAMS)
        dataman = session.run("vortex-dataman", params=VORTEX_PARAMS)
        streamed = session.run(
            "vortex-streamed", params={**VORTEX_PARAMS, **STREAM_EXTRA}
        )
        result.rows.append(
            {
                "workers": nw,
                "SimpleVortex": simple.total_runtime,
                "StreamedVortex": streamed.total_runtime,
                "VortexDataMan": dataman.total_runtime,
            }
        )
    return result


def fig9_engine_vortex_runtime(workers: Sequence[int] = WORKER_COUNTS) -> ExperimentResult:
    """Figure 9: Engine, λ2, total runtime."""
    return _vortex_runtime(engine_dataset(), "fig9", "Engine, Lambda-2, total runtime [s]", workers)


def fig10_propfan_vortex_runtime(workers: Sequence[int] = WORKER_COUNTS) -> ExperimentResult:
    """Figure 10: Propfan, λ2, total runtime."""
    return _vortex_runtime(propfan_dataset(), "fig10", "Propfan, Lambda-2, total runtime [s]", workers)


# --------------------------------------------------- vortex prefetch


def fig11_vortex_prefetch(workers: Sequence[int] = WORKER_COUNTS) -> ExperimentResult:
    """Figure 11: Engine λ2 runtime without and with prefetching.

    Cold caches: "the runtimes for vortex extraction without data
    management are noticeably higher than the values gained with the
    Viracocha-DMS, which now starts with cold caches."
    """
    result = ExperimentResult(
        experiment_id="fig11",
        title="Engine, Lambda-2, cold-cache runtime without/with prefetching [s]",
        columns=["workers", "without_prefetching", "with_prefetching"],
        notes="Cold caches; 'without' disables the OBL system prefetcher.",
    )
    for nw in workers:
        without = _session(engine_dataset(), nw).run(
            "vortex-dataman", params={**VORTEX_PARAMS, "prefetch": "none"}
        )
        with_pf = _session(engine_dataset(), nw).run(
            "vortex-dataman", params=VORTEX_PARAMS
        )
        result.rows.append(
            {
                "workers": nw,
                "without_prefetching": without.total_runtime,
                "with_prefetching": with_pf.total_runtime,
            }
        )
    return result


# ----------------------------------------------------- vortex latency


def fig12_vortex_latency(workers: Sequence[int] = WORKER_COUNTS) -> ExperimentResult:
    """Figure 12: latency times for vortex extraction (Propfan)."""
    result = ExperimentResult(
        experiment_id="fig12",
        title="Propfan, vortex latency [s]",
        columns=["workers", "StreamedVortex", "VortexDataMan"],
        notes="Paper text: ~45 s final (16 workers) vs ~4.2 s first partial result.",
    )
    for nw in workers:
        session = _session(propfan_dataset(), nw)
        session.warm_cache("vortex-dataman", params=VORTEX_PARAMS)
        dataman = session.run("vortex-dataman", params=VORTEX_PARAMS)
        streamed = session.run(
            "vortex-streamed", params={**VORTEX_PARAMS, **STREAM_EXTRA}
        )
        result.rows.append(
            {
                "workers": nw,
                "StreamedVortex": streamed.latency,
                "VortexDataMan": dataman.latency,
            }
        )
    return result


# -------------------------------------------------------- pathlines


def fig13_pathlines_runtime(
    workers: Sequence[int] = PATHLINE_WORKER_COUNTS,
) -> ExperimentResult:
    """Figure 13: Engine, pathlines, total runtime."""
    result = ExperimentResult(
        experiment_id="fig13",
        title="Engine, Pathlines, total runtime [s]",
        columns=["workers", "SimplePathlines", "PathlinesDataMan"],
        notes="PathlinesDataMan measured on fully cached data (§7.3).",
    )
    params = pathline_params()
    for nw in workers:
        session = _session(engine_dataset(), nw)
        simple = session.run("pathlines-simple", params=params)
        session.warm_cache("pathlines-dataman", params=params)
        dataman = session.run("pathlines-dataman", params=params)
        result.rows.append(
            {
                "workers": nw,
                "SimplePathlines": simple.total_runtime,
                "PathlinesDataMan": dataman.total_runtime,
            }
        )
    return result


def fig14_pathline_prefetch(
    workers: Sequence[int] = PATHLINE_WORKER_COUNTS,
) -> ExperimentResult:
    """Figure 14: prefetching influence on pathline computation.

    Both series run on uncached data ("otherwise prefetching would be
    unnecessary"); the Markov prefetcher overlaps I/O with integration.
    The miss-elimination column reports the after-learning condition
    (retained Markov graph, cold caches) under which the paper saw "a
    maximum of 95% cache misses eliminated".
    """
    result = ExperimentResult(
        experiment_id="fig14",
        title="Engine, pathlines, cold-cache runtime without/with Markov prefetching [s]",
        columns=[
            "workers",
            "without_prefetching",
            "with_prefetching",
            "saving_pct",
            "misses_eliminated_after_learning_pct",
        ],
    )
    params = pathline_params()
    for nw in workers:
        without = _session(engine_dataset(), nw).run(
            "pathlines-dataman", params={**params, "prefetch": "none"}
        )
        session = _session(engine_dataset(), nw)
        with_pf = session.run(
            "pathlines-dataman", params={**params, "retain_markov": True}
        )
        # After-learning condition: retained Markov graph, cold caches.
        session.clear_caches()
        relearned = session.run(
            "pathlines-dataman", params={**params, "retain_markov": True}
        )
        uncovered = relearned.dms["misses"] - relearned.dms["misses_covered"]
        eliminated = 100.0 * (1.0 - uncovered / max(without.dms["misses"], 1))
        result.rows.append(
            {
                "workers": nw,
                "without_prefetching": without.total_runtime,
                "with_prefetching": with_pf.total_runtime,
                "saving_pct": 100.0
                * (1.0 - with_pf.total_runtime / without.total_runtime),
                "misses_eliminated_after_learning_pct": eliminated,
            }
        )
    return result


# ------------------------------------------------------- component pie


def fig15_component_breakdown() -> ExperimentResult:
    """Figure 15: essential isosurface components, Engine, one worker.

    Paper: SimpleIso ≈ 50 % compute / 49 % read / 1 % send;
    IsoDataMan ≈ 85 % / 5 % / 10 %.
    """
    result = ExperimentResult(
        experiment_id="fig15",
        title="Engine isosurface component shares (1 worker) [%]",
        columns=["command", "compute_pct", "read_pct", "send_pct"],
    )
    params = iso_params(engine_dataset())
    session = _session(engine_dataset(), 1)
    simple = session.run("iso-simple", params=params)
    session.warm_cache("iso-dataman", params=params)
    dataman = session.run("iso-dataman", params=params)
    for name, res in (("SimpleIso", simple), ("IsoDataMan", dataman)):
        fr = res.breakdown_fractions
        result.rows.append(
            {
                "command": name,
                "compute_pct": 100.0 * fr["compute"],
                "read_pct": 100.0 * fr["read"],
                "send_pct": 100.0 * fr["send"],
            }
        )
    return result


#: registry used by the report generator and the pytest benchmarks.
ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1_datasets,
    "fig6": fig6_engine_iso_runtime,
    "fig7": fig7_propfan_iso_runtime,
    "fig8": fig8_iso_latency,
    "fig9": fig9_engine_vortex_runtime,
    "fig10": fig10_propfan_vortex_runtime,
    "fig11": fig11_vortex_prefetch,
    "fig12": fig12_vortex_latency,
    "fig13": fig13_pathlines_runtime,
    "fig14": fig14_pathline_prefetch,
    "fig15": fig15_component_breakdown,
}
