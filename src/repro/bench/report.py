"""Textual rendering of experiment results.

``python -m repro.bench.report`` regenerates every table and figure of
the paper's evaluation and prints them as aligned text tables (the
series the paper plots as bar charts).
"""

from __future__ import annotations

import sys
from typing import Iterable

from .experiments import ALL_EXPERIMENTS, ExperimentResult

__all__ = ["format_result", "run_all", "main"]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_result(result: ExperimentResult) -> str:
    """Render one experiment as an aligned text table."""
    header = [*result.columns]
    rows = [[_fmt(row.get(col, "")) for col in header] for row in result.rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"== {result.experiment_id}: {result.title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    if result.notes:
        lines.append(f"   note: {result.notes}")
    return "\n".join(lines)


def run_all(only: Iterable[str] | None = None) -> list[ExperimentResult]:
    """Execute (a subset of) the experiments and return their results."""
    names = list(only) if only else list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; known: {sorted(ALL_EXPERIMENTS)}")
    return [ALL_EXPERIMENTS[name]() for name in names]


def results_to_json(results: list[ExperimentResult]) -> str:
    """Machine-readable dump (CI trend tracking)."""
    import json

    payload = [
        {
            "experiment_id": r.experiment_id,
            "title": r.title,
            "columns": r.columns,
            "rows": r.rows,
            "notes": r.notes,
        }
        for r in results
    ]
    return json.dumps(payload, indent=2)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    json_path = None
    if "--json" in argv:
        idx = argv.index("--json")
        try:
            json_path = argv[idx + 1]
        except IndexError:
            print("--json requires an output path")
            return 2
        del argv[idx : idx + 2]
    results = run_all(argv or None)
    for result in results:
        print(format_result(result))
        print()
    if json_path:
        with open(json_path, "w") as fh:
            fh.write(results_to_json(results))
        print(f"wrote {json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
