"""Calibration of the simulated testbed to the paper's measurements.

The paper's hardware (§6.2): a SUN Fire 6800 node (24 UltraSPARC III Cu
at 900 MHz, 24 GB RAM) as the post-processing backend, a dual-XEON PC
as the visualization client, data on a network fileserver.

Anchors taken from the paper's *text* (bar-chart axes are only
approximate):

* Fig. 15 — SimpleIso on Engine splits ≈ 50 % compute / 49 % read /
  1 % send; IsoDataMan ≈ 85 / 5 / 10.  With one Engine time level at
  ≈ 17.8 modeled MB this pins the effective fileserver throughput near
  1 MB/s (2004-era loaded NFS) and iso compute near 17 s.
* §7.2 — VortexDataMan on Propfan, 16 workers ≈ 45 s; StreamedVortex
  first partial result ≈ 4.2 s.
* Fig. 9 — Engine SimpleVortex at 1 worker sits under the 100 s axis.
* Fig. 13/14 — Engine pathlines run minutes at 1 worker; Markov
  prefetching saves up to 40 % and eliminates up to 95 % of misses.

Only the one-worker Engine iso numbers and the Propfan 16-worker vortex
number were used to fix constants; everything else the model predicts.
"""

from __future__ import annotations

from ..core.costs import CostModel
from ..des.cluster import ClusterConfig

__all__ = ["paper_cluster", "paper_costs", "MB"]

MB = 1024 * 1024


def paper_cluster(n_workers: int) -> ClusterConfig:
    """The simulated SUN Fire 6800 + fileserver + client testbed."""
    return ClusterConfig(
        n_workers=n_workers,
        cpu_rate=1.0e8,  # abstract work units / s / CPU
        # Effective fileserver throughput (loaded 100 Mbit NFS path);
        # two service streams model its RAID/daemon concurrency.
        fileserver_bandwidth=1.0 * MB,
        fileserver_latency=10e-3,
        fileserver_streams=2,
        # Node-local scratch disks (DMS L2): early-2000s SCSI.
        local_disk_bandwidth=35.0 * MB,
        local_disk_latency=8e-3,
        # Shared-memory MPI inside the SMP node.
        fabric_bandwidth=400.0 * MB,
        fabric_latency=40e-6,
        fabric_streams=8,
        # TCP/IP to the visualization host (shares the site LAN).
        client_bandwidth=2.0 * MB,
        client_latency=3e-3,
    )


def paper_costs() -> CostModel:
    """Per-modeled-cell work constants (see module docstring)."""
    return CostModel(
        iso_scan_per_cell=1200.0,
        iso_triangulate_per_cell=7000.0,
        bsp_per_cell=1500.0,
        lambda2_per_cell=6000.0,
        # Per velocity sample.  Calibrated for the embedded-RK45 batch
        # tracer (6 stages/attempt); the old step-doubling RK4 tracer
        # took ~3x more samples per accepted step, with 1.2e6 here.
        pathline_sample=3.6e6,
        merge_per_byte=0.02,
        command_setup=2.0e6,
        result_wire_factor=0.2,
        stream_packet_overhead=1.5e6,
        streaming_compute_factor=1.12,
    )
