"""Generic parameter-sweep harness for user-defined studies.

The built-in experiments reproduce the paper's figures; this module is
the reusable machinery for new questions of the same shape — "run
command X over worker counts W and parameter grid P, tabulate runtime /
latency / anything else":

    sweep = Sweep(
        dataset=build_engine(base_resolution=5),
        command="vortex-streamed",
        base_params={"time_range": (0, 1)},
    )
    result = sweep.run(
        workers=(1, 4),
        grid={"threshold": [-0.2, -0.5], "batch_cells": [8, 64]},
        warm=True,
    )

Each grid point becomes one row; metrics extend via callables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Mapping, Sequence

from ..core.session import CommandResult, ViracochaSession
from .calibration import paper_cluster, paper_costs
from .experiments import ExperimentResult

__all__ = ["DEFAULT_METRICS", "Sweep"]

#: metric name -> extractor over a CommandResult.
DEFAULT_METRICS: dict[str, Callable[[CommandResult], Any]] = {
    "total_s": lambda r: r.total_runtime,
    "latency_s": lambda r: r.latency,
    "packets": lambda r: r.n_packets,
    "triangles": lambda r: getattr(r.geometry, "n_triangles", 0),
}


@dataclass
class Sweep:
    """A command swept over worker counts and a parameter grid."""

    dataset: Any
    command: str
    base_params: Mapping[str, Any] = field(default_factory=dict)
    metrics: Mapping[str, Callable[[CommandResult], Any]] = field(
        default_factory=lambda: dict(DEFAULT_METRICS)
    )
    cluster_factory: Callable[[int], Any] = paper_cluster
    costs_factory: Callable[[], Any] = paper_costs

    def run(
        self,
        workers: Sequence[int] = (1,),
        grid: Mapping[str, Sequence[Any]] | None = None,
        warm: bool = False,
        warm_command: str | None = None,
    ) -> ExperimentResult:
        """Execute the sweep; one row per (workers, grid point)."""
        grid = dict(grid or {})
        keys = sorted(grid)
        for key, values in grid.items():
            if not values:
                raise ValueError(f"grid axis {key!r} has no values")
        result = ExperimentResult(
            experiment_id=f"sweep-{self.command}",
            title=f"{self.command} sweep",
            columns=["workers", *keys, *self.metrics],
        )
        combos = list(product(*(grid[k] for k in keys))) or [()]
        for n_workers in workers:
            session = ViracochaSession(
                self.dataset,
                cluster_config=self.cluster_factory(n_workers),
                costs=self.costs_factory(),
            )
            if warm:
                first = dict(self.base_params)
                first.update(zip(keys, combos[0]))
                session.warm_cache(warm_command or self.command, params=first)
            for combo in combos:
                params = dict(self.base_params)
                params.update(zip(keys, combo))
                run = session.run(self.command, params=params)
                row: dict[str, Any] = {"workers": n_workers}
                row.update(zip(keys, combo))
                for name, extract in self.metrics.items():
                    row[name] = extract(run)
                result.rows.append(row)
        return result
