"""Ablation studies for the design decisions DESIGN.md calls out.

These go beyond the paper's figures: each isolates one mechanism the
paper *describes or justifies in prose* and measures its effect —
replacement policies (§4.2: "foremost FBR ... less cache misses"),
the secondary disk-cache tier (§4.2), adaptive loading-strategy
selection (§4.3), the streamed batch-size trade-off (§5.2), Markov
prediction width, and the rejected compression idea (§4.3).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.session import ViracochaSession
from ..dms.cache import CacheTier
from ..dms.compression import GZIP_2004, LZO_2004
from ..dms.proxy import DMSConfig
from .calibration import MB, paper_cluster, paper_costs
from .experiments import (
    ExperimentResult,
    engine_dataset,
    iso_params,
    pathline_params,
)

__all__ = [
    "replacement_policy_study",
    "l2_tier_study",
    "adaptive_loading_study",
    "stream_batch_size_study",
    "markov_width_study",
    "compression_study",
    "ALL_ABLATIONS",
]


# ------------------------------------------------- replacement policies


def interactive_request_stream(
    n_hot: int = 8,
    n_cold: int = 40,
    sweeps: int = 12,
    scan_every: int = 3,
    seed: int = 7,
) -> list[int]:
    """A CFD-exploration-like block request stream.

    Models the paper's "extensive interactive data analysis where raw
    data is frequently reused": repeated parameter sweeps hammer a hot
    working set (the time level under investigation), interleaved with
    occasional sequential scans through other time levels (animation
    preview) that pollute a recency-only cache.  Halfway through, the
    user moves on to a *different* time level (the hot set shifts) —
    the pattern that exposes plain LFU's stale-frequency weakness and
    that FBR's section rule was designed for.
    """
    rng = np.random.default_rng(seed)
    hot_a = list(range(n_hot))
    hot_b = list(range(n_hot + n_cold, n_hot + n_cold + n_hot))
    cold = list(range(n_hot, n_hot + n_cold))
    stream: list[int] = []
    for sweep in range(sweeps):
        hot = hot_a if sweep < sweeps // 2 else hot_b
        order = list(hot)
        rng.shuffle(order)
        stream.extend(order)
        if sweep % scan_every == scan_every - 1:
            stream.extend(cold)  # one full sequential scan
    return stream


def replacement_policy_study(capacity_blocks: int = 12) -> ExperimentResult:
    """Miss counts of LRU / LFU / FBR on the interactive stream."""
    result = ExperimentResult(
        experiment_id="ablation-replacement",
        title=f"Cache replacement on an interactive CFD stream "
        f"(capacity {capacity_blocks} blocks)",
        columns=["policy", "misses", "hits", "miss_rate_pct"],
        notes='Paper §4.2: "strategies based on frequency, foremost FBR, '
        'turned out to produce less cache misses."',
    )
    stream = interactive_request_stream()
    for policy in ("lru", "lfu", "fbr"):
        tier = CacheTier(capacity_blocks, policy)
        for key in stream:
            if tier.get(key) is None:
                tier.put(key, f"block-{key}", 1)
        result.rows.append(
            {
                "policy": policy,
                "misses": tier.stats.misses,
                "hits": tier.stats.hits,
                "miss_rate_pct": 100.0 * tier.stats.miss_rate,
            }
        )
    return result


# ------------------------------------------------------------ L2 tier


def l2_tier_study() -> ExperimentResult:
    """Effect of the optional disk tier when L1 is under pressure."""
    engine = engine_dataset()
    block_bytes = max(engine.spec.modeled_block_bytes)
    params = {**iso_params(engine), "time_range": (0, 3)}
    result = ExperimentResult(
        experiment_id="ablation-l2",
        title="Two-tier cache: warm re-run with an undersized L1 [s]",
        columns=["config", "runtime_s", "l1_hits", "l2_hits", "misses"],
        notes="L1 holds ~one time level of three; the disk tier absorbs "
        "what spills instead of forcing fileserver re-reads (§4.2).",
    )
    for label, l2 in (("L1 only", None), ("L1 + L2 disk tier", 200 * block_bytes)):
        cfg = DMSConfig(l1_capacity=26 * block_bytes, l2_capacity=l2)
        session = ViracochaSession(
            engine,
            cluster_config=paper_cluster(1),
            costs=paper_costs(),
            dms_config=cfg,
        )
        session.warm_cache("iso-dataman", params=params)
        run = session.run("iso-dataman", params=params)
        result.rows.append(
            {
                "config": label,
                "runtime_s": run.total_runtime,
                "l1_hits": session.scheduler.workers[0].proxy.stats.hits_l1,
                "l2_hits": session.scheduler.workers[0].proxy.stats.hits_l2,
                "misses": run.dms["misses"],
            }
        )
    return result


# ------------------------------------------------- adaptive selection


def adaptive_loading_study(n_workers: int = 4) -> ExperimentResult:
    """Adaptive strategy selection vs. pinned direct fileserver loads."""
    engine = engine_dataset()
    params = pathline_params()
    result = ExperimentResult(
        experiment_id="ablation-adaptive",
        title=f"Loading-strategy selection, pathlines, {n_workers} workers, cold [s]",
        columns=["selector", "runtime_s", "node_transfers", "fileserver_loads"],
        notes="Workers share trajectory blocks; the cooperative cache "
        "(node-transfer strategy) avoids duplicate fileserver reads (§4.3).",
    )
    for label, adaptive in (("adaptive", True), ("fileserver only", False)):
        session = ViracochaSession(
            engine,
            cluster_config=paper_cluster(n_workers),
            costs=paper_costs(),
            adaptive_loading=adaptive,
        )
        run = session.run("pathlines-dataman", params={**params, "prefetch": "none"})
        decisions = session.scheduler.server.selector.decisions
        result.rows.append(
            {
                "selector": label,
                "runtime_s": run.total_runtime,
                "node_transfers": decisions.get("node-transfer", 0),
                "fileserver_loads": decisions.get("fileserver", 0),
            }
        )
    return result


# ---------------------------------------------------- batch-size sweep


def stream_batch_size_study(
    batch_sizes: Sequence[int] = (50, 200, 1000, 5000),
) -> ExperimentResult:
    """Latency/overhead trade-off of the streamed fragment size (§5.2).

    Small fragments give the fastest first image but "many work nodes
    literally firing data at the visualization system" cost per-packet
    overhead and client-link occupancy; huge fragments converge toward
    the non-streamed behavior — "it is therefore important to find a
    good compromise between low latency and interactivity requirements."
    """
    from ..synth import build_engine

    # A finer actual resolution so blocks span several fragments.
    engine = build_engine(base_resolution=10, n_timesteps=4)
    result = ExperimentResult(
        experiment_id="ablation-batch-size",
        title="ViewerIso: max triangles per fragment vs latency / runtime (Engine, 8 workers)",
        columns=["max_triangles", "latency_s", "total_s", "packets"],
    )
    session = ViracochaSession(
        engine, cluster_config=paper_cluster(8), costs=paper_costs()
    )
    params = {"isovalue": -0.3, "scalar": "pressure", "time_range": (0, 1)}
    session.warm_cache("iso-dataman", params=params)
    for max_triangles in batch_sizes:
        run = session.run(
            "iso-viewer",
            params={
                **params,
                "viewpoint": (0.0, 0.0, -5.0),
                "max_triangles": int(max_triangles),
            },
        )
        result.rows.append(
            {
                "max_triangles": int(max_triangles),
                "latency_s": run.latency,
                "total_s": run.total_runtime,
                "packets": run.n_packets,
            }
        )
    return result


# ------------------------------------------------------- markov width


def markov_width_study(widths: Sequence[int] = (1, 2, 4)) -> ExperimentResult:
    """Prediction width of the Markov prefetcher (cold pathlines, 1 worker)."""
    engine = engine_dataset()
    params = pathline_params()
    result = ExperimentResult(
        experiment_id="ablation-markov-width",
        title="Markov prefetch width, pathlines, 1 worker, cold [s]",
        columns=["width", "runtime_s", "prefetches_issued", "useful", "wasted"],
        notes="Wider prediction buys coverage at the price of wasted "
        "speculative reads on the saturated fileserver.",
    )
    for width in widths:
        session = ViracochaSession(
            engine, cluster_config=paper_cluster(1), costs=paper_costs()
        )
        run = session.run(
            "pathlines-dataman", params={**params, "prefetch_width": int(width)}
        )
        issued = run.dms["prefetches_issued"]
        useful = run.dms["prefetches_useful"]
        result.rows.append(
            {
                "width": int(width),
                "runtime_s": run.total_runtime,
                "prefetches_issued": issued,
                "useful": useful,
                "wasted": issued - useful,
            }
        )
    return result


# -------------------------------------------------------- compression


def compression_study() -> ExperimentResult:
    """Is compressing transfers worth it?  (Paper §4.3: no.)"""
    engine = engine_dataset()
    nbytes = max(engine.spec.modeled_block_bytes)
    cluster = paper_cluster(1)
    links = {
        "fabric (node-transfer)": cluster.fabric_bandwidth,
        "client TCP": cluster.client_bandwidth,
        "fileserver": cluster.fileserver_bandwidth,
    }
    result = ExperimentResult(
        experiment_id="ablation-compression",
        title=f"Compressing one {nbytes // 1024} KiB block transfer",
        columns=["link", "codec", "plain_ms", "compressed_ms", "worthwhile"],
        notes='Paper §4.3: compression "found ineffective due to long '
        'runtimes and low compression rates compared to transmission time" '
        "— true on the fabric, where the cooperative cache lives.",
    )
    for link_name, bandwidth in links.items():
        for codec in (GZIP_2004, LZO_2004):
            plain = codec.plain_time(nbytes, bandwidth)
            compressed = codec.compressed_time(nbytes, bandwidth)
            result.rows.append(
                {
                    "link": link_name,
                    "codec": codec.name,
                    "plain_ms": 1000 * plain,
                    "compressed_ms": 1000 * compressed,
                    "worthwhile": codec.worthwhile(nbytes, bandwidth),
                }
            )
    return result


ALL_ABLATIONS = {
    "replacement": replacement_policy_study,
    "l2": l2_tier_study,
    "adaptive": adaptive_loading_study,
    "batch-size": stream_batch_size_study,
    "markov-width": markov_width_study,
    "compression": compression_study,
}
