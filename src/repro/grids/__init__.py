"""Curvilinear multi-block structured grids (the VTK-substrate stand-in)."""

from .block import BlockHandle, StructuredBlock
from .geometry import (
    cell_centers,
    cell_volumes,
    computational_derivatives,
    inverse_jacobian,
    jacobian,
    physical_gradient,
    velocity_gradient_tensor,
)
from .interpolate import (
    CellLocator,
    invert_trilinear,
    invert_trilinear_many,
    trilinear_map,
    trilinear_weights,
    trilinear_weights_many,
)
from .multiblock import MultiBlockDataset, TimeSeries
from .topology import BlockTopology, FaceMatch, file_order, find_matched_faces
from .bsp import BSPNode, BSPTree
from .multires import MultiResPyramid, coarsen_block
from .summary import BlockSummary, DatasetSummary, summarize_block, summarize_dataset

__all__ = [
    "BlockHandle",
    "StructuredBlock",
    "cell_centers",
    "cell_volumes",
    "computational_derivatives",
    "inverse_jacobian",
    "jacobian",
    "physical_gradient",
    "velocity_gradient_tensor",
    "CellLocator",
    "invert_trilinear",
    "invert_trilinear_many",
    "trilinear_map",
    "trilinear_weights",
    "trilinear_weights_many",
    "MultiBlockDataset",
    "TimeSeries",
    "BlockTopology",
    "FaceMatch",
    "file_order",
    "find_matched_faces",
    "BSPNode",
    "BSPTree",
    "MultiResPyramid",
    "coarsen_block",
    "BlockSummary",
    "DatasetSummary",
    "summarize_block",
    "summarize_dataset",
]
