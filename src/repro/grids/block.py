"""Curvilinear structured grid blocks.

The paper's datasets are *multi-block structured* CFD grids: each block
is a logically Cartesian ``(ni, nj, nk)`` lattice of points with
arbitrary physical coordinates (body-fitted, curvilinear).  Point-
centered fields (velocity, pressure, ...) live on the same lattice.

:class:`StructuredBlock` is the in-memory unit that all extraction
algorithms operate on; it is also the unit of I/O, caching and
prefetching in the DMS (the paper's "block").
"""

from __future__ import annotations

from collections.abc import MutableMapping
from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

__all__ = ["StructuredBlock", "LazyStructuredBlock", "BlockHandle"]


class StructuredBlock:
    """One curvilinear structured block with point-centered fields.

    Parameters
    ----------
    coords:
        Physical point coordinates, shape ``(ni, nj, nk, 3)``, float.
    fields:
        Mapping from field name to an array of shape ``(ni, nj, nk)``
        (scalar) or ``(ni, nj, nk, 3)`` (vector).
    block_id:
        Index of the block within its dataset.
    time_index:
        Time level the block belongs to (``0`` for steady data).
    """

    def __init__(
        self,
        coords: np.ndarray,
        fields: Mapping[str, np.ndarray] | None = None,
        block_id: int = 0,
        time_index: int = 0,
    ):
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 4 or coords.shape[-1] != 3:
            raise ValueError(
                f"coords must have shape (ni, nj, nk, 3), got {coords.shape}"
            )
        if min(coords.shape[:3]) < 2:
            raise ValueError(
                f"each block dimension needs >= 2 points, got {coords.shape[:3]}"
            )
        if not np.isfinite(coords).all():
            raise ValueError("coords contain non-finite values")
        self.coords = coords
        self.block_id = int(block_id)
        self.time_index = int(time_index)
        self.fields: dict[str, np.ndarray] = {}
        for name, data in (fields or {}).items():
            self.set_field(name, data)

    # ------------------------------------------------------------- shape
    @property
    def shape(self) -> tuple[int, int, int]:
        """Point dimensions ``(ni, nj, nk)``."""
        return self.coords.shape[:3]

    @property
    def cell_shape(self) -> tuple[int, int, int]:
        ni, nj, nk = self.shape
        return (ni - 1, nj - 1, nk - 1)

    @property
    def n_points(self) -> int:
        ni, nj, nk = self.shape
        return ni * nj * nk

    @property
    def n_cells(self) -> int:
        ci, cj, ck = self.cell_shape
        return ci * cj * ck

    @property
    def nbytes(self) -> int:
        """Actual in-memory payload size of coordinates plus fields."""
        return self.coords.nbytes + sum(f.nbytes for f in self.fields.values())

    @property
    def resident_nbytes(self) -> int:
        """Bytes actually resident for this block right now.

        Equal to :attr:`nbytes` for an eager block; a
        :class:`LazyStructuredBlock` counts its raw (``<f4``) views at
        their true size and only charges float64 for fields that were
        materialized.
        """
        return self.nbytes

    # ------------------------------------------------------------ fields
    def set_field(self, name: str, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.shape[:3] != self.shape or data.ndim not in (3, 4):
            raise ValueError(
                f"field {name!r} shape {data.shape} incompatible with "
                f"block shape {self.shape}"
            )
        if data.ndim == 4 and data.shape[-1] != 3:
            raise ValueError(
                f"vector field {name!r} must have 3 components, got {data.shape}"
            )
        self.fields[name] = data

    def field(self, name: str) -> np.ndarray:
        try:
            return self.fields[name]
        except KeyError:
            raise KeyError(
                f"block {self.block_id} has no field {name!r}; "
                f"available: {sorted(self.fields)}"
            ) from None

    def has_field(self, name: str) -> bool:
        return name in self.fields

    def scalar_range(self, name: str) -> tuple[float, float]:
        data = self.field(name)
        if data.ndim != 3:
            raise ValueError(f"field {name!r} is not a scalar")
        return float(data.min()), float(data.max())

    # ---------------------------------------------------------- geometry
    def bounds(self) -> np.ndarray:
        """Axis-aligned bounding box ``[[xmin,ymin,zmin],[xmax,ymax,zmax]]``."""
        pts = self.coords.reshape(-1, 3)
        return np.vstack([pts.min(axis=0), pts.max(axis=0)])

    def center(self) -> np.ndarray:
        b = self.bounds()
        return 0.5 * (b[0] + b[1])

    def cell_corner_points(self, i: int, j: int, k: int) -> np.ndarray:
        """The 8 corner points of cell ``(i, j, k)`` in VTK hexahedron order.

        Order: (i,j,k), (i+1,j,k), (i+1,j+1,k), (i,j+1,k), then the same
        four at ``k+1``.
        """
        c = self.coords
        return np.array(
            [
                c[i, j, k],
                c[i + 1, j, k],
                c[i + 1, j + 1, k],
                c[i, j + 1, k],
                c[i, j, k + 1],
                c[i + 1, j, k + 1],
                c[i + 1, j + 1, k + 1],
                c[i, j + 1, k + 1],
            ]
        )

    def cell_corner_values(self, name: str, i: int, j: int, k: int) -> np.ndarray:
        """Scalar field values at the 8 corners of cell ``(i, j, k)``."""
        f = self.field(name)
        return np.array(
            [
                f[i, j, k],
                f[i + 1, j, k],
                f[i + 1, j + 1, k],
                f[i, j + 1, k],
                f[i, j, k + 1],
                f[i + 1, j, k + 1],
                f[i + 1, j + 1, k + 1],
                f[i, j + 1, k + 1],
            ]
        )

    def iter_cells(self) -> Iterator[tuple[int, int, int]]:
        ci, cj, ck = self.cell_shape
        for i in range(ci):
            for j in range(cj):
                for k in range(ck):
                    yield (i, j, k)

    # -------------------------------------------------------------- misc
    def copy(self) -> "StructuredBlock":
        return StructuredBlock(
            self.coords.copy(),
            {n: f.copy() for n, f in self.fields.items()},
            block_id=self.block_id,
            time_index=self.time_index,
        )

    def __repr__(self) -> str:
        return (
            f"StructuredBlock(id={self.block_id}, t={self.time_index}, "
            f"shape={self.shape}, fields={sorted(self.fields)})"
        )


class _LazyFieldMap(MutableMapping):
    """Field mapping that upcasts raw ``<f4`` views on first access.

    Raw arrays stay exactly as parsed (typically read-only
    ``np.frombuffer`` views over an mmap or shared-memory buffer);
    ``map[name]`` materializes a float64 copy once and caches it.  A raw
    array that is already float64 (derived fields stored at full
    precision) is returned as-is — zero-copy, still read-only.
    """

    __slots__ = ("_raw", "_materialized")

    def __init__(self, raw: Mapping[str, np.ndarray] | None = None):
        self._raw: dict[str, np.ndarray] = dict(raw or {})
        self._materialized: dict[str, np.ndarray] = {}

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._materialized[name]
        except KeyError:
            pass
        raw = self._raw[name]  # KeyError propagates: unknown field
        # float32 -> fresh writable float64 copy; float64 -> no copy.
        data = np.asarray(raw, dtype=np.float64)
        self._materialized[name] = data
        return data

    def __setitem__(self, name: str, data: np.ndarray) -> None:
        self._materialized[name] = data

    def __delitem__(self, name: str) -> None:
        found = name in self._raw or name in self._materialized
        self._raw.pop(name, None)
        self._materialized.pop(name, None)
        if not found:
            raise KeyError(name)

    def __iter__(self) -> Iterator[str]:
        yield from self._raw
        for name in self._materialized:
            if name not in self._raw:
                yield name

    def __len__(self) -> int:
        extra = sum(1 for n in self._materialized if n not in self._raw)
        return len(self._raw) + extra

    def __contains__(self, name: object) -> bool:
        return name in self._raw or name in self._materialized

    def raw_view(self, name: str) -> np.ndarray | None:
        """The unmaterialized backing array, if the field has one."""
        return self._raw.get(name)

    @property
    def resident_nbytes(self) -> int:
        total = 0
        for name, raw in self._raw.items():
            mat = self._materialized.get(name)
            total += raw.nbytes if mat is None else mat.nbytes
        for name, mat in self._materialized.items():
            if name not in self._raw:
                total += mat.nbytes
        return total


class LazyStructuredBlock(StructuredBlock):
    """A block whose fields materialize to float64 only when touched.

    Built by the zero-copy deserialization paths
    (:func:`repro.io.format.block_from_buffer`, the mmap-backed
    :meth:`repro.io.DatasetStore.read_block` and shared-memory views):
    ``raw_fields`` are the on-disk ``<f4`` payloads as read-only views,
    upcast lazily per field, so resident bytes stay at the file's true
    size until an algorithm actually needs a field.  Coordinates are
    float64 on disk and stay zero-copy (read-only) views throughout.
    """

    def __init__(
        self,
        coords: np.ndarray,
        raw_fields: Mapping[str, np.ndarray] | None = None,
        block_id: int = 0,
        time_index: int = 0,
    ):
        super().__init__(coords, None, block_id=block_id, time_index=time_index)
        lazy = _LazyFieldMap()
        for name, raw in (raw_fields or {}).items():
            raw = np.asarray(raw)
            if raw.shape[:3] != self.shape or raw.ndim not in (3, 4):
                raise ValueError(
                    f"raw field {name!r} shape {raw.shape} incompatible with "
                    f"block shape {self.shape}"
                )
            lazy._raw[name] = raw
        self.fields = lazy

    @property
    def nbytes(self) -> int:
        # The float64-equivalent payload size (what an eager read would
        # hold), computed without materializing anything.
        total = self.coords.nbytes
        for name in self.fields:
            raw = self.fields.raw_view(name)
            arr = raw if raw is not None else self.fields[name]
            total += arr.size * np.dtype(np.float64).itemsize
        return total

    @property
    def resident_nbytes(self) -> int:
        return self.coords.nbytes + self.fields.resident_nbytes

    def attach_raw_field(self, name: str, raw: np.ndarray) -> None:
        """Attach a backing array as a lazy (unmaterialized) field.

        Used by the shared-memory store to graft derived fields (a
        precomputed λ2 scalar, say) onto a block without copying: the
        array stays a view over its segment and goes through the same
        on-access path as the on-disk fields.
        """
        raw = np.asarray(raw)
        if raw.shape[:3] != self.shape or raw.ndim not in (3, 4):
            raise ValueError(
                f"raw field {name!r} shape {raw.shape} incompatible with "
                f"block shape {self.shape}"
            )
        self.fields._raw[name] = raw
        self.fields._materialized.pop(name, None)

    def materialized_fields(self) -> list[str]:
        """Names of fields that have been upcast to float64 so far."""
        return sorted(self.fields._materialized)


@dataclass(frozen=True)
class BlockHandle:
    """Lightweight reference to a block without its payload.

    Datasets hand these out so that schedulers and the DMS can plan
    (sort blocks front-to-back, estimate load cost, distribute work)
    without touching the data.  ``modeled_shape`` is the full paper-scale
    resolution used by the simulated runtime's cost model; ``shape`` is
    the actual (laptop-scale) resolution of the arrays on disk.
    """

    dataset: str
    block_id: int
    time_index: int
    shape: tuple[int, int, int]
    modeled_shape: tuple[int, int, int]
    bounds_min: tuple[float, float, float]
    bounds_max: tuple[float, float, float]

    @property
    def n_points(self) -> int:
        ni, nj, nk = self.shape
        return ni * nj * nk

    @property
    def n_cells(self) -> int:
        ni, nj, nk = self.shape
        return (ni - 1) * (nj - 1) * (nk - 1)

    @property
    def modeled_points(self) -> int:
        ni, nj, nk = self.modeled_shape
        return ni * nj * nk

    @property
    def modeled_cells(self) -> int:
        ni, nj, nk = self.modeled_shape
        return (ni - 1) * (nj - 1) * (nk - 1)

    @property
    def scale_factor(self) -> float:
        """Modeled-to-actual cell ratio, used to scale compute costs."""
        return self.modeled_cells / max(self.n_cells, 1)

    def center(self) -> np.ndarray:
        return 0.5 * (np.asarray(self.bounds_min) + np.asarray(self.bounds_max))
