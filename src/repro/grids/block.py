"""Curvilinear structured grid blocks.

The paper's datasets are *multi-block structured* CFD grids: each block
is a logically Cartesian ``(ni, nj, nk)`` lattice of points with
arbitrary physical coordinates (body-fitted, curvilinear).  Point-
centered fields (velocity, pressure, ...) live on the same lattice.

:class:`StructuredBlock` is the in-memory unit that all extraction
algorithms operate on; it is also the unit of I/O, caching and
prefetching in the DMS (the paper's "block").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

__all__ = ["StructuredBlock", "BlockHandle"]


class StructuredBlock:
    """One curvilinear structured block with point-centered fields.

    Parameters
    ----------
    coords:
        Physical point coordinates, shape ``(ni, nj, nk, 3)``, float.
    fields:
        Mapping from field name to an array of shape ``(ni, nj, nk)``
        (scalar) or ``(ni, nj, nk, 3)`` (vector).
    block_id:
        Index of the block within its dataset.
    time_index:
        Time level the block belongs to (``0`` for steady data).
    """

    def __init__(
        self,
        coords: np.ndarray,
        fields: Mapping[str, np.ndarray] | None = None,
        block_id: int = 0,
        time_index: int = 0,
    ):
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 4 or coords.shape[-1] != 3:
            raise ValueError(
                f"coords must have shape (ni, nj, nk, 3), got {coords.shape}"
            )
        if min(coords.shape[:3]) < 2:
            raise ValueError(
                f"each block dimension needs >= 2 points, got {coords.shape[:3]}"
            )
        if not np.isfinite(coords).all():
            raise ValueError("coords contain non-finite values")
        self.coords = coords
        self.block_id = int(block_id)
        self.time_index = int(time_index)
        self.fields: dict[str, np.ndarray] = {}
        for name, data in (fields or {}).items():
            self.set_field(name, data)

    # ------------------------------------------------------------- shape
    @property
    def shape(self) -> tuple[int, int, int]:
        """Point dimensions ``(ni, nj, nk)``."""
        return self.coords.shape[:3]

    @property
    def cell_shape(self) -> tuple[int, int, int]:
        ni, nj, nk = self.shape
        return (ni - 1, nj - 1, nk - 1)

    @property
    def n_points(self) -> int:
        ni, nj, nk = self.shape
        return ni * nj * nk

    @property
    def n_cells(self) -> int:
        ci, cj, ck = self.cell_shape
        return ci * cj * ck

    @property
    def nbytes(self) -> int:
        """Actual in-memory payload size of coordinates plus fields."""
        return self.coords.nbytes + sum(f.nbytes for f in self.fields.values())

    # ------------------------------------------------------------ fields
    def set_field(self, name: str, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.float64)
        if data.shape[:3] != self.shape or data.ndim not in (3, 4):
            raise ValueError(
                f"field {name!r} shape {data.shape} incompatible with "
                f"block shape {self.shape}"
            )
        if data.ndim == 4 and data.shape[-1] != 3:
            raise ValueError(
                f"vector field {name!r} must have 3 components, got {data.shape}"
            )
        self.fields[name] = data

    def field(self, name: str) -> np.ndarray:
        try:
            return self.fields[name]
        except KeyError:
            raise KeyError(
                f"block {self.block_id} has no field {name!r}; "
                f"available: {sorted(self.fields)}"
            ) from None

    def has_field(self, name: str) -> bool:
        return name in self.fields

    def scalar_range(self, name: str) -> tuple[float, float]:
        data = self.field(name)
        if data.ndim != 3:
            raise ValueError(f"field {name!r} is not a scalar")
        return float(data.min()), float(data.max())

    # ---------------------------------------------------------- geometry
    def bounds(self) -> np.ndarray:
        """Axis-aligned bounding box ``[[xmin,ymin,zmin],[xmax,ymax,zmax]]``."""
        pts = self.coords.reshape(-1, 3)
        return np.vstack([pts.min(axis=0), pts.max(axis=0)])

    def center(self) -> np.ndarray:
        b = self.bounds()
        return 0.5 * (b[0] + b[1])

    def cell_corner_points(self, i: int, j: int, k: int) -> np.ndarray:
        """The 8 corner points of cell ``(i, j, k)`` in VTK hexahedron order.

        Order: (i,j,k), (i+1,j,k), (i+1,j+1,k), (i,j+1,k), then the same
        four at ``k+1``.
        """
        c = self.coords
        return np.array(
            [
                c[i, j, k],
                c[i + 1, j, k],
                c[i + 1, j + 1, k],
                c[i, j + 1, k],
                c[i, j, k + 1],
                c[i + 1, j, k + 1],
                c[i + 1, j + 1, k + 1],
                c[i, j + 1, k + 1],
            ]
        )

    def cell_corner_values(self, name: str, i: int, j: int, k: int) -> np.ndarray:
        """Scalar field values at the 8 corners of cell ``(i, j, k)``."""
        f = self.field(name)
        return np.array(
            [
                f[i, j, k],
                f[i + 1, j, k],
                f[i + 1, j + 1, k],
                f[i, j + 1, k],
                f[i, j, k + 1],
                f[i + 1, j, k + 1],
                f[i + 1, j + 1, k + 1],
                f[i, j + 1, k + 1],
            ]
        )

    def iter_cells(self) -> Iterator[tuple[int, int, int]]:
        ci, cj, ck = self.cell_shape
        for i in range(ci):
            for j in range(cj):
                for k in range(ck):
                    yield (i, j, k)

    # -------------------------------------------------------------- misc
    def copy(self) -> "StructuredBlock":
        return StructuredBlock(
            self.coords.copy(),
            {n: f.copy() for n, f in self.fields.items()},
            block_id=self.block_id,
            time_index=self.time_index,
        )

    def __repr__(self) -> str:
        return (
            f"StructuredBlock(id={self.block_id}, t={self.time_index}, "
            f"shape={self.shape}, fields={sorted(self.fields)})"
        )


@dataclass(frozen=True)
class BlockHandle:
    """Lightweight reference to a block without its payload.

    Datasets hand these out so that schedulers and the DMS can plan
    (sort blocks front-to-back, estimate load cost, distribute work)
    without touching the data.  ``modeled_shape`` is the full paper-scale
    resolution used by the simulated runtime's cost model; ``shape`` is
    the actual (laptop-scale) resolution of the arrays on disk.
    """

    dataset: str
    block_id: int
    time_index: int
    shape: tuple[int, int, int]
    modeled_shape: tuple[int, int, int]
    bounds_min: tuple[float, float, float]
    bounds_max: tuple[float, float, float]

    @property
    def n_points(self) -> int:
        ni, nj, nk = self.shape
        return ni * nj * nk

    @property
    def n_cells(self) -> int:
        ni, nj, nk = self.shape
        return (ni - 1) * (nj - 1) * (nk - 1)

    @property
    def modeled_points(self) -> int:
        ni, nj, nk = self.modeled_shape
        return ni * nj * nk

    @property
    def modeled_cells(self) -> int:
        ni, nj, nk = self.modeled_shape
        return (ni - 1) * (nj - 1) * (nk - 1)

    @property
    def scale_factor(self) -> float:
        """Modeled-to-actual cell ratio, used to scale compute costs."""
        return self.modeled_cells / max(self.n_cells, 1)

    def center(self) -> np.ndarray:
        return 0.5 * (np.asarray(self.bounds_min) + np.asarray(self.bounds_max))
