"""Multi-block datasets and time series.

A :class:`MultiBlockDataset` is one time level of a CFD solution: a list
of curvilinear :class:`~repro.grids.block.StructuredBlock` objects that
jointly tile the domain.  A :class:`TimeSeries` stacks those over time
levels (the paper's Engine has 63, the Propfan 50).
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from .block import BlockHandle, StructuredBlock

__all__ = ["MultiBlockDataset", "TimeSeries"]


class MultiBlockDataset:
    """All blocks of one time level."""

    def __init__(
        self, blocks: Sequence[StructuredBlock], name: str = "dataset", time: float = 0.0
    ):
        if not blocks:
            raise ValueError("a dataset needs at least one block")
        ids = [b.block_id for b in blocks]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate block ids: {sorted(ids)}")
        self.blocks = list(blocks)
        self.name = name
        self.time = float(time)

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[StructuredBlock]:
        return iter(self.blocks)

    def __getitem__(self, block_id: int) -> StructuredBlock:
        for b in self.blocks:
            if b.block_id == block_id:
                return b
        raise KeyError(f"no block with id {block_id}")

    @property
    def n_cells(self) -> int:
        return sum(b.n_cells for b in self.blocks)

    @property
    def n_points(self) -> int:
        return sum(b.n_points for b in self.blocks)

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.blocks)

    def bounds(self) -> np.ndarray:
        lows = np.vstack([b.bounds()[0] for b in self.blocks])
        highs = np.vstack([b.bounds()[1] for b in self.blocks])
        return np.vstack([lows.min(axis=0), highs.max(axis=0)])

    def field_names(self) -> list[str]:
        names = set(self.blocks[0].fields)
        for b in self.blocks[1:]:
            names &= set(b.fields)
        return sorted(names)

    def scalar_range(self, name: str) -> tuple[float, float]:
        ranges = [b.scalar_range(name) for b in self.blocks]
        return min(r[0] for r in ranges), max(r[1] for r in ranges)

    def handles(
        self, modeled_shapes: Sequence[tuple[int, int, int]] | None = None
    ) -> list[BlockHandle]:
        """Planner-side references, optionally carrying paper-scale shapes."""
        out = []
        for idx, b in enumerate(self.blocks):
            modeled = (
                tuple(modeled_shapes[idx]) if modeled_shapes is not None else b.shape
            )
            bb = b.bounds()
            out.append(
                BlockHandle(
                    dataset=self.name,
                    block_id=b.block_id,
                    time_index=b.time_index,
                    shape=b.shape,
                    modeled_shape=modeled,  # type: ignore[arg-type]
                    bounds_min=tuple(bb[0]),
                    bounds_max=tuple(bb[1]),
                )
            )
        return out


class TimeSeries:
    """Time levels of a multi-block solution, possibly lazily produced.

    Parameters
    ----------
    times:
        Monotonically increasing physical times of the levels.
    getter:
        Callable mapping a time *index* to its
        :class:`MultiBlockDataset`.  May generate on demand (synthetic
        data) or read from a store.
    """

    def __init__(
        self,
        times: Sequence[float],
        getter: Callable[[int], MultiBlockDataset],
        name: str = "series",
    ):
        times = [float(t) for t in times]
        if not times:
            raise ValueError("a time series needs at least one level")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("times must be strictly increasing")
        self.times = times
        self._getter = getter
        self.name = name
        self._cache: dict[int, MultiBlockDataset] = {}

    def __len__(self) -> int:
        return len(self.times)

    def level(self, index: int) -> MultiBlockDataset:
        if not 0 <= index < len(self.times):
            raise IndexError(f"time index {index} out of range 0..{len(self.times)-1}")
        if index not in self._cache:
            self._cache[index] = self._getter(index)
        return self._cache[index]

    def bracket(self, t: float) -> tuple[int, int, float]:
        """Indices ``(lo, hi)`` with ``times[lo] <= t <= times[hi]`` and
        the interpolation weight of ``hi``.  Clamps outside the range."""
        times = self.times
        if t <= times[0]:
            return 0, 0, 0.0
        if t >= times[-1]:
            n = len(times) - 1
            return n, n, 0.0
        hi = int(np.searchsorted(times, t, side="right"))
        lo = hi - 1
        w = (t - times[lo]) / (times[hi] - times[lo])
        return lo, hi, float(w)

    def clear_cache(self) -> None:
        self._cache.clear()

    def interpolate_level(self, t: float) -> MultiBlockDataset:
        """Linearly blend the two bracketing levels at physical time ``t``.

        The standard smooth-animation primitive: coordinates come from
        the lower level (static grids), fields are interpolated per
        point.  Clamps outside the series' time range.
        """
        lo, hi, w = self.bracket(t)
        level_lo = self.level(lo)
        if hi == lo or w == 0.0:
            return level_lo
        level_hi = self.level(hi)
        from .block import StructuredBlock

        blocks = []
        for a in level_lo:
            b = level_hi[a.block_id]
            fields = {
                name: (1.0 - w) * data + w * b.field(name)
                for name, data in a.fields.items()
                if b.has_field(name)
            }
            blocks.append(
                StructuredBlock(
                    a.coords, fields, block_id=a.block_id, time_index=lo
                )
            )
        return MultiBlockDataset(blocks, name=self.name, time=float(t))
