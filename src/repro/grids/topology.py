"""Block-level topology of a multi-block dataset.

Pathlines cross block boundaries; the tracer must know which blocks can
contain a point that left its current block, and prefetchers want a
notion of "neighboring block".  Both are derived here from (slightly
padded) bounding boxes of the block handles — no payload data needed.

The paper notes that sequential ("next block") orderings are not obvious
in 3-D multi-block data; :func:`file_order` is the simple file-storage
order the paper's OBL prefetcher uses, while :class:`BlockTopology`
provides the geometric adjacency a "more sophisticated approach" would
exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .block import BlockHandle, StructuredBlock

__all__ = ["BlockTopology", "file_order", "FaceMatch", "find_matched_faces"]

#: the six logical boundary faces of a structured block.
FACES = ("i-", "i+", "j-", "j+", "k-", "k+")


def _face_points(block: StructuredBlock, face: str) -> np.ndarray:
    c = block.coords
    if face == "i-":
        return c[0]
    if face == "i+":
        return c[-1]
    if face == "j-":
        return c[:, 0]
    if face == "j+":
        return c[:, -1]
    if face == "k-":
        return c[:, :, 0]
    if face == "k+":
        return c[:, :, -1]
    raise ValueError(f"unknown face {face!r}; choose from {FACES}")


@dataclass(frozen=True)
class FaceMatch:
    """A point-matched interface between two blocks."""

    block_a: int
    face_a: str
    block_b: int
    face_b: str
    n_points: int


def find_matched_faces(
    blocks: Sequence[StructuredBlock], decimals: int = 9
) -> list[FaceMatch]:
    """Detect point-matched block interfaces.

    Two faces match when their point *sets* coincide (up to rounding);
    multi-block CFD meshes with one-to-one interfaces satisfy this,
    while interfaces with hanging nodes (different resolutions) do not
    and are deliberately not reported — extraction across them is only
    approximately conforming, which is worth knowing about a dataset.
    """
    face_sets: list[tuple[int, str, frozenset, np.ndarray]] = []
    for block in blocks:
        for face in FACES:
            pts = _face_points(block, face).reshape(-1, 3)
            key = frozenset(map(tuple, np.round(pts, decimals).tolist()))
            face_sets.append((block.block_id, face, key, pts))
    matches = []
    for a in range(len(face_sets)):
        bid_a, face_a, key_a, pts_a = face_sets[a]
        for b in range(a + 1, len(face_sets)):
            bid_b, face_b, key_b, pts_b = face_sets[b]
            if bid_a == bid_b:
                continue
            if len(key_a) == len(key_b) and key_a == key_b:
                matches.append(
                    FaceMatch(bid_a, face_a, bid_b, face_b, len(key_a))
                )
    return matches


def file_order(handles: Sequence[BlockHandle]) -> list[int]:
    """Block ids in on-disk storage order (ascending id)."""
    return [h.block_id for h in sorted(handles, key=lambda h: h.block_id)]


class BlockTopology:
    """Bounding-box adjacency between blocks of one time level."""

    def __init__(self, handles: Sequence[BlockHandle], pad_fraction: float = 1e-6):
        if not handles:
            raise ValueError("topology needs at least one block handle")
        self.handles = {h.block_id: h for h in handles}
        self._ids = sorted(self.handles)
        lows = np.array([self.handles[i].bounds_min for i in self._ids])
        highs = np.array([self.handles[i].bounds_max for i in self._ids])
        extent = float((highs.max(axis=0) - lows.min(axis=0)).max())
        pad = pad_fraction * max(extent, 1.0)
        self._lows = lows - pad
        self._highs = highs + pad
        self._neighbors: dict[int, list[int]] | None = None

    @property
    def block_ids(self) -> list[int]:
        return list(self._ids)

    def candidates(self, point: np.ndarray) -> list[int]:
        """Blocks whose (padded) bbox contains ``point``, nearest-center first."""
        p = np.asarray(point, dtype=np.float64)
        mask = np.all((p >= self._lows) & (p <= self._highs), axis=1)
        hits = [self._ids[i] for i in np.nonzero(mask)[0]]
        if len(hits) > 1:
            centers = {
                bid: 0.5
                * (
                    np.asarray(self.handles[bid].bounds_min)
                    + np.asarray(self.handles[bid].bounds_max)
                )
                for bid in hits
            }
            hits.sort(key=lambda bid: float(np.sum((centers[bid] - p) ** 2)))
        return hits

    def candidates_many(self, points: np.ndarray) -> list[list[int]]:
        """Batch :meth:`candidates`: one vectorized bbox test for all points.

        Returns one nearest-center-first candidate list per point; the
        per-point lists are identical to scalar :meth:`candidates`.
        """
        p = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        mask = np.all(
            (p[:, None, :] >= self._lows[None]) & (p[:, None, :] <= self._highs[None]),
            axis=2,
        )
        centers = 0.5 * (self._lows + self._highs)
        d2 = ((p[:, None, :] - centers[None]) ** 2).sum(axis=2)
        out: list[list[int]] = []
        for row in range(len(p)):
            hits = np.nonzero(mask[row])[0]
            if len(hits) > 1:
                hits = hits[np.argsort(d2[row, hits], kind="stable")]
            out.append([self._ids[h] for h in hits])
        return out

    def neighbors(self, block_id: int) -> list[int]:
        """Blocks whose padded bboxes overlap ``block_id``'s."""
        if self._neighbors is None:
            self._neighbors = self._build_neighbors()
        try:
            return self._neighbors[block_id]
        except KeyError:
            raise KeyError(f"unknown block id {block_id}") from None

    def _build_neighbors(self) -> dict[int, list[int]]:
        n = len(self._ids)
        out: dict[int, list[int]] = {bid: [] for bid in self._ids}
        for a in range(n):
            for b in range(a + 1, n):
                overlap = np.all(
                    (self._lows[a] <= self._highs[b]) & (self._lows[b] <= self._highs[a])
                )
                if overlap:
                    out[self._ids[a]].append(self._ids[b])
                    out[self._ids[b]].append(self._ids[a])
        return out

    def front_to_back(self, viewpoint: np.ndarray) -> list[int]:
        """Block ids sorted by distance of their bbox center to ``viewpoint``.

        This is the ViewerIso block ordering (paper §6.3 step 1).
        """
        vp = np.asarray(viewpoint, dtype=np.float64)
        centers = 0.5 * (self._lows + self._highs)
        d2 = np.sum((centers - vp) ** 2, axis=1)
        return [self._ids[i] for i in np.argsort(d2, kind="stable")]
