"""Binary space partitioning of a block's cells.

The paper's view-dependent isosurface command builds, per block, "a
binary space-partitioning (BSP) tree of its domain and traverses it in a
view dependent fashion", pruning "branches labeling empty regions"
(subtrees whose scalar interval excludes the iso-value).

The tree here splits the cell set at the median cell center along the
widest axis of the node's bounding box (an axis-aligned BSP, i.e. a
kd-tree over cells).  Every node carries the min/max of a chosen scalar
field over its cells, which enables the interval pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .block import StructuredBlock
from .geometry import cell_centers

__all__ = ["BSPNode", "BSPTree"]


@dataclass
class BSPNode:
    """One node; leaves own a slice of the tree's cell-index array."""

    lo: int
    hi: int
    bounds_min: np.ndarray
    bounds_max: np.ndarray
    scalar_min: float
    scalar_max: float
    axis: int = -1
    split: float = 0.0
    near: "BSPNode | None" = None
    far: "BSPNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.near is None

    @property
    def n_cells(self) -> int:
        return self.hi - self.lo


class BSPTree:
    """Cell-level BSP over one block, augmented with scalar intervals."""

    def __init__(self, block: StructuredBlock, scalar: str, leaf_size: int = 64):
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.block = block
        self.scalar = scalar
        self.leaf_size = leaf_size

        centers = cell_centers(block).reshape(-1, 3)
        f = block.field(scalar)
        if f.ndim != 3:
            raise ValueError(f"field {scalar!r} is not a scalar")
        # Per-cell scalar interval from the 8 corners, fully vectorized.
        stacked = np.stack(
            [
                f[:-1, :-1, :-1],
                f[1:, :-1, :-1],
                f[1:, 1:, :-1],
                f[:-1, 1:, :-1],
                f[:-1, :-1, 1:],
                f[1:, :-1, 1:],
                f[1:, 1:, 1:],
                f[:-1, 1:, 1:],
            ]
        )
        self._cell_min = stacked.min(axis=0).reshape(-1)
        self._cell_max = stacked.max(axis=0).reshape(-1)
        self._centers = centers
        self._order = np.arange(block.n_cells)
        self.root = self._build(0, block.n_cells)
        self.n_nodes = self._count(self.root)

    # ------------------------------------------------------------- build
    def _build(self, lo: int, hi: int) -> BSPNode:
        idx = self._order[lo:hi]
        pts = self._centers[idx]
        bmin = pts.min(axis=0)
        bmax = pts.max(axis=0)
        node = BSPNode(
            lo=lo,
            hi=hi,
            bounds_min=bmin,
            bounds_max=bmax,
            scalar_min=float(self._cell_min[idx].min()),
            scalar_max=float(self._cell_max[idx].max()),
        )
        if hi - lo <= self.leaf_size:
            return node
        axis = int(np.argmax(bmax - bmin))
        if bmax[axis] - bmin[axis] <= 0.0:
            return node  # degenerate extent; stop splitting
        keys = self._centers[idx, axis]
        mid = (hi - lo) // 2
        part = np.argpartition(keys, mid)
        self._order[lo:hi] = idx[part]
        node.axis = axis
        node.split = float(self._centers[self._order[lo + mid], axis])
        node.near = self._build(lo, lo + mid)
        node.far = self._build(lo + mid, hi)
        return node

    def _count(self, node: BSPNode) -> int:
        if node.is_leaf:
            return 1
        return 1 + self._count(node.near) + self._count(node.far)

    # ---------------------------------------------------------- traversal
    def cell_indices(self, node: BSPNode) -> np.ndarray:
        """Flat cell indices owned by ``node`` (leaf slices of the order array)."""
        return self._order[node.lo : node.hi]

    def traverse_front_to_back(
        self, viewpoint: np.ndarray, isovalue: float | None = None
    ) -> Iterator[np.ndarray]:
        """Yield leaf cell-index arrays, nearest leaves first.

        With an ``isovalue``, subtrees whose scalar interval excludes it
        are pruned (the paper's empty-region pruning).
        """
        vp = np.asarray(viewpoint, dtype=np.float64)
        stack = [self.root]
        while stack:
            node = stack.pop()
            if isovalue is not None and not (
                node.scalar_min <= isovalue <= node.scalar_max
            ):
                continue
            if node.is_leaf:
                yield self.cell_indices(node)
                continue
            # Children are [near, far] around the split plane; visit the
            # child on the viewer's side first (push it last).
            if vp[node.axis] <= node.split:
                stack.append(node.far)
                stack.append(node.near)
            else:
                stack.append(node.near)
                stack.append(node.far)

    def active_cells(self, isovalue: float) -> np.ndarray:
        """All flat cell indices whose interval encloses ``isovalue``."""
        mask = (self._cell_min <= isovalue) & (self._cell_max >= isovalue)
        return np.nonzero(mask)[0]

    def flat_to_ijk(self, flat: np.ndarray) -> np.ndarray:
        """Convert flat cell indices to ``(i, j, k)`` triples, shape (n, 3)."""
        ci, cj, ck = self.block.cell_shape
        flat = np.asarray(flat)
        i, rem = np.divmod(flat, cj * ck)
        j, k = np.divmod(rem, ck)
        return np.stack([i, j, k], axis=-1)
