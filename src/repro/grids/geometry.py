"""Differential geometry on curvilinear blocks.

Gradients of point-centered fields on a body-fitted grid require the
chain rule through the grid mapping: with computational coordinates
``(xi, eta, zeta)`` on the lattice and physical coordinates
``x(xi, eta, zeta)``, the physical gradient of a field ``f`` is

    df/dx = (dx/dxi)^{-T} . df/dxi

evaluated per point.  These routines are fully vectorized over the
block (the guides' "vectorize the loops" rule); the per-point 3x3
inverse is done with a closed-form adjugate rather than
``np.linalg.inv`` in a loop.
"""

from __future__ import annotations

import numpy as np

from .block import StructuredBlock

__all__ = [
    "computational_derivatives",
    "jacobian",
    "inverse_jacobian",
    "physical_gradient",
    "velocity_gradient_tensor",
    "cell_volumes",
    "cell_centers",
]


def computational_derivatives(data: np.ndarray) -> np.ndarray:
    """Central differences of ``data`` along the three lattice axes.

    ``data`` has shape ``(ni, nj, nk)`` or ``(ni, nj, nk, m)``.  Returns
    shape ``data.shape + (3,)`` with derivative index last: result
    ``[..., a]`` is d(data)/d(axis a) with unit lattice spacing.
    One-sided differences are used on the boundary layers (matching
    ``np.gradient``).
    """
    data = np.asarray(data, dtype=np.float64)
    grads = np.gradient(data, axis=(0, 1, 2), edge_order=1)
    return np.stack(grads, axis=-1)


def jacobian(block: StructuredBlock) -> np.ndarray:
    """Jacobian ``J[..., c, a] = d x_c / d xi_a`` per point, shape (ni,nj,nk,3,3)."""
    return computational_derivatives(block.coords)


def _det3(m: np.ndarray) -> np.ndarray:
    """Determinant of stacked 3x3 matrices without LAPACK round-trips."""
    return (
        m[..., 0, 0] * (m[..., 1, 1] * m[..., 2, 2] - m[..., 1, 2] * m[..., 2, 1])
        - m[..., 0, 1] * (m[..., 1, 0] * m[..., 2, 2] - m[..., 1, 2] * m[..., 2, 0])
        + m[..., 0, 2] * (m[..., 1, 0] * m[..., 2, 1] - m[..., 1, 1] * m[..., 2, 0])
    )


def inverse_jacobian(jac: np.ndarray, eps: float = 1e-300) -> np.ndarray:
    """Per-point inverse of stacked 3x3 Jacobians via the adjugate."""
    det = _det3(jac)
    # Guard degenerate cells; the caller sees inf/large values there,
    # which downstream thresholding treats as non-vortical/outside.
    safe = np.where(np.abs(det) < eps, np.copysign(eps, det) + (det == 0) * eps, det)
    inv = np.empty_like(jac)
    a = jac
    inv[..., 0, 0] = a[..., 1, 1] * a[..., 2, 2] - a[..., 1, 2] * a[..., 2, 1]
    inv[..., 0, 1] = a[..., 0, 2] * a[..., 2, 1] - a[..., 0, 1] * a[..., 2, 2]
    inv[..., 0, 2] = a[..., 0, 1] * a[..., 1, 2] - a[..., 0, 2] * a[..., 1, 1]
    inv[..., 1, 0] = a[..., 1, 2] * a[..., 2, 0] - a[..., 1, 0] * a[..., 2, 2]
    inv[..., 1, 1] = a[..., 0, 0] * a[..., 2, 2] - a[..., 0, 2] * a[..., 2, 0]
    inv[..., 1, 2] = a[..., 0, 2] * a[..., 1, 0] - a[..., 0, 0] * a[..., 1, 2]
    inv[..., 2, 0] = a[..., 1, 0] * a[..., 2, 1] - a[..., 1, 1] * a[..., 2, 0]
    inv[..., 2, 1] = a[..., 0, 1] * a[..., 2, 0] - a[..., 0, 0] * a[..., 2, 1]
    inv[..., 2, 2] = a[..., 0, 0] * a[..., 1, 1] - a[..., 0, 1] * a[..., 1, 0]
    inv /= safe[..., None, None]
    return inv


def physical_gradient(block: StructuredBlock, name: str) -> np.ndarray:
    """Physical-space gradient of a scalar field, shape ``(ni,nj,nk,3)``.

    ``result[..., c] = df/dx_c``.
    """
    f = block.field(name)
    if f.ndim != 3:
        raise ValueError(f"field {name!r} is not a scalar")
    df_dxi = computational_derivatives(f)  # (ni,nj,nk,3)
    jinv = inverse_jacobian(jacobian(block))  # (ni,nj,nk,3,3): dxi_a/dx_c
    # df/dx_c = sum_a df/dxi_a * dxi_a/dx_c
    return np.einsum("...a,...ac->...c", df_dxi, jinv)


def velocity_gradient_tensor(
    block: StructuredBlock, name: str = "velocity"
) -> np.ndarray:
    """Velocity gradient ``G[..., c, d] = d u_c / d x_d`` per point.

    This is the tensor the λ2 criterion decomposes into its symmetric
    part ``S`` and antisymmetric part ``Q`` (paper §6.3).
    """
    u = block.field(name)
    if u.ndim != 4:
        raise ValueError(f"field {name!r} is not a vector")
    du_dxi = computational_derivatives(u)  # (ni,nj,nk,3comp,3xi)
    jinv = inverse_jacobian(jacobian(block))  # (ni,nj,nk,3xi,3x)
    return np.einsum("...ca,...ad->...cd", du_dxi, jinv)


def cell_centers(block: StructuredBlock) -> np.ndarray:
    """Average of the 8 corner points per cell, shape ``(ci,cj,ck,3)``."""
    c = block.coords
    return 0.125 * (
        c[:-1, :-1, :-1]
        + c[1:, :-1, :-1]
        + c[1:, 1:, :-1]
        + c[:-1, 1:, :-1]
        + c[:-1, :-1, 1:]
        + c[1:, :-1, 1:]
        + c[1:, 1:, 1:]
        + c[:-1, 1:, 1:]
    )


def cell_volumes(block: StructuredBlock) -> np.ndarray:
    """Approximate hexahedral cell volumes, shape ``(ci,cj,ck)``.

    Uses the scalar triple product of the cell's mid-face diagonals
    (exact for parallelepipeds, standard second-order approximation for
    general hexahedra).
    """
    c = block.coords
    # Edge vectors between opposite face centroids.
    fi0 = 0.25 * (c[:-1, :-1, :-1] + c[:-1, 1:, :-1] + c[:-1, :-1, 1:] + c[:-1, 1:, 1:])
    fi1 = 0.25 * (c[1:, :-1, :-1] + c[1:, 1:, :-1] + c[1:, :-1, 1:] + c[1:, 1:, 1:])
    fj0 = 0.25 * (c[:-1, :-1, :-1] + c[1:, :-1, :-1] + c[:-1, :-1, 1:] + c[1:, :-1, 1:])
    fj1 = 0.25 * (c[:-1, 1:, :-1] + c[1:, 1:, :-1] + c[:-1, 1:, 1:] + c[1:, 1:, 1:])
    fk0 = 0.25 * (c[:-1, :-1, :-1] + c[1:, :-1, :-1] + c[:-1, 1:, :-1] + c[1:, 1:, :-1])
    fk1 = 0.25 * (c[:-1, :-1, 1:] + c[1:, :-1, 1:] + c[:-1, 1:, 1:] + c[1:, 1:, 1:])
    a = fi1 - fi0
    b = fj1 - fj0
    d = fk1 - fk0
    return np.abs(np.einsum("...i,...i->...", a, np.cross(b, d)))
