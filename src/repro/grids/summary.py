"""Dataset inspection summaries.

Quick structural and statistical overviews of multi-block datasets —
what an engineer prints before pointing extraction commands at new
data: block dimensions, cell counts and volumes, per-field ranges, and
interface conformity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .block import StructuredBlock
from .geometry import cell_volumes
from .multiblock import MultiBlockDataset
from .topology import find_matched_faces

__all__ = [
    "BlockSummary",
    "DatasetSummary",
    "box_field_minmax",
    "cell_field_minmax",
    "summarize_block",
    "summarize_dataset",
]

# Corner order matches the hex convention in :mod:`..algorithms.tet_tables`
# so min/max summaries and extraction agree cell by cell.
_CELL_CORNER_OFFSETS = (
    (0, 0, 0),
    (1, 0, 0),
    (1, 1, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 0, 1),
    (1, 1, 1),
    (0, 1, 1),
)


def cell_field_minmax(
    block: StructuredBlock,
    scalar: str,
    cells: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell min/max of ``scalar`` over each cell's 8 corners.

    With ``cells=None`` both arrays cover every cell in flat (C) order;
    otherwise only the given flat cell indices, in the given order.  A
    cell is *active* for an isovalue exactly when ``min <= iso <= max``,
    so these summaries reproduce ``active_cell_indices`` decisions.
    """
    f = block.field(scalar)
    if f.ndim != 3:
        raise ValueError(f"field {scalar!r} is not a scalar")
    if cells is None:
        stacked = np.stack(
            [
                f[di or None : f.shape[0] - 1 + di, dj or None : f.shape[1] - 1 + dj,
                  dk or None : f.shape[2] - 1 + dk]
                for di, dj, dk in _CELL_CORNER_OFFSETS
            ]
        )
        return stacked.min(axis=0).reshape(-1), stacked.max(axis=0).reshape(-1)
    ci, cj, ck = block.cell_shape
    flat = np.asarray(cells, dtype=np.int64)
    i, rem = np.divmod(flat, cj * ck)
    j, k = np.divmod(rem, ck)
    vals = np.stack(
        [f[i + di, j + dj, k + dk] for di, dj, dk in _CELL_CORNER_OFFSETS], axis=0
    )
    return vals.min(axis=0), vals.max(axis=0)


def _box_reduce(arr: np.ndarray, idx: np.ndarray, axis: int, ufunc) -> np.ndarray:
    # ``reduceat`` segments stop one short of the next start; fold the
    # shared endpoint back in so box c covers fine points
    # ``idx[c] .. idx[c+1]`` inclusive.
    seg = ufunc.reduceat(arr, idx[:-1], axis=axis)
    return ufunc(seg, np.take(arr, idx[1:], axis=axis))


def box_field_minmax(
    field: np.ndarray, index_maps: tuple[np.ndarray, np.ndarray, np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-box min/max of a fine point ``field`` over coarse-cell boxes.

    ``index_maps`` gives, per axis, the fine lattice indices retained by
    the coarse level (strictly increasing, first 0, last ``n-1``).  Box
    ``(a, b, c)`` spans fine points ``idx[a]..idx[a+1]`` along each axis,
    so its interval bounds every fine corner value inside — the
    conservative bound behind coarse-to-fine active-cell culling.
    """
    mins = np.asarray(field)
    maxs = mins
    for axis, idx in enumerate(index_maps):
        idx = np.asarray(idx, dtype=np.int64)
        if len(idx) < 2:
            raise ValueError("index map needs at least two entries per axis")
        mins = _box_reduce(mins, idx, axis, np.minimum)
        maxs = _box_reduce(maxs, idx, axis, np.maximum)
    return mins, maxs


@dataclass(frozen=True)
class BlockSummary:
    block_id: int
    shape: tuple[int, int, int]
    n_cells: int
    volume: float
    min_cell_volume: float
    max_cell_volume: float
    field_ranges: dict[str, tuple[float, float]]

    @property
    def aspect(self) -> float:
        """Largest / smallest cell volume: mesh grading indicator."""
        if self.min_cell_volume <= 0:
            return float("inf")
        return self.max_cell_volume / self.min_cell_volume


@dataclass(frozen=True)
class DatasetSummary:
    name: str
    n_blocks: int
    n_cells: int
    n_points: int
    bounds_min: tuple[float, float, float]
    bounds_max: tuple[float, float, float]
    total_volume: float
    field_ranges: dict[str, tuple[float, float]]
    matched_interfaces: int
    blocks: list[BlockSummary] = field(default_factory=list)

    def format(self, max_blocks: int = 8) -> str:
        lines = [
            f"dataset {self.name!r}: {self.n_blocks} blocks, "
            f"{self.n_cells} cells, {self.n_points} points",
            f"  bounds: {np.round(self.bounds_min, 3).tolist()} .. "
            f"{np.round(self.bounds_max, 3).tolist()}",
            f"  volume: {self.total_volume:.4g}; "
            f"conforming interfaces: {self.matched_interfaces}",
        ]
        for name, (lo, hi) in sorted(self.field_ranges.items()):
            lines.append(f"  field {name!r}: [{lo:.4g}, {hi:.4g}]")
        for b in self.blocks[:max_blocks]:
            lines.append(
                f"  block {b.block_id:3d}: shape {b.shape}, {b.n_cells} cells, "
                f"grading {b.aspect:.1f}x"
            )
        if len(self.blocks) > max_blocks:
            lines.append(f"  ... ({len(self.blocks) - max_blocks} more blocks)")
        return "\n".join(lines)


def summarize_block(block: StructuredBlock) -> BlockSummary:
    volumes = cell_volumes(block)
    ranges = {}
    for name, data in block.fields.items():
        if data.ndim == 3:
            ranges[name] = (float(data.min()), float(data.max()))
        else:
            mags = np.linalg.norm(data, axis=-1)
            ranges[f"|{name}|"] = (float(mags.min()), float(mags.max()))
    return BlockSummary(
        block_id=block.block_id,
        shape=block.shape,
        n_cells=block.n_cells,
        volume=float(volumes.sum()),
        min_cell_volume=float(volumes.min()),
        max_cell_volume=float(volumes.max()),
        field_ranges=ranges,
    )


def summarize_dataset(dataset: MultiBlockDataset) -> DatasetSummary:
    blocks = [summarize_block(b) for b in dataset]
    bounds = dataset.bounds()
    merged_ranges: dict[str, tuple[float, float]] = {}
    for summary in blocks:
        for name, (lo, hi) in summary.field_ranges.items():
            cur = merged_ranges.get(name)
            if cur is None:
                merged_ranges[name] = (lo, hi)
            else:
                merged_ranges[name] = (min(cur[0], lo), max(cur[1], hi))
    return DatasetSummary(
        name=dataset.name,
        n_blocks=len(dataset),
        n_cells=dataset.n_cells,
        n_points=dataset.n_points,
        bounds_min=tuple(bounds[0]),
        bounds_max=tuple(bounds[1]),
        total_volume=float(sum(b.volume for b in blocks)),
        field_ranges=merged_ranges,
        matched_interfaces=len(find_matched_faces(list(dataset))),
        blocks=blocks,
    )
