"""Multi-resolution representations for progressive computation.

Progressive streaming (paper §5.3) extracts a coarse approximation from
the lowest-resolution level first, then refines.  The hierarchy here is
a subsampling pyramid: level ``l`` keeps every ``2^l``-th lattice point
(always including the last one, so the block's physical extent is
preserved at every level).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .block import StructuredBlock

__all__ = ["coarsen_block", "MultiResPyramid"]


def _stride_indices(n: int, stride: int) -> np.ndarray:
    """Every ``stride``-th index in ``range(n)``, always including ``n-1``."""
    idx = list(range(0, n, stride))
    if idx[-1] != n - 1:
        idx.append(n - 1)
    return np.asarray(idx)


def coarsen_block(block: StructuredBlock, stride: int = 2) -> StructuredBlock:
    """Subsample a block's lattice by ``stride`` along every axis."""
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    ni, nj, nk = block.shape
    ii = _stride_indices(ni, stride)
    jj = _stride_indices(nj, stride)
    kk = _stride_indices(nk, stride)
    coords = block.coords[np.ix_(ii, jj, kk)]
    fields = {name: data[np.ix_(ii, jj, kk)] for name, data in block.fields.items()}
    return StructuredBlock(
        coords, fields, block_id=block.block_id, time_index=block.time_index
    )


class MultiResPyramid:
    """Subsampling pyramid over one block.

    ``levels[0]`` is the coarsest approximation, ``levels[-1]`` the
    original block — progressive algorithms walk the list front to back.
    """

    def __init__(self, block: StructuredBlock, min_dim: int = 3, max_levels: int = 8):
        if max_levels < 1:
            raise ValueError(f"max_levels must be >= 1, got {max_levels}")
        levels = [block]
        current = block
        while len(levels) < max_levels:
            if min((s + 1) // 2 for s in current.shape) < min_dim:
                break
            current = coarsen_block(current, stride=2)
            if current.shape == levels[-1].shape:
                break
            levels.append(current)
        levels.reverse()
        self.levels: Sequence[StructuredBlock] = levels

    def __len__(self) -> int:
        return len(self.levels)

    @property
    def coarsest(self) -> StructuredBlock:
        return self.levels[0]

    @property
    def finest(self) -> StructuredBlock:
        return self.levels[-1]

    def cells_per_level(self) -> list[int]:
        return [lvl.n_cells for lvl in self.levels]
