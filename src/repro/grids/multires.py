"""Multi-resolution representations for progressive computation.

Progressive streaming (paper §5.3) extracts a coarse approximation from
the lowest-resolution level first, then refines.  The hierarchy here is
a subsampling pyramid: level ``l`` keeps every ``2^l``-th lattice point
(always including the last one, so the block's physical extent is
preserved at every level).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .block import StructuredBlock
from .summary import box_field_minmax, cell_field_minmax

__all__ = [
    "coarsen_block",
    "pyramid_level_shapes",
    "modeled_pyramid_nbytes",
    "MultiResPyramid",
]


def _stride_indices(n: int, stride: int) -> np.ndarray:
    """Every ``stride``-th index in ``range(n)``, always including ``n-1``."""
    idx = list(range(0, n, stride))
    if idx[-1] != n - 1:
        idx.append(n - 1)
    return np.asarray(idx)


def coarsen_block(block: StructuredBlock, stride: int = 2) -> StructuredBlock:
    """Subsample a block's lattice by ``stride`` along every axis."""
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    ni, nj, nk = block.shape
    ii = _stride_indices(ni, stride)
    jj = _stride_indices(nj, stride)
    kk = _stride_indices(nk, stride)
    coords = block.coords[np.ix_(ii, jj, kk)]
    fields = {name: data[np.ix_(ii, jj, kk)] for name, data in block.fields.items()}
    return StructuredBlock(
        coords, fields, block_id=block.block_id, time_index=block.time_index
    )


def pyramid_level_shapes(
    shape: tuple[int, int, int], min_dim: int = 3, max_levels: int = 8
) -> list[tuple[int, int, int]]:
    """Level shapes (coarsest first) a :class:`MultiResPyramid` would build.

    Pure shape arithmetic — ``len(_stride_indices(n, 2)) == n // 2 + 1``
    for ``n >= 2`` — so cost models can size pyramids from a
    :class:`~.block.BlockHandle` without loading data.
    """
    if max_levels < 1:
        raise ValueError(f"max_levels must be >= 1, got {max_levels}")
    shapes = [tuple(int(s) for s in shape)]
    while len(shapes) < max_levels:
        cur = shapes[-1]
        if min((s + 1) // 2 for s in cur) < min_dim:
            break
        nxt = tuple(n // 2 + 1 if n >= 2 else 1 for n in cur)
        if nxt == cur:
            break
        shapes.append(nxt)
    shapes.reverse()
    return shapes


def modeled_pyramid_nbytes(
    shape: tuple[int, int, int],
    min_dim: int = 3,
    max_levels: int = 8,
    bytes_per_point: float = 32.0,
) -> int:
    """Modeled size of the derived (coarse) pyramid levels.

    The finest level aliases the source block, which the DMS already
    caches under its block item, so only coarser levels count.
    """
    shapes = pyramid_level_shapes(shape, min_dim=min_dim, max_levels=max_levels)
    points = sum(ni * nj * nk for ni, nj, nk in shapes[:-1])
    return int(points * bytes_per_point)


class MultiResPyramid:
    """Subsampling pyramid over one block.

    ``levels[0]`` is the coarsest approximation, ``levels[-1]`` the
    original block — progressive algorithms walk the list front to back.
    """

    def __init__(self, block: StructuredBlock, min_dim: int = 3, max_levels: int = 8):
        if max_levels < 1:
            raise ValueError(f"max_levels must be >= 1, got {max_levels}")
        levels = [block]
        steps: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        current = block
        while len(levels) < max_levels:
            if min((s + 1) // 2 for s in current.shape) < min_dim:
                break
            fine_shape = current.shape
            current = coarsen_block(current, stride=2)
            if current.shape == levels[-1].shape:
                break
            steps.append(tuple(_stride_indices(n, 2) for n in fine_shape))
            levels.append(current)
        levels.reverse()
        self.levels: Sequence[StructuredBlock] = levels
        # _maps_to_finer[l]: per-axis lattice indices of level ``l``'s
        # points within level ``l + 1``'s lattice.
        self._maps_to_finer = list(reversed(steps))
        self._ranges: dict[tuple[int, str], tuple[float, float]] = {}

    def __len__(self) -> int:
        return len(self.levels)

    @property
    def coarsest(self) -> StructuredBlock:
        return self.levels[0]

    @property
    def finest(self) -> StructuredBlock:
        return self.levels[-1]

    def cells_per_level(self) -> list[int]:
        return [lvl.n_cells for lvl in self.levels]

    def index_maps(self, level: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-axis lattice indices of ``level``'s points within level+1."""
        return self._maps_to_finer[level]

    def level_range(self, level: int, scalar: str) -> tuple[float, float]:
        """Memoized (min, max) of ``scalar`` over one level's lattice."""
        key = (level, scalar)
        got = self._ranges.get(key)
        if got is None:
            f = self.levels[level].field(scalar)
            if f.ndim != 3:
                raise ValueError(f"field {scalar!r} is not a scalar")
            got = (float(f.min()), float(f.max()))
            self._ranges[key] = got
        return got

    def level_straddles(self, level: int, scalar: str, isovalue: float) -> bool:
        """Whether ``level`` can contribute any isosurface geometry."""
        lo, hi = self.level_range(level, scalar)
        return lo <= isovalue <= hi

    def active_cells(
        self,
        level: int,
        scalar: str,
        isovalue: float,
        out_stats: dict | None = None,
    ) -> np.ndarray:
        """Active flat cell indices at ``level``, culled coarse-to-fine.

        For ``level > 0`` the candidate set is restricted to cells whose
        ancestor box at level-1 straddles the isovalue: the box interval
        (:func:`~.summary.box_field_minmax` over this level's field)
        bounds every descendant corner value, so box straddle is
        necessary for cell straddle.  Survivors then pass the exact
        8-corner test, making the result identical — order included —
        to ``active_cell_indices`` on the same level, while the work
        scales with surface area instead of volume.

        ``out_stats`` (optional) receives ``{"candidates": n}`` — the
        number of cells that survived the coarse cull and had to be
        scanned exactly, which is what cost models should charge.
        """
        block = self.levels[level]
        if out_stats is not None:
            out_stats["candidates"] = block.n_cells
        if level == 0 or not self._maps_to_finer:
            mins, maxs = cell_field_minmax(block, scalar)
            mask = (mins <= isovalue) & (maxs >= isovalue)
            return np.nonzero(mask)[0]
        idx = self._maps_to_finer[level - 1]
        box_min, box_max = box_field_minmax(block.field(scalar), idx)
        coarse_mask = (box_min <= isovalue) & (box_max >= isovalue)
        if not coarse_mask.any():
            if out_stats is not None:
                out_stats["candidates"] = 0
            return np.empty(0, dtype=np.int64)
        ancestors = tuple(
            np.searchsorted(axis_idx, np.arange(n_cells), side="right") - 1
            for axis_idx, n_cells in zip(idx, block.cell_shape)
        )
        fine_mask = coarse_mask[np.ix_(*ancestors)]
        candidates = np.nonzero(fine_mask.reshape(-1))[0]
        if out_stats is not None:
            out_stats["candidates"] = len(candidates)
        if len(candidates) == 0:
            return candidates
        mins, maxs = cell_field_minmax(block, scalar, candidates)
        keep = (mins <= isovalue) & (maxs >= isovalue)
        return candidates[keep]
