"""Point location and trilinear interpolation in curvilinear blocks.

Pathline integration needs, at every Runge-Kutta stage, the velocity at
an arbitrary physical point.  On a curvilinear grid that requires

1. finding the cell containing the point (*point location*), and
2. inverting the trilinear mapping of that cell to get *natural
   coordinates* ``(r, s, t) ∈ [0,1]^3`` (Newton iteration), then
3. trilinearly blending the corner values.

:class:`CellLocator` combines a kd-tree over cell centers (cold start)
with cell-to-cell *walking* from a hint cell (the common case during
tracing, where consecutive queries are close together).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .block import StructuredBlock

__all__ = [
    "trilinear_weights",
    "trilinear_map",
    "invert_trilinear",
    "CellLocator",
]

#: Corner offsets in VTK hexahedron order (see StructuredBlock.cell_corner_points).
_CORNER_RST = np.array(
    [
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [1.0, 1.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
        [1.0, 0.0, 1.0],
        [1.0, 1.0, 1.0],
        [0.0, 1.0, 1.0],
    ]
)


def trilinear_weights(rst: np.ndarray) -> np.ndarray:
    """Shape-function values at natural coordinates, shape ``(8,)``."""
    r, s, t = rst
    rm, sm, tm = 1.0 - r, 1.0 - s, 1.0 - t
    return np.array(
        [
            rm * sm * tm,
            r * sm * tm,
            r * s * tm,
            rm * s * tm,
            rm * sm * t,
            r * sm * t,
            r * s * t,
            rm * s * t,
        ]
    )


def _weight_derivatives(rst: np.ndarray) -> np.ndarray:
    """d N_i / d (r,s,t), shape ``(8, 3)``."""
    r, s, t = rst
    rm, sm, tm = 1.0 - r, 1.0 - s, 1.0 - t
    return np.array(
        [
            [-sm * tm, -rm * tm, -rm * sm],
            [sm * tm, -r * tm, -r * sm],
            [s * tm, r * tm, -r * s],
            [-s * tm, rm * tm, -rm * s],
            [-sm * t, -rm * t, rm * sm],
            [sm * t, -r * t, r * sm],
            [s * t, r * t, r * s],
            [-s * t, rm * t, rm * s],
        ]
    )


def trilinear_map(corners: np.ndarray, rst: np.ndarray) -> np.ndarray:
    """Physical point at natural coordinates ``rst`` of a hexahedron."""
    return trilinear_weights(rst) @ corners


def invert_trilinear(
    corners: np.ndarray,
    point: np.ndarray,
    tol: float = 1e-10,
    max_iter: int = 25,
) -> tuple[np.ndarray, bool]:
    """Newton-invert the trilinear map; returns ``(rst, converged)``.

    ``converged`` only says the Newton iteration reached ``tol``; whether
    the point is *inside* is a separate range check on ``rst``.

    Implementation note: this is the innermost loop of particle tracing
    (profiling showed it dominating pathline benchmarks), so the 3x3
    Newton step is written in scalar Python — for 3-vectors, array
    construction and LAPACK dispatch cost far more than the arithmetic.
    """
    c = np.asarray(corners, dtype=np.float64).reshape(8, 3).tolist()
    px, py, pz = (float(v) for v in np.asarray(point, dtype=np.float64))
    (c0, c1, c2, c3, c4, c5, c6, c7) = c
    r = s = t = 0.5
    tol2 = tol * tol
    for _ in range(max_iter):
        rm, sm, tm = 1.0 - r, 1.0 - s, 1.0 - t
        w0 = rm * sm * tm
        w1 = r * sm * tm
        w2 = r * s * tm
        w3 = rm * s * tm
        w4 = rm * sm * t
        w5 = r * sm * t
        w6 = r * s * t
        w7 = rm * s * t
        fx = (w0 * c0[0] + w1 * c1[0] + w2 * c2[0] + w3 * c3[0]
              + w4 * c4[0] + w5 * c5[0] + w6 * c6[0] + w7 * c7[0]) - px
        fy = (w0 * c0[1] + w1 * c1[1] + w2 * c2[1] + w3 * c3[1]
              + w4 * c4[1] + w5 * c5[1] + w6 * c6[1] + w7 * c7[1]) - py
        fz = (w0 * c0[2] + w1 * c1[2] + w2 * c2[2] + w3 * c3[2]
              + w4 * c4[2] + w5 * c5[2] + w6 * c6[2] + w7 * c7[2]) - pz
        if fx * fx + fy * fy + fz * fz < tol2:
            return np.array([r, s, t]), True
        # dN_i/dr etc., folded straight into the 3x3 Jacobian
        # J[c, a] = d x_c / d rst_a.
        dr = [-sm * tm, sm * tm, s * tm, -s * tm, -sm * t, sm * t, s * t, -s * t]
        ds = [-rm * tm, -r * tm, r * tm, rm * tm, -rm * t, -r * t, r * t, rm * t]
        dt = [-rm * sm, -r * sm, -r * s, -rm * s, rm * sm, r * sm, r * s, rm * s]
        j00 = j01 = j02 = j10 = j11 = j12 = j20 = j21 = j22 = 0.0
        for i, ci in enumerate((c0, c1, c2, c3, c4, c5, c6, c7)):
            j00 += dr[i] * ci[0]
            j10 += dr[i] * ci[1]
            j20 += dr[i] * ci[2]
            j01 += ds[i] * ci[0]
            j11 += ds[i] * ci[1]
            j21 += ds[i] * ci[2]
            j02 += dt[i] * ci[0]
            j12 += dt[i] * ci[1]
            j22 += dt[i] * ci[2]
        det = (
            j00 * (j11 * j22 - j12 * j21)
            - j01 * (j10 * j22 - j12 * j20)
            + j02 * (j10 * j21 - j11 * j20)
        )
        if det == 0.0 or det != det:  # singular or NaN
            return np.array([r, s, t]), False
        # Cramer's rule for J . delta = f.
        inv = 1.0 / det
        d_r = inv * (
            fx * (j11 * j22 - j12 * j21)
            - j01 * (fy * j22 - j12 * fz)
            + j02 * (fy * j21 - j11 * fz)
        )
        d_s = inv * (
            j00 * (fy * j22 - j12 * fz)
            - fx * (j10 * j22 - j12 * j20)
            + j02 * (j10 * fz - fy * j20)
        )
        d_t = inv * (
            j00 * (j11 * fz - fy * j21)
            - j01 * (j10 * fz - fy * j20)
            + fx * (j10 * j21 - j11 * j20)
        )
        r -= d_r
        s -= d_s
        t -= d_t
        # Keep Newton from running away on strongly curved cells.
        r = -1.0 if r < -1.0 else (2.0 if r > 2.0 else r)
        s = -1.0 if s < -1.0 else (2.0 if s > 2.0 else s)
        t = -1.0 if t < -1.0 else (2.0 if t > 2.0 else t)
    rm, sm, tm = 1.0 - r, 1.0 - s, 1.0 - t
    w = (rm * sm * tm, r * sm * tm, r * s * tm, rm * s * tm,
         rm * sm * t, r * sm * t, r * s * t, rm * s * t)
    fx = sum(w[i] * ci[0] for i, ci in enumerate((c0, c1, c2, c3, c4, c5, c6, c7))) - px
    fy = sum(w[i] * ci[1] for i, ci in enumerate((c0, c1, c2, c3, c4, c5, c6, c7))) - py
    fz = sum(w[i] * ci[2] for i, ci in enumerate((c0, c1, c2, c3, c4, c5, c6, c7))) - pz
    return np.array([r, s, t]), bool(fx * fx + fy * fy + fz * fz < tol2)


def _inside(rst: np.ndarray, slack: float) -> bool:
    return bool(np.all(rst >= -slack) and np.all(rst <= 1.0 + slack))


class CellLocator:
    """Locates containing cells in one block and interpolates fields."""

    def __init__(self, block: StructuredBlock, slack: float = 1e-8):
        self.block = block
        self.slack = slack
        self._centers = None
        self._tree: cKDTree | None = None
        self._bounds = block.bounds()
        # Cell corner coordinates gathered once, vectorized: repeated
        # per-cell fancy indexing dominated tracing profiles otherwise.
        c = block.coords
        self._cell_corners = np.stack(
            [
                c[:-1, :-1, :-1], c[1:, :-1, :-1], c[1:, 1:, :-1], c[:-1, 1:, :-1],
                c[:-1, :-1, 1:], c[1:, :-1, 1:], c[1:, 1:, 1:], c[:-1, 1:, 1:],
            ],
            axis=3,
        )  # (ci, cj, ck, 8, 3)

    # ------------------------------------------------------------ build
    def _ensure_tree(self) -> None:
        if self._tree is None:
            from .geometry import cell_centers

            centers = cell_centers(self.block)
            self._centers = centers.reshape(-1, 3)
            self._tree = cKDTree(self._centers)

    def _cell_index(self, flat: int) -> tuple[int, int, int]:
        ci, cj, ck = self.block.cell_shape
        i, rem = divmod(flat, cj * ck)
        j, k = divmod(rem, ck)
        return (i, j, k)

    def in_bounds(self, point: np.ndarray, pad: float = 0.0) -> bool:
        p = np.asarray(point)
        return bool(
            np.all(p >= self._bounds[0] - pad) and np.all(p <= self._bounds[1] + pad)
        )

    # ----------------------------------------------------------- locate
    def _try_cell(
        self, cell: tuple[int, int, int], point: np.ndarray
    ) -> tuple[np.ndarray, bool]:
        corners = self._cell_corners[cell]
        rst, ok = invert_trilinear(corners, point)
        return rst, ok and _inside(rst, self.slack)

    def locate(
        self,
        point: np.ndarray,
        hint: tuple[int, int, int] | None = None,
        k_candidates: int = 8,
        max_walk: int = 64,
    ) -> tuple[tuple[int, int, int], np.ndarray] | None:
        """Find ``(cell_index, natural_coords)`` for ``point``.

        With a ``hint``, walk from that cell using the direction in which
        natural coordinates overshoot (cheap for coherent queries);
        otherwise query the kd-tree over cell centers.  Returns ``None``
        when the point is in no cell of this block.
        """
        point = np.asarray(point, dtype=np.float64)
        if hint is not None:
            found = self._walk(point, hint, max_walk)
            if found is not None:
                return found
        if not self.in_bounds(point, pad=self.slack):
            return None
        self._ensure_tree()
        n_cells = self.block.n_cells
        k = min(k_candidates, n_cells)
        _dists, flats = self._tree.query(point, k=k)
        flats = np.atleast_1d(flats)
        for flat in flats:
            cell = self._cell_index(int(flat))
            rst, inside = self._try_cell(cell, point)
            if inside:
                return cell, rst
        return None

    def _walk(
        self, point: np.ndarray, start: tuple[int, int, int], max_walk: int
    ) -> tuple[tuple[int, int, int], np.ndarray] | None:
        ci, cj, ck = self.block.cell_shape
        cell = (
            min(max(start[0], 0), ci - 1),
            min(max(start[1], 0), cj - 1),
            min(max(start[2], 0), ck - 1),
        )
        visited = set()
        for _ in range(max_walk):
            if cell in visited:
                return None
            visited.add(cell)
            rst, inside = self._try_cell(cell, point)
            if inside:
                return cell, rst
            # Step toward where the natural coordinates point.
            step = [0, 0, 0]
            for a in range(3):
                if rst[a] < -self.slack:
                    step[a] = -1
                elif rst[a] > 1.0 + self.slack:
                    step[a] = 1
            if step == [0, 0, 0]:
                return None  # Newton failed without direction info
            nxt = (cell[0] + step[0], cell[1] + step[1], cell[2] + step[2])
            if not (0 <= nxt[0] < ci and 0 <= nxt[1] < cj and 0 <= nxt[2] < ck):
                return None  # walked off the block
            cell = nxt
        return None

    # ------------------------------------------------------ interpolate
    def interpolate(
        self, name: str, cell: tuple[int, int, int], rst: np.ndarray
    ) -> np.ndarray | float:
        """Trilinear value of field ``name`` at natural coords in ``cell``."""
        w = trilinear_weights(rst)
        data = self.block.field(name)
        i, j, k = cell
        if data.ndim == 3:
            corners = self.block.cell_corner_values(name, i, j, k)
            return float(w @ corners)
        corners = np.array(
            [
                data[i, j, k],
                data[i + 1, j, k],
                data[i + 1, j + 1, k],
                data[i, j + 1, k],
                data[i, j, k + 1],
                data[i + 1, j, k + 1],
                data[i + 1, j + 1, k + 1],
                data[i, j + 1, k + 1],
            ]
        )
        return w @ corners

    def sample(
        self, name: str, point: np.ndarray, hint: tuple[int, int, int] | None = None
    ) -> tuple[np.ndarray | float, tuple[int, int, int]] | None:
        """Locate ``point`` and interpolate ``name`` there in one call."""
        found = self.locate(point, hint=hint)
        if found is None:
            return None
        cell, rst = found
        return self.interpolate(name, cell, rst), cell
