"""Point location and trilinear interpolation in curvilinear blocks.

Pathline integration needs, at every Runge-Kutta stage, the velocity at
an arbitrary physical point.  On a curvilinear grid that requires

1. finding the cell containing the point (*point location*), and
2. inverting the trilinear mapping of that cell to get *natural
   coordinates* ``(r, s, t) ∈ [0,1]^3`` (Newton iteration), then
3. trilinearly blending the corner values.

:class:`CellLocator` combines a kd-tree over cell centers (cold start)
with cell-to-cell *walking* from a hint cell (the common case during
tracing, where consecutive queries are close together).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.spatial import cKDTree

from .block import StructuredBlock

__all__ = [
    "trilinear_weights",
    "trilinear_weights_many",
    "trilinear_map",
    "invert_trilinear",
    "invert_trilinear_many",
    "CellLocator",
]

#: Corner offsets in VTK hexahedron order (see StructuredBlock.cell_corner_points).
_CORNER_RST = np.array(
    [
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [1.0, 1.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
        [1.0, 0.0, 1.0],
        [1.0, 1.0, 1.0],
        [0.0, 1.0, 1.0],
    ]
)


def trilinear_weights(rst: np.ndarray) -> np.ndarray:
    """Shape-function values at natural coordinates, shape ``(8,)``."""
    r, s, t = rst
    rm, sm, tm = 1.0 - r, 1.0 - s, 1.0 - t
    return np.array(
        [
            rm * sm * tm,
            r * sm * tm,
            r * s * tm,
            rm * s * tm,
            rm * sm * t,
            r * sm * t,
            r * s * t,
            rm * s * t,
        ]
    )


def _weight_derivatives(rst: np.ndarray) -> np.ndarray:
    """d N_i / d (r,s,t), shape ``(8, 3)``."""
    r, s, t = rst
    rm, sm, tm = 1.0 - r, 1.0 - s, 1.0 - t
    return np.array(
        [
            [-sm * tm, -rm * tm, -rm * sm],
            [sm * tm, -r * tm, -r * sm],
            [s * tm, r * tm, -r * s],
            [-s * tm, rm * tm, -rm * s],
            [-sm * t, -rm * t, rm * sm],
            [sm * t, -r * t, r * sm],
            [s * t, r * t, r * s],
            [-s * t, rm * t, rm * s],
        ]
    )


def trilinear_map(corners: np.ndarray, rst: np.ndarray) -> np.ndarray:
    """Physical point at natural coordinates ``rst`` of a hexahedron."""
    return trilinear_weights(rst) @ corners


def trilinear_weights_many(rst: np.ndarray) -> np.ndarray:
    """Shape-function values for a batch of natural coordinates.

    ``rst`` has shape ``(n, 3)``; the result has shape ``(n, 8)``.
    """
    rst = np.asarray(rst, dtype=np.float64)
    r, s, t = rst[..., 0], rst[..., 1], rst[..., 2]
    rm, sm, tm = 1.0 - r, 1.0 - s, 1.0 - t
    smtm, stm, smt, st = sm * tm, s * tm, sm * t, s * t
    out = np.empty(rst.shape[:-1] + (8,), dtype=np.float64)
    out[..., 0] = rm * smtm
    out[..., 1] = r * smtm
    out[..., 2] = r * stm
    out[..., 3] = rm * stm
    out[..., 4] = rm * smt
    out[..., 5] = r * smt
    out[..., 6] = r * st
    out[..., 7] = rm * st
    return out


def _weight_derivative_columns(
    r: np.ndarray, s: np.ndarray, t: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(dN/dr, dN/ds, dN/dt)`` for a batch, each of shape ``(n, 8)``."""
    rm, sm, tm = 1.0 - r, 1.0 - s, 1.0 - t
    n = np.shape(r)
    smtm, stm, smt, st = sm * tm, s * tm, sm * t, s * t
    dr = np.empty(n + (8,), dtype=np.float64)
    dr[..., 0] = -smtm
    dr[..., 1] = smtm
    dr[..., 2] = stm
    dr[..., 3] = -stm
    dr[..., 4] = -smt
    dr[..., 5] = smt
    dr[..., 6] = st
    dr[..., 7] = -st
    rmtm, rtm, rmt, rt = rm * tm, r * tm, rm * t, r * t
    ds = np.empty(n + (8,), dtype=np.float64)
    ds[..., 0] = -rmtm
    ds[..., 1] = -rtm
    ds[..., 2] = rtm
    ds[..., 3] = rmtm
    ds[..., 4] = -rmt
    ds[..., 5] = -rt
    ds[..., 6] = rt
    ds[..., 7] = rmt
    rmsm, rsm, rs = rm * sm, r * sm, r * s
    rms = rm * s
    dt = np.empty(n + (8,), dtype=np.float64)
    dt[..., 0] = -rmsm
    dt[..., 1] = -rsm
    dt[..., 2] = -rs
    dt[..., 3] = -rms
    dt[..., 4] = rmsm
    dt[..., 5] = rsm
    dt[..., 6] = rs
    dt[..., 7] = rms
    return dr, ds, dt


#: Batch sizes at or below this take scalar Python fast paths.  Particle
#: batches during replay are routinely 2-4 points, where per-call numpy
#: dispatch dominates the actual arithmetic by an order of magnitude.
_SMALL_BATCH = 16


def _invert_one(cell, px, py, pz, tol2, max_iter):
    """One Newton inversion, bit-identical to :func:`invert_trilinear_many`.

    Every expression mirrors the vectorized sweep, including numpy's
    pairwise association for 8-element row sums
    (``((a0+a1)+(a2+a3))+((a4+a5)+(a6+a7))``), so a row solved here is
    indistinguishable from the same row solved in a large batch.  This
    matters because downstream cell/step decisions feed the simulated
    request stream: the golden trace fingerprints pin these bits.
    """
    (x0, y0, z0), (x1, y1, z1), (x2, y2, z2), (x3, y3, z3), \
        (x4, y4, z4), (x5, y5, z5), (x6, y6, z6), (x7, y7, z7) = cell
    r = s = t = 0.5
    for _ in range(max_iter):
        rm = 1.0 - r; sm = 1.0 - s; tm = 1.0 - t
        smtm = sm * tm; stm = s * tm; smt = sm * t; st = s * t
        w0 = rm * smtm; w1 = r * smtm; w2 = r * stm; w3 = rm * stm
        w4 = rm * smt; w5 = r * smt; w6 = r * st; w7 = rm * st
        fx = ((w0 * x0 + w1 * x1) + (w2 * x2 + w3 * x3)) \
            + ((w4 * x4 + w5 * x5) + (w6 * x6 + w7 * x7)) - px
        fy = ((w0 * y0 + w1 * y1) + (w2 * y2 + w3 * y3)) \
            + ((w4 * y4 + w5 * y5) + (w6 * y6 + w7 * y7)) - py
        fz = ((w0 * z0 + w1 * z1) + (w2 * z2 + w3 * z3)) \
            + ((w4 * z4 + w5 * z5) + (w6 * z6 + w7 * z7)) - pz
        if fx * fx + fy * fy + fz * fz < tol2:
            return r, s, t, True
        # Jacobian rows, with the derivative columns of
        # _weight_derivative_columns folded in sign-by-sign.
        j00 = ((-(smtm * x0) + smtm * x1) + (stm * x2 - stm * x3)) \
            + ((-(smt * x4) + smt * x5) + (st * x6 - st * x7))
        j10 = ((-(smtm * y0) + smtm * y1) + (stm * y2 - stm * y3)) \
            + ((-(smt * y4) + smt * y5) + (st * y6 - st * y7))
        j20 = ((-(smtm * z0) + smtm * z1) + (stm * z2 - stm * z3)) \
            + ((-(smt * z4) + smt * z5) + (st * z6 - st * z7))
        rmtm = rm * tm; rtm = r * tm; rmt = rm * t; rt = r * t
        j01 = ((-(rmtm * x0) - rtm * x1) + (rtm * x2 + rmtm * x3)) \
            + ((-(rmt * x4) - rt * x5) + (rt * x6 + rmt * x7))
        j11 = ((-(rmtm * y0) - rtm * y1) + (rtm * y2 + rmtm * y3)) \
            + ((-(rmt * y4) - rt * y5) + (rt * y6 + rmt * y7))
        j21 = ((-(rmtm * z0) - rtm * z1) + (rtm * z2 + rmtm * z3)) \
            + ((-(rmt * z4) - rt * z5) + (rt * z6 + rmt * z7))
        rmsm = rm * sm; rsm = r * sm; rs = r * s; rms = rm * s
        j02 = ((-(rmsm * x0) - rsm * x1) + (-(rs * x2) - rms * x3)) \
            + ((rmsm * x4 + rsm * x5) + (rs * x6 + rms * x7))
        j12 = ((-(rmsm * y0) - rsm * y1) + (-(rs * y2) - rms * y3)) \
            + ((rmsm * y4 + rsm * y5) + (rs * y6 + rms * y7))
        j22 = ((-(rmsm * z0) - rsm * z1) + (-(rs * z2) - rms * z3)) \
            + ((rmsm * z4 + rsm * z5) + (rs * z6 + rms * z7))
        cof00 = j11 * j22 - j12 * j21
        cof01 = j10 * j22 - j12 * j20
        cof02 = j10 * j21 - j11 * j20
        det = j00 * cof00 - j01 * cof01 + j02 * cof02
        if det == 0.0 or not math.isfinite(det):
            return r, s, t, False
        inv = 1.0 / det
        d_r = inv * (
            fx * cof00 - j01 * (fy * j22 - j12 * fz) + j02 * (fy * j21 - j11 * fz)
        )
        d_s = inv * (
            j00 * (fy * j22 - j12 * fz) - fx * cof01 + j02 * (j10 * fz - fy * j20)
        )
        d_t = inv * (
            j00 * (j11 * fz - fy * j21) - j01 * (j10 * fz - fy * j20) + fx * cof02
        )
        r = r - d_r; s = s - d_s; t = t - d_t
        # Keep Newton from running away on strongly curved cells.
        r = -1.0 if r < -1.0 else (2.0 if r > 2.0 else r)
        s = -1.0 if s < -1.0 else (2.0 if s > 2.0 else s)
        t = -1.0 if t < -1.0 else (2.0 if t > 2.0 else t)
    rm = 1.0 - r; sm = 1.0 - s; tm = 1.0 - t
    smtm = sm * tm; stm = s * tm; smt = sm * t; st = s * t
    w0 = rm * smtm; w1 = r * smtm; w2 = r * stm; w3 = rm * stm
    w4 = rm * smt; w5 = r * smt; w6 = r * st; w7 = rm * st
    fx = ((w0 * x0 + w1 * x1) + (w2 * x2 + w3 * x3)) \
        + ((w4 * x4 + w5 * x5) + (w6 * x6 + w7 * x7)) - px
    fy = ((w0 * y0 + w1 * y1) + (w2 * y2 + w3 * y3)) \
        + ((w4 * y4 + w5 * y5) + (w6 * y6 + w7 * y7)) - py
    fz = ((w0 * z0 + w1 * z1) + (w2 * z2 + w3 * z3)) \
        + ((w4 * z4 + w5 * z5) + (w6 * z6 + w7 * z7)) - pz
    return r, s, t, (fx * fx + fy * fy + fz * fz < tol2)


def invert_trilinear_many(
    corners: np.ndarray,
    points: np.ndarray,
    tol: float = 1e-10,
    max_iter: int = 25,
) -> tuple[np.ndarray, np.ndarray]:
    """Newton-invert the trilinear map for a batch of (cell, point) pairs.

    ``corners`` has shape ``(n, 8, 3)`` and ``points`` ``(n, 3)``; the
    result is ``(rst, converged)`` with shapes ``(n, 3)`` and ``(n,)``.
    Each pair runs the same damped Newton iteration as the scalar
    :func:`invert_trilinear` (identical convergence test, clamping and
    singular-Jacobian handling), but with per-point convergence masks so
    one LAPACK-free vectorized sweep serves the whole batch.
    """
    c = np.asarray(corners, dtype=np.float64).reshape(-1, 8, 3)
    p = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    n = len(c)
    if len(p) != n:
        raise ValueError(f"{n} corner sets but {len(p)} points")
    rst = np.full((n, 3), 0.5)
    converged = np.zeros(n, dtype=bool)
    if n == 0:
        return rst, converged
    if n <= _SMALL_BATCH:
        tol2 = tol * tol
        cl = c.tolist()
        pl = p.tolist()
        for i in range(n):
            px, py, pz = pl[i]
            r, s, t, ok = _invert_one(cl[i], px, py, pz, tol2, max_iter)
            row = rst[i]
            row[0] = r; row[1] = s; row[2] = t
            converged[i] = ok
        return rst, converged
    cx, cy, cz = c[:, :, 0], c[:, :, 1], c[:, :, 2]
    tol2 = tol * tol
    #: rows still iterating (neither converged nor singular).
    active = np.arange(n)
    for _ in range(max_iter):
        r, s, t = rst[active, 0], rst[active, 1], rst[active, 2]
        w = trilinear_weights_many(rst[active])
        fx = (w * cx[active]).sum(axis=1) - p[active, 0]
        fy = (w * cy[active]).sum(axis=1) - p[active, 1]
        fz = (w * cz[active]).sum(axis=1) - p[active, 2]
        done = fx * fx + fy * fy + fz * fz < tol2
        if done.any():
            converged[active[done]] = True
            keep = ~done
            active = active[keep]
            if active.size == 0:
                return rst, converged
            r, s, t = r[keep], s[keep], t[keep]
            fx, fy, fz = fx[keep], fy[keep], fz[keep]
        dr, ds, dt = _weight_derivative_columns(r, s, t)
        j00 = (dr * cx[active]).sum(axis=1)
        j10 = (dr * cy[active]).sum(axis=1)
        j20 = (dr * cz[active]).sum(axis=1)
        j01 = (ds * cx[active]).sum(axis=1)
        j11 = (ds * cy[active]).sum(axis=1)
        j21 = (ds * cz[active]).sum(axis=1)
        j02 = (dt * cx[active]).sum(axis=1)
        j12 = (dt * cy[active]).sum(axis=1)
        j22 = (dt * cz[active]).sum(axis=1)
        cof00 = j11 * j22 - j12 * j21
        cof01 = j10 * j22 - j12 * j20
        cof02 = j10 * j21 - j11 * j20
        det = j00 * cof00 - j01 * cof01 + j02 * cof02
        bad = (det == 0.0) | ~np.isfinite(det)
        if bad.any():
            # Singular / NaN Jacobian: give up on those rows (converged
            # stays False), keep iterating the rest.
            keep = ~bad
            active = active[keep]
            if active.size == 0:
                return rst, converged
            fx, fy, fz = fx[keep], fy[keep], fz[keep]
            j00, j01, j02 = j00[keep], j01[keep], j02[keep]
            j10, j11, j12 = j10[keep], j11[keep], j12[keep]
            j20, j21, j22 = j20[keep], j21[keep], j22[keep]
            cof00, cof01, cof02 = cof00[keep], cof01[keep], cof02[keep]
            det = det[keep]
        inv = 1.0 / det
        d_r = inv * (
            fx * cof00 - j01 * (fy * j22 - j12 * fz) + j02 * (fy * j21 - j11 * fz)
        )
        d_s = inv * (
            j00 * (fy * j22 - j12 * fz) - fx * cof01 + j02 * (j10 * fz - fy * j20)
        )
        d_t = inv * (
            j00 * (j11 * fz - fy * j21) - j01 * (j10 * fz - fy * j20) + fx * cof02
        )
        step = np.stack([d_r, d_s, d_t], axis=-1)
        # Keep Newton from running away on strongly curved cells.
        rst[active] = np.clip(rst[active] - step, -1.0, 2.0)
    if active.size:
        w = trilinear_weights_many(rst[active])
        fx = (w * cx[active]).sum(axis=1) - p[active, 0]
        fy = (w * cy[active]).sum(axis=1) - p[active, 1]
        fz = (w * cz[active]).sum(axis=1) - p[active, 2]
        converged[active] = fx * fx + fy * fy + fz * fz < tol2
    return rst, converged


def invert_trilinear(
    corners: np.ndarray,
    point: np.ndarray,
    tol: float = 1e-10,
    max_iter: int = 25,
) -> tuple[np.ndarray, bool]:
    """Newton-invert the trilinear map; returns ``(rst, converged)``.

    ``converged`` only says the Newton iteration reached ``tol``; whether
    the point is *inside* is a separate range check on ``rst``.

    Implementation note: the 3x3 Newton step is written in scalar Python
    — for a single point, list arithmetic beats array construction and
    LAPACK dispatch.  Batched queries go through
    :func:`invert_trilinear_many`, the vectorized counterpart whose
    agreement with this reference is pinned by the test suite.
    """
    c = np.asarray(corners, dtype=np.float64).reshape(8, 3).tolist()
    px, py, pz = (float(v) for v in np.asarray(point, dtype=np.float64))
    (c0, c1, c2, c3, c4, c5, c6, c7) = c
    r = s = t = 0.5
    tol2 = tol * tol
    for _ in range(max_iter):
        rm, sm, tm = 1.0 - r, 1.0 - s, 1.0 - t
        w0 = rm * sm * tm
        w1 = r * sm * tm
        w2 = r * s * tm
        w3 = rm * s * tm
        w4 = rm * sm * t
        w5 = r * sm * t
        w6 = r * s * t
        w7 = rm * s * t
        fx = (w0 * c0[0] + w1 * c1[0] + w2 * c2[0] + w3 * c3[0]
              + w4 * c4[0] + w5 * c5[0] + w6 * c6[0] + w7 * c7[0]) - px
        fy = (w0 * c0[1] + w1 * c1[1] + w2 * c2[1] + w3 * c3[1]
              + w4 * c4[1] + w5 * c5[1] + w6 * c6[1] + w7 * c7[1]) - py
        fz = (w0 * c0[2] + w1 * c1[2] + w2 * c2[2] + w3 * c3[2]
              + w4 * c4[2] + w5 * c5[2] + w6 * c6[2] + w7 * c7[2]) - pz
        if fx * fx + fy * fy + fz * fz < tol2:
            return np.array([r, s, t]), True
        # dN_i/dr etc., folded straight into the 3x3 Jacobian
        # J[c, a] = d x_c / d rst_a.
        dr = [-sm * tm, sm * tm, s * tm, -s * tm, -sm * t, sm * t, s * t, -s * t]
        ds = [-rm * tm, -r * tm, r * tm, rm * tm, -rm * t, -r * t, r * t, rm * t]
        dt = [-rm * sm, -r * sm, -r * s, -rm * s, rm * sm, r * sm, r * s, rm * s]
        j00 = j01 = j02 = j10 = j11 = j12 = j20 = j21 = j22 = 0.0
        for i, ci in enumerate((c0, c1, c2, c3, c4, c5, c6, c7)):
            j00 += dr[i] * ci[0]
            j10 += dr[i] * ci[1]
            j20 += dr[i] * ci[2]
            j01 += ds[i] * ci[0]
            j11 += ds[i] * ci[1]
            j21 += ds[i] * ci[2]
            j02 += dt[i] * ci[0]
            j12 += dt[i] * ci[1]
            j22 += dt[i] * ci[2]
        det = (
            j00 * (j11 * j22 - j12 * j21)
            - j01 * (j10 * j22 - j12 * j20)
            + j02 * (j10 * j21 - j11 * j20)
        )
        if det == 0.0 or det != det:  # singular or NaN
            return np.array([r, s, t]), False
        # Cramer's rule for J . delta = f.
        inv = 1.0 / det
        d_r = inv * (
            fx * (j11 * j22 - j12 * j21)
            - j01 * (fy * j22 - j12 * fz)
            + j02 * (fy * j21 - j11 * fz)
        )
        d_s = inv * (
            j00 * (fy * j22 - j12 * fz)
            - fx * (j10 * j22 - j12 * j20)
            + j02 * (j10 * fz - fy * j20)
        )
        d_t = inv * (
            j00 * (j11 * fz - fy * j21)
            - j01 * (j10 * fz - fy * j20)
            + fx * (j10 * j21 - j11 * j20)
        )
        r -= d_r
        s -= d_s
        t -= d_t
        # Keep Newton from running away on strongly curved cells.
        r = -1.0 if r < -1.0 else (2.0 if r > 2.0 else r)
        s = -1.0 if s < -1.0 else (2.0 if s > 2.0 else s)
        t = -1.0 if t < -1.0 else (2.0 if t > 2.0 else t)
    rm, sm, tm = 1.0 - r, 1.0 - s, 1.0 - t
    w = (rm * sm * tm, r * sm * tm, r * s * tm, rm * s * tm,
         rm * sm * t, r * sm * t, r * s * t, rm * s * t)
    fx = sum(w[i] * ci[0] for i, ci in enumerate((c0, c1, c2, c3, c4, c5, c6, c7))) - px
    fy = sum(w[i] * ci[1] for i, ci in enumerate((c0, c1, c2, c3, c4, c5, c6, c7))) - py
    fz = sum(w[i] * ci[2] for i, ci in enumerate((c0, c1, c2, c3, c4, c5, c6, c7))) - pz
    return np.array([r, s, t]), bool(fx * fx + fy * fy + fz * fz < tol2)


def _inside(rst: np.ndarray, slack: float) -> bool:
    return bool(np.all(rst >= -slack) and np.all(rst <= 1.0 + slack))


class CellLocator:
    """Locates containing cells in one block and interpolates fields."""

    def __init__(self, block: StructuredBlock, slack: float = 1e-8):
        self.block = block
        self.slack = slack
        self._centers = None
        self._tree: cKDTree | None = None
        self._bounds = block.bounds()
        # Cell corner coordinates gathered once, vectorized: repeated
        # per-cell fancy indexing dominated tracing profiles otherwise.
        c = block.coords
        self._cell_corners = np.stack(
            [
                c[:-1, :-1, :-1], c[1:, :-1, :-1], c[1:, 1:, :-1], c[:-1, 1:, :-1],
                c[:-1, :-1, 1:], c[1:, :-1, 1:], c[1:, 1:, 1:], c[:-1, 1:, 1:],
            ],
            axis=3,
        )  # (ci, cj, ck, 8, 3)

    # ------------------------------------------------------------ build
    def _ensure_tree(self) -> None:
        if self._tree is None:
            from .geometry import cell_centers

            centers = cell_centers(self.block)
            self._centers = centers.reshape(-1, 3)
            self._tree = cKDTree(self._centers)

    def _cell_index(self, flat: int) -> tuple[int, int, int]:
        ci, cj, ck = self.block.cell_shape
        i, rem = divmod(flat, cj * ck)
        j, k = divmod(rem, ck)
        return (i, j, k)

    def in_bounds(self, point: np.ndarray, pad: float = 0.0) -> bool:
        p = np.asarray(point)
        return bool(
            np.all(p >= self._bounds[0] - pad) and np.all(p <= self._bounds[1] + pad)
        )

    # ----------------------------------------------------------- locate
    def _try_cell(
        self, cell: tuple[int, int, int], point: np.ndarray
    ) -> tuple[np.ndarray, bool]:
        corners = self._cell_corners[cell]
        rst, ok = invert_trilinear(corners, point)
        return rst, ok and _inside(rst, self.slack)

    def locate(
        self,
        point: np.ndarray,
        hint: tuple[int, int, int] | None = None,
        k_candidates: int = 8,
        max_walk: int = 64,
    ) -> tuple[tuple[int, int, int], np.ndarray] | None:
        """Find ``(cell_index, natural_coords)`` for ``point``.

        With a ``hint``, walk from that cell using the direction in which
        natural coordinates overshoot (cheap for coherent queries);
        otherwise query the kd-tree over cell centers.  Returns ``None``
        when the point is in no cell of this block.
        """
        point = np.asarray(point, dtype=np.float64)
        if hint is not None:
            found = self._walk(point, hint, max_walk)
            if found is not None:
                return found
        if not self.in_bounds(point, pad=self.slack):
            return None
        self._ensure_tree()
        n_cells = self.block.n_cells
        k = min(k_candidates, n_cells)
        _dists, flats = self._tree.query(point, k=k)
        flats = np.atleast_1d(flats)
        for flat in flats:
            cell = self._cell_index(int(flat))
            rst, inside = self._try_cell(cell, point)
            if inside:
                return cell, rst
        return None

    def _walk(
        self, point: np.ndarray, start: tuple[int, int, int], max_walk: int
    ) -> tuple[tuple[int, int, int], np.ndarray] | None:
        ci, cj, ck = self.block.cell_shape
        cell = (
            min(max(start[0], 0), ci - 1),
            min(max(start[1], 0), cj - 1),
            min(max(start[2], 0), ck - 1),
        )
        visited = set()
        for _ in range(max_walk):
            if cell in visited:
                return None
            visited.add(cell)
            rst, inside = self._try_cell(cell, point)
            if inside:
                return cell, rst
            # Step toward where the natural coordinates point.
            step = [0, 0, 0]
            for a in range(3):
                if rst[a] < -self.slack:
                    step[a] = -1
                elif rst[a] > 1.0 + self.slack:
                    step[a] = 1
            if step == [0, 0, 0]:
                return None  # Newton failed without direction info
            nxt = (cell[0] + step[0], cell[1] + step[1], cell[2] + step[2])
            if not (0 <= nxt[0] < ci and 0 <= nxt[1] < cj and 0 <= nxt[2] < ck):
                return None  # walked off the block
            cell = nxt
        return None

    # ----------------------------------------------------- batch locate
    def locate_many(
        self,
        points: np.ndarray,
        hints: "list[tuple[int, int, int] | None] | None" = None,
        k_candidates: int = 8,
        max_walk: int = 64,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch :meth:`locate`: one kd-tree query / walk sweep for many points.

        ``points`` has shape ``(n, 3)``; ``hints`` is an optional
        per-point list of start cells (``None`` entries fall straight
        through to the kd-tree).  Returns ``(cells, rst)`` where
        ``cells`` is ``(n, 3)`` int64 with ``-1`` rows marking points
        contained in no cell of this block, and ``rst`` the matching
        natural coordinates.

        Points with hints walk together (one vectorized Newton solve per
        walk front); the rest share one batched kd-tree query and are
        tested against their k nearest candidate cells rank by rank.
        """
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        n = len(pts)
        cells = np.full((n, 3), -1, dtype=np.int64)
        rst_out = np.zeros((n, 3), dtype=np.float64)
        if n == 0:
            return cells, rst_out
        if hints is not None:
            hint_rows = [row for row, h in enumerate(hints) if h is not None]
            if hint_rows:
                rows = np.asarray(hint_rows, dtype=np.int64)
                starts = np.asarray(
                    [hints[row] for row in hint_rows], dtype=np.int64
                )
                w_cells, w_rst = self._walk_many(pts[rows], starts, max_walk)
                cells[rows] = w_cells
                rst_out[rows] = w_rst
        unresolved = np.nonzero(cells[:, 0] < 0)[0]
        if unresolved.size == 0:
            return cells, rst_out
        pad = self.slack
        inb = np.all(pts[unresolved] >= self._bounds[0] - pad, axis=1) & np.all(
            pts[unresolved] <= self._bounds[1] + pad, axis=1
        )
        pending = unresolved[inb]
        if pending.size == 0:
            return cells, rst_out
        self._ensure_tree()
        n_cells = self.block.n_cells
        k = min(k_candidates, n_cells)
        _dists, flats = self._tree.query(pts[pending], k=k)
        flats = np.atleast_2d(np.asarray(flats, dtype=np.int64).reshape(len(pending), k))
        ci, cj, ck = self.block.cell_shape
        for rank in range(k):
            if pending.size == 0:
                break
            flat = flats[:, rank]
            i, rem = np.divmod(flat, cj * ck)
            j, kk = np.divmod(rem, ck)
            corners = self._cell_corners[i, j, kk]
            rst, ok = invert_trilinear_many(corners, pts[pending])
            inside = (
                ok
                & np.all(rst >= -self.slack, axis=1)
                & np.all(rst <= 1.0 + self.slack, axis=1)
            )
            if inside.any():
                rows = pending[inside]
                cells[rows, 0] = i[inside]
                cells[rows, 1] = j[inside]
                cells[rows, 2] = kk[inside]
                rst_out[rows] = rst[inside]
                pending = pending[~inside]
                flats = flats[~inside]
        return cells, rst_out

    def _walk_many(
        self, pts: np.ndarray, starts: np.ndarray, max_walk: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized cell walk: every point steps from its own hint cell."""
        m = len(pts)
        ci, cj, ck = self.block.cell_shape
        if m <= _SMALL_BATCH:
            return self._walk_small(pts, starts, max_walk)
        limit = np.array([ci - 1, cj - 1, ck - 1], dtype=np.int64)
        cur = np.clip(np.asarray(starts, dtype=np.int64), 0, limit)
        out_cells = np.full((m, 3), -1, dtype=np.int64)
        out_rst = np.zeros((m, 3), dtype=np.float64)
        alive = np.arange(m)
        prev = np.full((m, 3), -9, dtype=np.int64)
        for _ in range(max_walk):
            corners = self._cell_corners[cur[alive, 0], cur[alive, 1], cur[alive, 2]]
            rst, ok = invert_trilinear_many(corners, pts[alive])
            inside = (
                ok
                & np.all(rst >= -self.slack, axis=1)
                & np.all(rst <= 1.0 + self.slack, axis=1)
            )
            if inside.any():
                rows = alive[inside]
                out_cells[rows] = cur[rows]
                out_rst[rows] = rst[inside]
            # Step toward where the natural coordinates point.
            step = np.where(rst < -self.slack, -1, np.where(rst > 1.0 + self.slack, 1, 0))
            nxt = cur[alive] + step
            keep = (
                ~inside
                & step.any(axis=1)  # Newton failed without direction info
                & (nxt >= 0).all(axis=1)
                & (nxt <= limit).all(axis=1)  # walked off the block
                & ~(nxt == prev[alive]).all(axis=1)  # two-cell oscillation
            )
            rows = alive[keep]
            if rows.size == 0:
                break
            prev[rows] = cur[rows]
            cur[rows] = nxt[keep]
            alive = rows
        return out_cells, out_rst

    def _walk_small(
        self, pts: np.ndarray, starts: np.ndarray, max_walk: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scalar counterpart of :meth:`_walk_many` for tiny batches.

        Rows walk independently in the vectorized sweep, so walking them
        one at a time with the bit-identical scalar Newton solve
        (:func:`_invert_one`) yields the exact same cells and natural
        coordinates while skipping the per-step masking machinery.
        """
        m = len(pts)
        ci, cj, ck = self.block.cell_shape
        i_hi, j_hi, k_hi = ci - 1, cj - 1, ck - 1
        out_cells = np.full((m, 3), -1, dtype=np.int64)
        out_rst = np.zeros((m, 3), dtype=np.float64)
        corners_grid = self._cell_corners
        lo_ok = -self.slack
        hi_ok = 1.0 + self.slack
        tol2 = 1e-10 * 1e-10
        pts_l = np.asarray(pts, dtype=np.float64).tolist()
        starts_l = np.asarray(starts, dtype=np.int64).tolist()
        for row in range(m):
            px, py, pz = pts_l[row]
            a, b, c = starts_l[row]
            a = 0 if a < 0 else (i_hi if a > i_hi else a)
            b = 0 if b < 0 else (j_hi if b > j_hi else b)
            c = 0 if c < 0 else (k_hi if c > k_hi else c)
            pa = pb = pc = -9
            for _ in range(max_walk):
                cell = corners_grid[a, b, c].tolist()
                r, s, t, ok = _invert_one(cell, px, py, pz, tol2, 25)
                if (
                    ok
                    and r >= lo_ok and s >= lo_ok and t >= lo_ok
                    and r <= hi_ok and s <= hi_ok and t <= hi_ok
                ):
                    oc = out_cells[row]
                    oc[0] = a; oc[1] = b; oc[2] = c
                    orow = out_rst[row]
                    orow[0] = r; orow[1] = s; orow[2] = t
                    break
                # Step toward where the natural coordinates point.
                sa = -1 if r < lo_ok else (1 if r > hi_ok else 0)
                sb = -1 if s < lo_ok else (1 if s > hi_ok else 0)
                sc = -1 if t < lo_ok else (1 if t > hi_ok else 0)
                if sa == 0 and sb == 0 and sc == 0:
                    break  # Newton failed without direction info
                na, nb, nc = a + sa, b + sb, c + sc
                if not (0 <= na <= i_hi and 0 <= nb <= j_hi and 0 <= nc <= k_hi):
                    break  # walked off the block
                if na == pa and nb == pb and nc == pc:
                    break  # two-cell oscillation
                pa, pb, pc = a, b, c
                a, b, c = na, nb, nc
        return out_cells, out_rst

    def interpolate_many(
        self, name: str, cells: np.ndarray, rst: np.ndarray
    ) -> np.ndarray:
        """Batch :meth:`interpolate`: one gather for many (cell, rst) pairs.

        ``cells`` is ``(n, 3)`` int, ``rst`` ``(n, 3)``; returns ``(n,)``
        for scalar fields and ``(n, 3)`` for vector fields.
        """
        cells = np.asarray(cells, dtype=np.int64).reshape(-1, 3)
        data = self.block.field(name)
        n = len(cells)
        if n <= _SMALL_BATCH:
            return self._interpolate_small(data, cells, rst)
        w = trilinear_weights_many(np.asarray(rst, dtype=np.float64).reshape(-1, 3))
        i, j, k = cells[:, 0], cells[:, 1], cells[:, 2]
        corners = np.stack(
            [
                data[i, j, k],
                data[i + 1, j, k],
                data[i + 1, j + 1, k],
                data[i, j + 1, k],
                data[i, j, k + 1],
                data[i + 1, j, k + 1],
                data[i + 1, j + 1, k + 1],
                data[i, j + 1, k + 1],
            ],
            axis=1,
        )
        if data.ndim == 3:
            return (w * corners).sum(axis=1)
        return (w[:, :, None] * corners).sum(axis=1)

    def _interpolate_small(
        self, data: np.ndarray, cells: np.ndarray, rst: np.ndarray
    ) -> np.ndarray:
        """Scalar counterpart of :meth:`interpolate_many` for tiny batches.

        Gathers the 8 corner values per row directly and blends them in
        numpy's reduction order — pairwise for the scalar-field case
        (contiguous inner-axis sum), sequential for the vector case
        (outer-axis sum) — so results are bit-identical to the
        vectorized gather while skipping the batch ``np.stack``.
        """
        n = len(cells)
        cells_l = cells.tolist()
        rst_l = np.asarray(rst, dtype=np.float64).reshape(-1, 3).tolist()
        vector = data.ndim != 3
        n_comp = data.shape[3] if vector else 0
        out = np.empty((n, n_comp) if vector else n, dtype=np.float64)
        for row in range(n):
            i, j, k = cells_l[row]
            r, s, t = rst_l[row]
            rm = 1.0 - r; sm = 1.0 - s; tm = 1.0 - t
            smtm = sm * tm; stm = s * tm; smt = sm * t; st = s * t
            w0 = rm * smtm; w1 = r * smtm; w2 = r * stm; w3 = rm * stm
            w4 = rm * smt; w5 = r * smt; w6 = r * st; w7 = rm * st
            i1, j1, k1 = i + 1, j + 1, k + 1
            if not vector:
                out[row] = (
                    (w0 * float(data[i, j, k]) + w1 * float(data[i1, j, k]))
                    + (w2 * float(data[i1, j1, k]) + w3 * float(data[i, j1, k]))
                ) + (
                    (w4 * float(data[i, j, k1]) + w5 * float(data[i1, j, k1]))
                    + (w6 * float(data[i1, j1, k1]) + w7 * float(data[i, j1, k1]))
                )
                continue
            c0 = data[i, j, k].tolist()
            c1 = data[i1, j, k].tolist()
            c2 = data[i1, j1, k].tolist()
            c3 = data[i, j1, k].tolist()
            c4 = data[i, j, k1].tolist()
            c5 = data[i1, j, k1].tolist()
            c6 = data[i1, j1, k1].tolist()
            c7 = data[i, j1, k1].tolist()
            orow = out[row]
            for comp in range(n_comp):
                orow[comp] = (
                    w0 * c0[comp] + w1 * c1[comp] + w2 * c2[comp]
                    + w3 * c3[comp] + w4 * c4[comp] + w5 * c5[comp]
                    + w6 * c6[comp] + w7 * c7[comp]
                )
        return out

    # ------------------------------------------------------ interpolate
    def interpolate(
        self, name: str, cell: tuple[int, int, int], rst: np.ndarray
    ) -> np.ndarray | float:
        """Trilinear value of field ``name`` at natural coords in ``cell``."""
        w = trilinear_weights(rst)
        data = self.block.field(name)
        i, j, k = cell
        if data.ndim == 3:
            corners = self.block.cell_corner_values(name, i, j, k)
            return float(w @ corners)
        corners = np.array(
            [
                data[i, j, k],
                data[i + 1, j, k],
                data[i + 1, j + 1, k],
                data[i, j + 1, k],
                data[i, j, k + 1],
                data[i + 1, j, k + 1],
                data[i + 1, j + 1, k + 1],
                data[i, j + 1, k + 1],
            ]
        )
        return w @ corners

    def sample(
        self, name: str, point: np.ndarray, hint: tuple[int, int, int] | None = None
    ) -> tuple[np.ndarray | float, tuple[int, int, int]] | None:
        """Locate ``point`` and interpolate ``name`` there in one call."""
        found = self.locate(point, hint=hint)
        if found is None:
            return None
        cell, rst = found
        return self.interpolate(name, cell, rst), cell
