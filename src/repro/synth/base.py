"""Shared machinery for synthetic paper-scale datasets.

Each synthetic dataset has two resolutions per block:

* the **actual** shape — small arrays that are really allocated, so
  algorithms do real numerics on a laptop; and
* the **modeled** shape — the paper-scale resolution used by the
  simulated runtime's cost model and by on-disk-size accounting.

:func:`fit_modeled_shapes` scales the actual shapes uniformly until the
dataset's modeled size on disk matches the paper's Table 1 value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..grids.block import BlockHandle, StructuredBlock
from ..grids.multiblock import MultiBlockDataset, TimeSeries
from .fields import AnalyticField

__all__ = [
    "BYTES_PER_POINT",
    "DatasetSpec",
    "SyntheticDataset",
    "fit_modeled_shapes",
]

#: On-disk record per grid point: coords(3) + velocity(3) + pressure(1),
#: single precision (the common CFD export format of the era).
BYTES_PER_POINT = 7 * 4


def _points(shape: Sequence[int]) -> int:
    ni, nj, nk = shape
    return ni * nj * nk


def fit_modeled_shapes(
    actual_shapes: Sequence[tuple[int, int, int]],
    target_bytes: int,
    n_timesteps: int,
    bytes_per_point: int = BYTES_PER_POINT,
) -> list[tuple[int, int, int]]:
    """Scale shapes uniformly so the whole series totals ``target_bytes``.

    Finds a per-axis factor ``s`` by bisection such that
    ``sum(points(round(shape * s))) * n_timesteps * bytes_per_point``
    is as close as possible to ``target_bytes``.
    """
    if target_bytes <= 0:
        raise ValueError(f"target_bytes must be positive, got {target_bytes}")
    target_points = target_bytes / (n_timesteps * bytes_per_point)

    def total(s: float) -> float:
        return float(
            sum(
                _points([max(2, round(d * s)) for d in shape])
                for shape in actual_shapes
            )
        )

    lo, hi = 1e-3, 1.0
    while total(hi) < target_points:
        hi *= 2.0
        if hi > 1e6:  # pragma: no cover - absurd target
            raise ValueError("cannot fit modeled shapes to target size")
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if total(mid) < target_points:
            lo = mid
        else:
            hi = mid
    # total() is a step function of s; the bracket ends straddle the
    # target, so pick whichever side rounds closer rather than the
    # midpoint (which can land a full rounding jump away on tiny dims).
    s = min((lo, hi), key=lambda cand: abs(total(cand) - target_points))
    return [
        tuple(max(2, round(d * s)) for d in shape)  # type: ignore[misc]
        for shape in actual_shapes
    ]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a synthetic multi-block time series."""

    name: str
    n_timesteps: int
    n_blocks: int
    dt: float
    actual_shapes: tuple[tuple[int, int, int], ...]
    modeled_shapes: tuple[tuple[int, int, int], ...]
    bytes_per_point: int = BYTES_PER_POINT

    def __post_init__(self) -> None:
        if len(self.actual_shapes) != self.n_blocks:
            raise ValueError("one actual shape per block required")
        if len(self.modeled_shapes) != self.n_blocks:
            raise ValueError("one modeled shape per block required")

    @property
    def times(self) -> list[float]:
        return [i * self.dt for i in range(self.n_timesteps)]

    @property
    def modeled_points_per_step(self) -> int:
        return sum(_points(s) for s in self.modeled_shapes)

    @property
    def modeled_block_bytes(self) -> list[int]:
        return [_points(s) * self.bytes_per_point for s in self.modeled_shapes]

    @property
    def size_on_disk(self) -> int:
        """Modeled total size of the series (paper Table 1's column)."""
        return self.modeled_points_per_step * self.bytes_per_point_total

    @property
    def bytes_per_point_total(self) -> int:
        return self.n_timesteps * self.bytes_per_point

    def block_bytes(self, block_id: int) -> int:
        return self.modeled_block_bytes[block_id]


class SyntheticDataset:
    """Callable dataset: lattices fixed per block, fields evaluated per time.

    Parameters
    ----------
    spec:
        The static description (shapes, steps, sizes).
    lattices:
        One coordinate array per block (actual resolution).
    flow:
        The analytic field supplying velocity and pressure.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        lattices: Sequence[np.ndarray],
        flow: AnalyticField,
    ):
        if len(lattices) != spec.n_blocks:
            raise ValueError(
                f"spec declares {spec.n_blocks} blocks, got {len(lattices)} lattices"
            )
        for bid, (lat, shape) in enumerate(zip(lattices, spec.actual_shapes)):
            if lat.shape[:3] != tuple(shape):
                raise ValueError(
                    f"block {bid}: lattice shape {lat.shape[:3]} != spec {shape}"
                )
        self.spec = spec
        self.lattices = [np.asarray(l, dtype=np.float64) for l in lattices]
        self.flow = flow
        self._handles_cache: list[BlockHandle] | None = None

    # ---------------------------------------------------------- building
    def build_block(self, time_index: int, block_id: int) -> StructuredBlock:
        if not 0 <= time_index < self.spec.n_timesteps:
            raise IndexError(f"time index {time_index} out of range")
        if not 0 <= block_id < self.spec.n_blocks:
            raise IndexError(f"block id {block_id} out of range")
        t = time_index * self.spec.dt
        coords = self.lattices[block_id]
        return StructuredBlock(
            coords,
            {
                "velocity": self.flow.velocity(coords, t),
                "pressure": self.flow.pressure(coords, t),
            },
            block_id=block_id,
            time_index=time_index,
        )

    def level(self, time_index: int) -> MultiBlockDataset:
        blocks = [
            self.build_block(time_index, b) for b in range(self.spec.n_blocks)
        ]
        return MultiBlockDataset(
            blocks, name=self.spec.name, time=time_index * self.spec.dt
        )

    def timeseries(self) -> TimeSeries:
        return TimeSeries(self.spec.times, self.level, name=self.spec.name)

    # ----------------------------------------------------------- handles
    def handles(self, time_index: int = 0) -> list[BlockHandle]:
        """Block handles for one time level (bounds are time-invariant)."""
        if self._handles_cache is None:
            self._handles_cache = []
            for bid, lat in enumerate(self.lattices):
                pts = lat.reshape(-1, 3)
                self._handles_cache.append(
                    BlockHandle(
                        dataset=self.spec.name,
                        block_id=bid,
                        time_index=0,
                        shape=tuple(lat.shape[:3]),
                        modeled_shape=tuple(self.spec.modeled_shapes[bid]),
                        bounds_min=tuple(pts.min(axis=0)),
                        bounds_max=tuple(pts.max(axis=0)),
                    )
                )
        if time_index == 0:
            return list(self._handles_cache)
        return [
            BlockHandle(
                dataset=h.dataset,
                block_id=h.block_id,
                time_index=time_index,
                shape=h.shape,
                modeled_shape=h.modeled_shape,
                bounds_min=h.bounds_min,
                bounds_max=h.bounds_max,
            )
            for h in self._handles_cache
        ]
