"""The Propfan dataset: counter-rotating aircraft-engine fan flow.

Paper Table 1: 50 time steps, 144 blocks, 19.5 GB on disk.  The original
DLR turbine data is proprietary; this synthetic stand-in reconstructs
the full annulus (the paper reconstructed the full turbine from a
one-twelfth slice) as 144 body-fitted annular-sector blocks — 12
azimuthal sectors x 4 axial stations x 3 radial shells — with a
counter-rotating two-stage swirl field.
"""

from __future__ import annotations

import numpy as np

from .base import DatasetSpec, SyntheticDataset, fit_modeled_shapes
from .fields import CounterRotatingFanField, annular_lattice

__all__ = ["PROPFAN_TABLE1", "propfan_block_layout", "build_propfan"]

#: Table 1 values for the Propfan dataset.
PROPFAN_TABLE1 = {
    "n_timesteps": 50,
    "n_blocks": 144,
    "size_on_disk": int(19.5 * 1024**3),
}

N_AZIMUTHAL = 12
N_AXIAL = 4
N_RADIAL = 3


def propfan_block_layout() -> list[dict]:
    """144 annular-sector sub-domains: 12 azimuthal x 4 axial x 3 radial."""
    r_edges = np.linspace(0.4, 1.0, N_RADIAL + 1)
    th_edges = np.linspace(0.0, 2.0 * np.pi, N_AZIMUTHAL + 1)
    z_edges = np.linspace(-1.0, 1.0, N_AXIAL + 1)
    layout = []
    for a in range(N_AZIMUTHAL):
        for x in range(N_AXIAL):
            for r in range(N_RADIAL):
                layout.append(
                    {
                        "r_range": (float(r_edges[r]), float(r_edges[r + 1])),
                        "theta_range": (float(th_edges[a]), float(th_edges[a + 1])),
                        "z_range": (float(z_edges[x]), float(z_edges[x + 1])),
                    }
                )
    assert len(layout) == 144
    return layout


def build_propfan(
    base_resolution: int = 5,
    n_timesteps: int | None = None,
    target_bytes: int | None = None,
) -> SyntheticDataset:
    """Construct the synthetic Propfan dataset.

    ``base_resolution`` controls the *actual* (in-memory) block size; the
    *modeled* shapes are fitted to the paper's 19.5 GB.
    """
    if base_resolution < 3:
        raise ValueError(f"base_resolution must be >= 3, got {base_resolution}")
    steps = PROPFAN_TABLE1["n_timesteps"] if n_timesteps is None else n_timesteps
    target = PROPFAN_TABLE1["size_on_disk"] if target_bytes is None else target_bytes
    layout = propfan_block_layout()

    shape = (base_resolution, base_resolution + 1, base_resolution)
    lattices = [
        annular_lattice(b["r_range"], b["theta_range"], b["z_range"], shape)
        for b in layout
    ]
    shapes = [shape] * len(layout)
    modeled = fit_modeled_shapes(shapes, target, steps)
    field = CounterRotatingFanField()
    rotation_period = 2.0 * np.pi / abs(field.omega1)
    spec = DatasetSpec(
        name="propfan",
        n_timesteps=steps,
        n_blocks=len(layout),
        dt=rotation_period / max(steps - 1, 1),
        actual_shapes=tuple(shapes),
        modeled_shapes=tuple(modeled),
    )
    return SyntheticDataset(spec, lattices, field)
