"""The Engine dataset: 4-valve combustion-engine intake flow.

Paper Table 1: 63 time steps, 23 blocks, 1.12 GB on disk.  The original
data [19] is proprietary; this synthetic stand-in reproduces the block
structure (23 heterogeneous curvilinear blocks tiling a cylinder-like
domain), the time-step count, and the modeled on-disk size, with a
swirl/tumble/intake-jet flow field.
"""

from __future__ import annotations

import numpy as np

from .base import DatasetSpec, SyntheticDataset, fit_modeled_shapes
from .fields import SwirlTumbleField, cartesian_lattice, warp_lattice

__all__ = ["ENGINE_TABLE1", "engine_block_layout", "build_engine"]

#: Table 1 values for the Engine dataset.
ENGINE_TABLE1 = {
    "n_timesteps": 63,
    "n_blocks": 23,
    "size_on_disk": int(1.12 * 1024**3),
}

GB = 1024**3


def engine_block_layout() -> list[tuple[np.ndarray, np.ndarray]]:
    """23 axis-aligned sub-domains tiling the cylinder bounding box.

    Layout: two stacked 3x3 layers (18 blocks) for the cylinder volume
    plus 5 smaller blocks for the valve/port region on top — 23 blocks
    of visibly different sizes, as in real engine meshes.
    """
    bounds = []
    xs = np.linspace(-1.0, 1.0, 4)
    ys = np.linspace(-1.0, 1.0, 4)
    zs = [0.0, 0.8, 1.6]
    for z0, z1 in zip(zs[:-1], zs[1:]):
        for i in range(3):
            for j in range(3):
                lo = np.array([xs[i], ys[j], z0])
                hi = np.array([xs[i + 1], ys[j + 1], z1])
                bounds.append((lo, hi))
    # Valve/port region: five blocks over the top of the cylinder.
    port_x = np.linspace(-1.0, 1.0, 6)
    for i in range(5):
        lo = np.array([port_x[i], -0.4, 1.6])
        hi = np.array([port_x[i + 1], 0.4, 2.1])
        bounds.append((lo, hi))
    assert len(bounds) == 23
    return bounds


def build_engine(
    base_resolution: int = 7,
    n_timesteps: int | None = None,
    target_bytes: int | None = None,
) -> SyntheticDataset:
    """Construct the synthetic Engine dataset.

    ``base_resolution`` controls the *actual* (in-memory) block size; the
    *modeled* shapes are always fitted to the paper's 1.12 GB.
    """
    if base_resolution < 3:
        raise ValueError(f"base_resolution must be >= 3, got {base_resolution}")
    steps = ENGINE_TABLE1["n_timesteps"] if n_timesteps is None else n_timesteps
    target = ENGINE_TABLE1["size_on_disk"] if target_bytes is None else target_bytes
    layout = engine_block_layout()

    lattices: list[np.ndarray] = []
    shapes: list[tuple[int, int, int]] = []
    for lo, hi in layout:
        extent = hi - lo
        # Resolution roughly proportional to physical extent per axis.
        rel = extent / extent.max()
        shape = tuple(max(3, int(round(base_resolution * r)) + 1) for r in rel)
        lat = cartesian_lattice(tuple(lo), tuple(hi), shape)  # type: ignore[arg-type]
        lat = warp_lattice(lat, amplitude=0.02, frequency=2.5)
        lattices.append(lat)
        shapes.append(shape)  # type: ignore[arg-type]

    modeled = fit_modeled_shapes(shapes, target, steps)
    spec = DatasetSpec(
        name="engine",
        n_timesteps=steps,
        n_blocks=len(layout),
        dt=SwirlTumbleField().period / max(steps - 1, 1),
        actual_shapes=tuple(shapes),
        modeled_shapes=tuple(modeled),
    )
    return SyntheticDataset(spec, lattices, SwirlTumbleField())
