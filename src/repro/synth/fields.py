"""Analytic unsteady flow fields and curvilinear grid factories.

The paper's datasets are proprietary simulation results; we substitute
analytic incompressible-like flows with the structure the test commands
probe: coherent vortices (for λ2), smooth scalar fields with closed
isosurfaces (for isosurface extraction) and swirl that advects particles
across block boundaries (for pathlines).  All fields are deterministic
functions of position and time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "AnalyticField",
    "TaylorGreenField",
    "ABCFlowField",
    "SwirlTumbleField",
    "CounterRotatingFanField",
    "cartesian_lattice",
    "warp_lattice",
    "annular_lattice",
]


class AnalyticField:
    """Interface: velocity and pressure as functions of ``(points, t)``.

    ``points`` has shape ``(..., 3)``; velocity returns ``(..., 3)`` and
    pressure ``(...)``.
    """

    def velocity(self, points: np.ndarray, t: float) -> np.ndarray:
        raise NotImplementedError

    def pressure(self, points: np.ndarray, t: float) -> np.ndarray:
        raise NotImplementedError


@dataclass(frozen=True)
class TaylorGreenField(AnalyticField):
    """Decaying Taylor-Green vortex lattice — a classic λ2 test case."""

    amplitude: float = 1.0
    wavenumber: float = np.pi
    decay: float = 0.05

    def velocity(self, points: np.ndarray, t: float) -> np.ndarray:
        p = np.asarray(points, dtype=np.float64)
        k = self.wavenumber
        a = self.amplitude * np.exp(-self.decay * t)
        x, y, z = p[..., 0], p[..., 1], p[..., 2]
        u = a * np.cos(k * x) * np.sin(k * y) * np.sin(k * z)
        v = -0.5 * a * np.sin(k * x) * np.cos(k * y) * np.sin(k * z)
        w = -0.5 * a * np.sin(k * x) * np.sin(k * y) * np.cos(k * z)
        return np.stack([u, v, w], axis=-1)

    def pressure(self, points: np.ndarray, t: float) -> np.ndarray:
        p = np.asarray(points, dtype=np.float64)
        k = self.wavenumber
        a = self.amplitude * np.exp(-self.decay * t)
        x, y, z = p[..., 0], p[..., 1], p[..., 2]
        return (
            -0.0625
            * a**2
            * (np.cos(2 * k * x) + np.cos(2 * k * y))
            * (np.cos(2 * k * z) + 2.0)
        )


@dataclass(frozen=True)
class ABCFlowField(AnalyticField):
    """Arnold-Beltrami-Childress flow: fully 3-D, strongly vortical."""

    a: float = 1.0
    b: float = np.sqrt(2.0 / 3.0)
    c: float = np.sqrt(1.0 / 3.0)
    drift: float = 0.2  # slow phase drift makes the field unsteady

    def velocity(self, points: np.ndarray, t: float) -> np.ndarray:
        p = np.asarray(points, dtype=np.float64)
        x, y, z = p[..., 0], p[..., 1], p[..., 2]
        phase = self.drift * t
        u = self.a * np.sin(z + phase) + self.c * np.cos(y + phase)
        v = self.b * np.sin(x + phase) + self.a * np.cos(z + phase)
        w = self.c * np.sin(y + phase) + self.b * np.cos(x + phase)
        return np.stack([u, v, w], axis=-1)

    def pressure(self, points: np.ndarray, t: float) -> np.ndarray:
        # Bernoulli-style surrogate: ABC flow has |u| varying in space.
        u = self.velocity(points, t)
        return -0.5 * np.sum(u * u, axis=-1)


@dataclass(frozen=True)
class SwirlTumbleField(AnalyticField):
    """Intake-stroke-like swirl/tumble flow for the Engine dataset.

    A swirling motion about the cylinder (z) axis superposed with a
    tumble vortex about the x axis and an oscillating axial intake jet —
    qualitatively the flow of a 4-valve combustion engine during intake
    (the paper's Engine dataset [19]).
    """

    swirl: float = 1.2
    tumble: float = 0.8
    jet: float = 1.5
    period: float = 2.0

    def velocity(self, points: np.ndarray, t: float) -> np.ndarray:
        p = np.asarray(points, dtype=np.float64)
        x, y, z = p[..., 0], p[..., 1], p[..., 2]
        phase = 2.0 * np.pi * t / self.period
        pulse = 0.5 * (1.0 + np.cos(phase))
        # Solid-body-like swirl about z with radial falloff.
        r2 = x * x + y * y
        sw = self.swirl * np.exp(-r2)
        u = -sw * y
        v = sw * x
        # Tumble about the x axis, its center oscillating along z.
        zc = 0.3 * np.sin(phase)
        v = v + self.tumble * (z - zc)
        w = -self.tumble * y
        # Pulsating intake jet through the "valves" near the top.
        jet = self.jet * pulse * np.exp(-4.0 * ((x - 0.4) ** 2 + y * y))
        jet = jet + self.jet * pulse * np.exp(-4.0 * ((x + 0.4) ** 2 + y * y))
        w = w - jet
        return np.stack([u, v, w], axis=-1)

    def pressure(self, points: np.ndarray, t: float) -> np.ndarray:
        u = self.velocity(points, t)
        p = np.asarray(points, dtype=np.float64)
        return -0.5 * np.sum(u * u, axis=-1) + 0.1 * p[..., 2]


@dataclass(frozen=True)
class CounterRotatingFanField(AnalyticField):
    """Two counter-rotating fan stages for the Propfan dataset.

    Swirl direction flips across the inter-stage plane ``z = z_split``;
    blade-passage wakes rotate with each stage, producing tip vortices
    whose position depends on time (the paper's Propfan dataset).
    """

    omega1: float = 2.0
    omega2: float = -1.6
    axial: float = 1.0
    z_split: float = 0.0
    n_blades: int = 6

    def _stage(self, z: np.ndarray) -> np.ndarray:
        # Smooth blend between the two stages' rotation rates.
        s = 0.5 * (1.0 + np.tanh(8.0 * (z - self.z_split)))
        return (1.0 - s) * self.omega1 + s * self.omega2

    def velocity(self, points: np.ndarray, t: float) -> np.ndarray:
        p = np.asarray(points, dtype=np.float64)
        x, y, z = p[..., 0], p[..., 1], p[..., 2]
        omega = self._stage(z)
        theta = np.arctan2(y, x)
        r = np.sqrt(x * x + y * y)
        # Blade-passage wakes: rotating azimuthal modulation.
        wake1 = 0.25 * np.cos(self.n_blades * (theta - self.omega1 * t))
        wake2 = 0.25 * np.cos(self.n_blades * (theta - self.omega2 * t))
        s = 0.5 * (1.0 + np.tanh(8.0 * (z - self.z_split)))
        wake = (1.0 - s) * wake1 + s * wake2
        u_theta = omega * r * (1.0 + wake)
        u = -u_theta * np.sin(theta)
        v = u_theta * np.cos(theta)
        w = self.axial * (1.0 + 0.3 * wake) + 0.2 * np.sin(r * np.pi)
        return np.stack([u, v, w], axis=-1)

    def pressure(self, points: np.ndarray, t: float) -> np.ndarray:
        u = self.velocity(points, t)
        return -0.5 * np.sum(u * u, axis=-1)


# ------------------------------------------------------------ lattices


def cartesian_lattice(
    bounds_min: tuple[float, float, float],
    bounds_max: tuple[float, float, float],
    shape: tuple[int, int, int],
) -> np.ndarray:
    """Regular lattice of points, shape ``(ni, nj, nk, 3)``."""
    axes = [
        np.linspace(lo, hi, n)
        for lo, hi, n in zip(bounds_min, bounds_max, shape)
    ]
    grids = np.meshgrid(*axes, indexing="ij")
    return np.stack(grids, axis=-1)


def warp_lattice(
    coords: np.ndarray, amplitude: float = 0.05, frequency: float = 2.0
) -> np.ndarray:
    """Smoothly deform a lattice to make it genuinely curvilinear.

    The warp is a bounded sinusoidal displacement; with
    ``amplitude * frequency`` small relative to the cell size the
    mapping stays bijective (no folded cells).
    """
    c = np.asarray(coords, dtype=np.float64)
    x, y, z = c[..., 0], c[..., 1], c[..., 2]
    out = c.copy()
    out[..., 0] += amplitude * np.sin(frequency * y) * np.cos(frequency * z)
    out[..., 1] += amplitude * np.sin(frequency * z) * np.cos(frequency * x)
    out[..., 2] += amplitude * np.sin(frequency * x) * np.cos(frequency * y)
    return out


def annular_lattice(
    r_range: tuple[float, float],
    theta_range: tuple[float, float],
    z_range: tuple[float, float],
    shape: tuple[int, int, int],
) -> np.ndarray:
    """Body-fitted annulus sector: lattice axes are (r, theta, z)."""
    r = np.linspace(*r_range, shape[0])
    th = np.linspace(*theta_range, shape[1])
    z = np.linspace(*z_range, shape[2])
    rr, tt, zz = np.meshgrid(r, th, z, indexing="ij")
    return np.stack([rr * np.cos(tt), rr * np.sin(tt), zz], axis=-1)
