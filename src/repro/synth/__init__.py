"""Synthetic CFD datasets standing in for the paper's proprietary data."""

from .base import BYTES_PER_POINT, DatasetSpec, SyntheticDataset, fit_modeled_shapes
from .engine import ENGINE_TABLE1, build_engine, engine_block_layout
from .fields import (
    ABCFlowField,
    AnalyticField,
    CounterRotatingFanField,
    SwirlTumbleField,
    TaylorGreenField,
    annular_lattice,
    cartesian_lattice,
    warp_lattice,
)
from .propfan import PROPFAN_TABLE1, build_propfan, propfan_block_layout

__all__ = [
    "BYTES_PER_POINT",
    "DatasetSpec",
    "SyntheticDataset",
    "fit_modeled_shapes",
    "ENGINE_TABLE1",
    "build_engine",
    "engine_block_layout",
    "ABCFlowField",
    "AnalyticField",
    "CounterRotatingFanField",
    "SwirlTumbleField",
    "TaylorGreenField",
    "annular_lattice",
    "cartesian_lattice",
    "warp_lattice",
    "PROPFAN_TABLE1",
    "build_propfan",
    "propfan_block_layout",
]
