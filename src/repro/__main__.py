"""Command-line entry point.

Usage::

    python -m repro report [fig6 fig14 ...]   # paper tables/figures
    python -m repro ablations [replacement ...]
    python -m repro figures [fig6 ...]       # paper-style bar charts
    python -m repro commands                  # list registered commands
    python -m repro taxonomy                  # Figure 1 classification
    python -m repro export <engine|propfan> <dir> [steps] [resolution]
    python -m repro info <engine|propfan|path-to-store> [time_index]
    python -m repro trace <cmd> [--out run.json] [--workers N]
                                [--dataset engine|propfan] [--timeline]
    python -m repro stats <cmd> [--workers N] [--dataset engine|propfan]
                                [--prometheus]
    python -m repro profile <cmd> [--top N] [--sort cumulative|tottime]
                                  [--workers N] [--dataset engine|propfan]
                                  [--cold]
    python -m repro extract <cmd> [--data engine|propfan|path-to-store]
                                  [--workers N] [--executor serial|process]
                                  [--precompute] [--flame FILE]
    python -m repro critical-path <cmd> [--data engine|propfan]
                                        [--workers N] [--warm] [--path]
    python -m repro slo [--data engine|propfan] [--workers N] [--repeats N]
                        [--check] [--wall] [--json] [--baseline FILE]
                        [--update-baseline]
    python -m repro loadtest [--tenants N] [--seed N] [--requests N]
                             [--rate HZ] [--arrival poisson|bursty]
                             [--slots N] [--replay] [--json] [--out FILE]
    python -m repro serve [--host HOST] [--port N] [--data engine|propfan]
                          [--workers N] [--slots N]

``trace`` runs one command on a small simulated cluster and exports a
Chrome ``trace_event`` JSON (open in Perfetto / about:tracing) plus an
ASCII timeline; ``stats`` prints the unified metrics table (cache hit
rate, prefetch accuracy, latency histograms); ``profile`` replays a
command under ``cProfile`` and prints the top hotspots so perf work
starts from evidence.  ``critical-path`` attributes one command's wall
clock to phases (queue/load/compute/merge/stream/recovery) along the
span DAG's critical path; ``slo`` evaluates the paper's 100 ms
interaction criterion as declarative SLOs over the sentry workload and,
with ``--check``, gates against the committed baseline
(``BENCH_PR6.json``) — the CI regression sentry.  ``loadtest`` soaks the
multi-tenant serving layer with thousands of simulated tenants in pure
simulated time (``--replay`` gates on byte-identical fingerprints);
``serve`` boots the HTTP/REST facade over a real session.  ``<cmd>`` is
a registered command name or one of the aliases iso, vortex, pathlines,
cutplane.
"""

from __future__ import annotations

import sys

#: one-line usage per verb, shown for ``<verb> --help``.
USAGE = {
    "report": "python -m repro report [fig6 fig14 ...] [--json FILE]",
    "figures": "python -m repro figures [fig6 ...]",
    "ablations": "python -m repro ablations [replacement ...]",
    "commands": "python -m repro commands",
    "taxonomy": "python -m repro taxonomy",
    "export": "python -m repro export <engine|propfan> <dir> [steps] [resolution]",
    "info": "python -m repro info <engine|propfan|path-to-store> [time_index]",
    "trace": (
        "python -m repro trace <cmd> [--out run.json] [--workers N] "
        "[--dataset engine|propfan] [--timeline]"
    ),
    "stats": (
        "python -m repro stats <cmd> [--workers N] "
        "[--dataset engine|propfan] [--prometheus]"
    ),
    "profile": (
        "python -m repro profile <cmd> [--top N] [--sort cumulative|tottime] "
        "[--workers N] [--dataset engine|propfan] [--cold]"
    ),
    "extract": (
        "python -m repro extract <cmd> [--data engine|propfan|path-to-store] "
        "[--workers N] [--executor serial|process] "
        "[--schedule static|dynamic|dynamic+pipeline] [--precompute] "
        "[--flame FILE]"
    ),
    "critical-path": (
        "python -m repro critical-path <cmd> [--data engine|propfan] "
        "[--workers N] [--warm] [--path]"
    ),
    "slo": (
        "python -m repro slo [--data engine|propfan] [--workers N] "
        "[--repeats N] [--check] [--wall] [--json] [--baseline FILE] "
        "[--update-baseline]"
    ),
    "loadtest": (
        "python -m repro loadtest [--tenants N] [--seed N] [--requests N] "
        "[--rate HZ] [--arrival poisson|bursty] [--slots N] "
        "[--cancel-frac F] [--replay] [--json] [--out FILE]"
    ),
    "serve": (
        "python -m repro serve [--host HOST] [--port N] "
        "[--data engine|propfan] [--workers N] [--slots N]"
    ),
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in {"-h", "--help"}:
        print(__doc__)
        return 0
    mode, args = argv[0], argv[1:]
    if mode in USAGE and any(a in {"-h", "--help"} for a in args):
        print(f"usage: {USAGE[mode]}")
        return 0
    if mode == "report":
        from .bench.report import main as report_main

        return report_main(args)
    if mode == "figures":
        from .bench.figures import main as figures_main

        return figures_main(args)
    if mode == "ablations":
        from .bench.ablations import ALL_ABLATIONS
        from .bench.report import format_result

        names = args or list(ALL_ABLATIONS)
        unknown = [n for n in names if n not in ALL_ABLATIONS]
        if unknown:
            print(f"unknown ablations {unknown}; known: {sorted(ALL_ABLATIONS)}")
            return 2
        for name in names:
            print(format_result(ALL_ABLATIONS[name]()))
            print()
        return 0
    if mode == "commands":
        from .commands import default_registry

        for name in default_registry().names():
            print(name)
        return 0
    if mode == "taxonomy":
        from .core.classification import all_assessments, format_taxonomy

        print(format_taxonomy())
        print()
        for a in all_assessments():
            tags = []
            if a.reduces_total_runtime:
                tags.append("runtime")
            if a.reduces_latency:
                tags.append("latency")
            print(f"{a.command:20s} [{', '.join(tags) or 'baseline'}] {a.notes}")
        return 0
    if mode == "export":
        if len(args) < 2:
            print(
                "usage: python -m repro export <engine|propfan> <dir> "
                "[steps] [resolution]"
            )
            return 2
        name, target = args[0], args[1]
        steps = int(args[2]) if len(args) > 2 else 4
        resolution = int(args[3]) if len(args) > 3 else 5
        from .io import write_dataset
        from .synth import build_engine, build_propfan

        builders = {"engine": build_engine, "propfan": build_propfan}
        if name not in builders:
            print(f"unknown dataset {name!r}; choose engine or propfan")
            return 2
        dataset = builders[name](base_resolution=resolution, n_timesteps=steps)
        levels = [dataset.level(t) for t in range(steps)]
        store = write_dataset(
            target,
            levels,
            modeled_shapes=list(dataset.spec.modeled_shapes),
            times=dataset.spec.times[:steps],
        )
        print(f"wrote {store.n_timesteps} x {store.n_blocks} blocks to {store.root}")
        return 0
    if mode == "info":
        if not args:
            print("usage: python -m repro info <engine|propfan|path> [time_index]")
            return 2
        name = args[0]
        time_index = int(args[1]) if len(args) > 1 else 0
        from .grids.summary import summarize_dataset

        if name in {"engine", "propfan"}:
            from .synth import build_engine, build_propfan

            dataset = {"engine": build_engine, "propfan": build_propfan}[name](
                base_resolution=5, n_timesteps=max(time_index + 1, 1)
            )
            level = dataset.level(time_index)
        else:
            from .io import DatasetStore

            level = DatasetStore(name).read_level(time_index)
        print(summarize_dataset(level).format())
        return 0
    if mode == "extract":
        return _extract_main(args)
    if mode == "trace":
        return _trace_main(args)
    if mode == "stats":
        return _stats_main(args)
    if mode == "profile":
        return _profile_main(args)
    if mode == "critical-path":
        return _critical_path_main(args)
    if mode == "slo":
        return _slo_main(args)
    if mode == "loadtest":
        from .serve.cli import loadtest_main

        return loadtest_main(args)
    if mode == "serve":
        from .serve.cli import serve_main

        return serve_main(args)
    print(f"unknown mode {mode!r}; try --help")
    return 2


# -------------------------------------------------------- observability
#: friendly aliases -> (registry name, default params) on the small
#: Engine testbed used by the trace/stats verbs.
def _obs_command_spec(name: str) -> tuple[str, dict]:
    iso = {"isovalue": -0.3, "scalar": "pressure", "time_range": (0, 1)}
    vortex = {"threshold": -0.5, "time_range": (0, 1)}
    pathlines = {
        "seeds": [[-0.3, -0.2, 0.6], [0.2, 0.3, 0.9], [0.0, -0.4, 1.1]],
        "time_range": (0, 2),
        "max_steps": 60,
    }
    cutplane = {"normal": (0.0, 0.0, 1.0), "offset": 0.8, "time_range": (0, 1)}
    aliases = {
        "iso": ("iso-dataman", iso),
        "vortex": ("vortex-dataman", vortex),
        "pathlines": ("pathlines-dataman", pathlines),
        "cutplane": ("cutplane", cutplane),
    }
    if name in aliases:
        return aliases[name]
    defaults = {
        "iso-dataman": iso, "iso-simple": iso, "iso-progressive": iso,
        "iso-viewer": {**iso, "viewpoint": (0.0, 0.0, -5.0), "max_triangles": 2000},
        "vortex-dataman": vortex, "vortex-simple": vortex,
        "vortex-streamed": {**vortex, "batch_cells": 16},
        "pathlines-dataman": pathlines, "pathlines-simple": pathlines,
        "cutplane": cutplane, "cutplane-streamed": cutplane,
        "streaklines": pathlines,
    }
    if name in defaults:
        return name, defaults[name]
    raise KeyError(name)


def _obs_flags(args: list[str]) -> tuple[list[str], dict]:
    """Split positional args from the --flag[=value] options we accept."""
    positional: list[str] = []
    flags: dict[str, str | bool] = {}
    i = 0
    while i < len(args):
        arg = args[i]
        if arg.startswith("--"):
            key = arg[2:]
            if "=" in key:
                key, value = key.split("=", 1)
                flags[key] = value
            elif key in {
                "timeline", "prometheus", "cold", "precompute", "warm",
                "path", "check", "wall", "json", "update-baseline",
            }:
                flags[key] = True
            else:
                if i + 1 >= len(args):
                    print(f"option --{key} needs a value")
                    return [], {"error": True}
                flags[key] = args[i + 1]
                i += 1
        else:
            positional.append(arg)
        i += 1
    return positional, flags


def _obs_session(dataset_name: str, n_workers: int):
    from .bench.calibration import paper_cluster, paper_costs
    from .core.session import ViracochaSession
    from .synth import build_engine, build_propfan

    builders = {"engine": build_engine, "propfan": build_propfan}
    if dataset_name not in builders:
        raise KeyError(dataset_name)
    dataset = builders[dataset_name](base_resolution=4, n_timesteps=2)
    return ViracochaSession(
        dataset,
        cluster_config=paper_cluster(n_workers),
        costs=paper_costs(),
        trace=True,
    )


def _parse_workers(flags: dict) -> int | None:
    raw = flags.get("workers", 2)
    try:
        n = int(raw)
    except ValueError:
        n = 0
    if n < 1:
        print(f"--workers must be a positive integer, got {raw!r}")
        return None
    return n


def _extract_main(args: list[str]) -> int:
    """Run one command for real on local cores (repro.parallel)."""
    positional, flags = _obs_flags(args)
    if flags.get("error") or not positional:
        print(f"usage: {USAGE['extract']}")
        return 2
    try:
        command, params = _obs_command_spec(positional[0])
    except KeyError:
        print(f"unknown command {positional[0]!r}; try `python -m repro commands`")
        return 2
    n_workers = _parse_workers(flags)
    if n_workers is None:
        return 2
    executor = str(flags.get("executor", "process"))
    from .parallel import EXECUTORS, SCHEDULES, ParallelExtractor

    if executor not in EXECUTORS:
        print(f"--executor must be one of {'|'.join(EXECUTORS)}, got {executor!r}")
        return 2
    schedule = str(flags.get("schedule", "static"))
    if schedule not in SCHEDULES:
        print(f"--schedule must be one of {'|'.join(SCHEDULES)}, got {schedule!r}")
        return 2
    data_name = str(flags.get("data", "engine"))
    if data_name in {"engine", "propfan"}:
        from .synth import build_engine, build_propfan

        data = {"engine": build_engine, "propfan": build_propfan}[data_name](
            base_resolution=4, n_timesteps=2
        )
    else:
        from .io import DatasetStore

        try:
            data = DatasetStore(data_name)
        except FileNotFoundError as exc:
            print(exc)
            return 2
    flame = flags.get("flame")
    profile_interval = None
    if flame:
        from .obs.profiling import DEFAULT_INTERVAL

        profile_interval = DEFAULT_INTERVAL
    with ParallelExtractor(
        data, workers=n_workers, executor=executor,
        profile_interval=profile_interval,
    ) as ext:
        if flags.get("precompute"):
            n = ext.precompute("lambda2")
            print(f"precomputed lambda2 for {n} blocks "
                  f"({ext.store.nbytes} shared bytes)")
        res = ext.run(
            command,
            params=params,
            schedule=schedule if schedule != "static" else None,
        )
        print(f"== {command} on {data_name} "
              f"({executor} executor, {res.group_size} workers, "
              f"{res.schedule} schedule) ==")
        print(f"wall time:   {res.wall_seconds * 1e3:.1f} ms "
              f"(shares: "
              + ", ".join(f"{s * 1e3:.1f}" for s in res.share_seconds)
              + " ms)")
        print(f"shares:      {len(res.shares)}  payloads: {res.n_payloads}  "
              f"block loads: {res.n_loads}")
        if res.schedule != "static":
            print(f"stealing:    {res.steals} steals, "
                  f"{res.idle_seconds * 1e3:.1f} ms worker idle")
        merged = res.result
        if hasattr(merged, "n_triangles"):
            print(f"result:      mesh with {merged.n_triangles} triangles, "
                  f"{merged.n_vertices} vertices")
        elif isinstance(merged, list):
            print(f"result:      {len(merged)} payloads")
        else:
            print(f"result:      {merged!r}")
        print(f"shared mem:  {ext.store.n_segments} segments, "
              f"{ext.store.nbytes} bytes")
        if flame:
            from .obs.profiling import top_functions

            n_stacks = ext.write_flamegraph(str(flame))
            samples = sum(ext.folded.values())
            print(f"profile:     {samples} samples, {n_stacks} unique stacks "
                  f"-> {flame} (collapsed-stack / flamegraph.pl format)")
            for func, count in top_functions(ext.folded, limit=5):
                print(f"  {count:6d}  {func}")
    return 0


def _trace_main(args: list[str]) -> int:
    positional, flags = _obs_flags(args)
    if flags.get("error") or not positional:
        print(f"usage: {USAGE['trace']}")
        return 2
    try:
        command, params = _obs_command_spec(positional[0])
    except KeyError:
        print(f"unknown command {positional[0]!r}; try `python -m repro commands`")
        return 2
    n_workers = _parse_workers(flags)
    if n_workers is None:
        return 2
    try:
        session = _obs_session(str(flags.get("dataset", "engine")), n_workers)
    except KeyError:
        print("dataset must be engine or propfan")
        return 2
    result = session.run(command, params=params)
    from .obs import write_chrome_trace
    from .viz.ascii import render_timeline

    out = str(flags.get("out", "run.json"))
    doc = write_chrome_trace(out, session.tracer, session.trace)
    kinds = sorted({s.kind for s in result.spans})
    print(
        f"{command}: {len(result.spans)} spans ({', '.join(kinds)}) "
        f"across nodes {sorted({s.node for s in result.spans})}"
    )
    print(f"wrote {len(doc['traceEvents'])} trace events to {out}")
    if flags.get("timeline"):
        print()
        print(render_timeline(result.spans))
    return 0


def _stats_main(args: list[str]) -> int:
    positional, flags = _obs_flags(args)
    if flags.get("error") or not positional:
        print(f"usage: {USAGE['stats']}")
        return 2
    try:
        command, params = _obs_command_spec(positional[0])
    except KeyError:
        print(f"unknown command {positional[0]!r}; try `python -m repro commands`")
        return 2
    n_workers = _parse_workers(flags)
    if n_workers is None:
        return 2
    try:
        session = _obs_session(str(flags.get("dataset", "engine")), n_workers)
    except KeyError:
        print("dataset must be engine or propfan")
        return 2
    # Cold pass then warm pass, so cache-hit and prefetch metrics show
    # the DMS actually doing something (the paper's §7 methodology).
    session.run(command, params=params)
    result = session.run(command, params=params)
    if flags.get("prometheus"):
        print(session.metrics.render_prometheus(), end="")
        return 0
    agg = session.scheduler.aggregate_dms_stats()
    print(f"== {command} on {flags.get('dataset', 'engine')} "
          f"({n_workers} workers, cold + warm pass) ==")
    print(f"cache hit rate:    {agg.hit_rate:.1%} "
          f"(l1 {agg.hits_l1}, l2 {agg.hits_l2}, miss {agg.misses})")
    print(f"prefetch accuracy: {agg.prefetch_accuracy:.1%} "
          f"({agg.prefetches_useful}/{agg.prefetches_issued} useful, "
          f"{agg.prefetches_dropped} dropped)")
    print(f"bytes loaded:      {agg.bytes_loaded}")
    tracer = session.tracer
    print(f"spans:             {len(tracer)} retained, {tracer.dropped} dropped, "
          f"ring high-water {tracer.high_water}")
    for worker in session.scheduler.workers:
        desc = worker.proxy.prefetcher.describe()
        extra = ", ".join(f"{k}={v}" for k, v in desc.items() if k != "name")
        print(f"  worker {worker.worker_id} prefetcher: {desc['name']}"
              + (f" ({extra})" if extra else ""))
    selector = session.scheduler.server.selector
    decisions = ", ".join(
        f"{name}={count}" for name, count in sorted(selector.decisions.items())
    )
    print(f"strategy decisions: {decisions}")
    if selector.last_fitness:
        scores = ", ".join(
            f"{name}={score:.3e}"
            for name, score in sorted(selector.last_fitness.items())
        )
        print(f"last fitness:      {scores}")
    server = session.scheduler.server
    if server.dedup_followers:
        print(f"cluster dedup:     {server.dedup_followers} follower(s) on "
              f"{server.dedup_flights} flight(s), "
              f"{server.dedup_bytes_saved} bytes saved")
    if agg.compression_decisions:
        calls = ", ".join(
            f"{decision}={count}"
            for decision, count in sorted(agg.compression_decisions.items())
        )
        print(f"wire compression:  {calls}; "
              f"{agg.compression_bytes_saved} wire bytes saved, "
              f"{agg.compression_seconds:.3f}s codec time")
    print()
    print(session.metrics.format_table())
    return 0


def _profile_main(args: list[str]) -> int:
    positional, flags = _obs_flags(args)
    if flags.get("error") or not positional:
        print(f"usage: {USAGE['profile']}")
        return 2
    try:
        command, params = _obs_command_spec(positional[0])
    except KeyError:
        print(f"unknown command {positional[0]!r}; try `python -m repro commands`")
        return 2
    n_workers = _parse_workers(flags)
    if n_workers is None:
        return 2
    sort = str(flags.get("sort", "cumulative"))
    if sort not in {"cumulative", "tottime"}:
        print(f"--sort must be cumulative or tottime, got {sort!r}")
        return 2
    try:
        top = int(flags.get("top", 20))
    except ValueError:
        top = 0
    if top < 1:
        print(f"--top must be a positive integer, got {flags.get('top')!r}")
        return 2
    try:
        session = _obs_session(str(flags.get("dataset", "engine")), n_workers)
    except KeyError:
        print("dataset must be engine or propfan")
        return 2
    import cProfile
    import pstats

    if not flags.get("cold"):
        # Warm pass first: session construction, first-touch numpy and
        # cold caches otherwise swamp the steady-state costs perf PRs
        # actually target (the interactive replay loop).
        session.run(command, params=dict(params))
    profiler = cProfile.Profile()
    profiler.enable()
    session.run(command, params=dict(params))
    profiler.disable()
    pass_kind = "cold" if flags.get("cold") else "warm"
    print(
        f"== {command} on {flags.get('dataset', 'engine')} "
        f"({n_workers} workers, {pass_kind} pass, top {top} by {sort}) =="
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    return 0


def _critical_path_main(args: list[str]) -> int:
    """Where did the wall clock go?  Phase attribution for one command."""
    positional, flags = _obs_flags(args)
    if flags.get("error") or not positional:
        print(f"usage: {USAGE['critical-path']}")
        return 2
    try:
        command, params = _obs_command_spec(positional[0])
    except KeyError:
        print(f"unknown command {positional[0]!r}; try `python -m repro commands`")
        return 2
    n_workers = _parse_workers(flags)
    if n_workers is None:
        return 2
    try:
        session = _obs_session(str(flags.get("data", "engine")), n_workers)
    except KeyError:
        print("--data must be engine or propfan")
        return 2
    from .obs.critical_path import analyze_result

    if flags.get("warm"):
        # Warm the DMS caches first so the report shows the steady
        # state; default is the cold pass, where load phases are live.
        session.run(command, params=dict(params))
    result = session.run(command, params=dict(params))
    report = analyze_result(result)
    print(report.format())
    if flags.get("path"):
        print()
        print(report.format_path())
    return 0


def _slo_main(args: list[str]) -> int:
    """Evaluate SLOs over the sentry workload; gate with ``--check``."""
    positional, flags = _obs_flags(args)
    if flags.get("error") or positional:
        print(f"usage: {USAGE['slo']}")
        return 2
    from .obs import sentry

    baseline_path = str(flags.get("baseline", "BENCH_PR6.json"))
    baseline = None
    if flags.get("check"):
        try:
            baseline = sentry.load_baseline(baseline_path)
        except FileNotFoundError:
            print(f"baseline {baseline_path} not found; "
                  "run with --update-baseline first")
            return 2
    # A --check run must replay the baseline's exact workload shape;
    # otherwise fall back to flags/defaults.
    data = str(flags.get("data") or (baseline or {}).get("dataset", "engine"))
    if data not in {"engine", "propfan"}:
        print("--data must be engine or propfan")
        return 2
    try:
        workers = int(flags.get("workers") or (baseline or {}).get("workers", 4))
        repeats = int(flags.get("repeats") or (baseline or {}).get("repeats", 2))
    except ValueError:
        print("--workers and --repeats must be integers")
        return 2
    if workers < 1 or repeats < 1:
        print("--workers and --repeats must be positive")
        return 2
    current = sentry.measure(data, workers=workers, repeats=repeats)
    tracker = current["_tracker"]
    if flags.get("json"):
        import json as _json

        print(_json.dumps(sentry.strip_runtime(current), indent=2, sort_keys=True))
        return 0
    print(f"== SLO sentry: {data}, {workers} workers, "
          f"{repeats} repeats per command ==")
    print()
    print(tracker.format_report("command"))
    print()
    print("critical-path phase attribution (summed over repeats):")
    for name, entry in current["commands"].items():
        if "phase_seconds" not in entry:
            # Scheduling-comparison cells carry their own keys, not a
            # phase breakdown; unknown future cells print a key count
            # instead of crashing the report.
            if "ttfa_level_major_s" in entry:
                print(
                    f"  {name:20s} warm TTFA level-major "
                    f"{entry['ttfa_level_major_s']:.2f}s vs depth-first "
                    f"{entry['ttfa_depth_first_s']:.2f}s "
                    f"({entry['ttfa_speedup']:.1f}x)"
                )
            elif "dynamic_speedup" in entry:
                print(
                    f"  {name:20s} warm static "
                    f"{entry['warm_static_s']:.2f}s vs dynamic "
                    f"{entry['warm_dynamic_s']:.2f}s "
                    f"({entry['dynamic_speedup']:.2f}x, "
                    f"{entry['steals_dynamic']} steals, idle "
                    f"{entry['idle_static_s']:.1f}s -> "
                    f"{entry['idle_dynamic_s']:.1f}s)"
                )
            else:
                print(f"  {name:20s} ({len(entry)} gated keys)")
            continue
        total = sum(entry["phase_seconds"].values())
        shares = ", ".join(
            f"{phase} {seconds / total:.0%}"
            for phase, seconds in sorted(
                entry["phase_seconds"].items(), key=lambda kv: -kv[1]
            )
            if seconds > 0.0
        )
        print(f"  {name:20s} coverage {entry['coverage']:.1%}  ({shares})")
    if flags.get("update-baseline"):
        sentry.write_baseline(baseline_path, current)
        print(f"\nwrote baseline to {baseline_path}")
        return 0
    if baseline is None:
        return 0
    report = sentry.SentryReport(current=sentry.strip_runtime(current))
    report.regressions.extend(sentry.compare(baseline, current))
    if flags.get("wall"):
        problems, notes = sentry.check_wall_floors(".")
        report.regressions.extend(problems)
        report.notes.extend(notes)
    print()
    print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

