"""Command-line entry point.

Usage::

    python -m repro report [fig6 fig14 ...]   # paper tables/figures
    python -m repro ablations [replacement ...]
    python -m repro figures [fig6 ...]       # paper-style bar charts
    python -m repro commands                  # list registered commands
    python -m repro taxonomy                  # Figure 1 classification
    python -m repro export <engine|propfan> <dir> [steps] [resolution]
    python -m repro info <engine|propfan|path-to-store> [time_index]
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in {"-h", "--help"}:
        print(__doc__)
        return 0
    mode, args = argv[0], argv[1:]
    if mode == "report":
        from .bench.report import main as report_main

        return report_main(args)
    if mode == "figures":
        from .bench.figures import main as figures_main

        return figures_main(args)
    if mode == "ablations":
        from .bench.ablations import ALL_ABLATIONS
        from .bench.report import format_result

        names = args or list(ALL_ABLATIONS)
        unknown = [n for n in names if n not in ALL_ABLATIONS]
        if unknown:
            print(f"unknown ablations {unknown}; known: {sorted(ALL_ABLATIONS)}")
            return 2
        for name in names:
            print(format_result(ALL_ABLATIONS[name]()))
            print()
        return 0
    if mode == "commands":
        from .commands import default_registry

        for name in default_registry().names():
            print(name)
        return 0
    if mode == "taxonomy":
        from .core.classification import all_assessments, format_taxonomy

        print(format_taxonomy())
        print()
        for a in all_assessments():
            tags = []
            if a.reduces_total_runtime:
                tags.append("runtime")
            if a.reduces_latency:
                tags.append("latency")
            print(f"{a.command:20s} [{', '.join(tags) or 'baseline'}] {a.notes}")
        return 0
    if mode == "export":
        if len(args) < 2:
            print(
                "usage: python -m repro export <engine|propfan> <dir> "
                "[steps] [resolution]"
            )
            return 2
        name, target = args[0], args[1]
        steps = int(args[2]) if len(args) > 2 else 4
        resolution = int(args[3]) if len(args) > 3 else 5
        from .io import write_dataset
        from .synth import build_engine, build_propfan

        builders = {"engine": build_engine, "propfan": build_propfan}
        if name not in builders:
            print(f"unknown dataset {name!r}; choose engine or propfan")
            return 2
        dataset = builders[name](base_resolution=resolution, n_timesteps=steps)
        levels = [dataset.level(t) for t in range(steps)]
        store = write_dataset(
            target,
            levels,
            modeled_shapes=list(dataset.spec.modeled_shapes),
            times=dataset.spec.times[:steps],
        )
        print(f"wrote {store.n_timesteps} x {store.n_blocks} blocks to {store.root}")
        return 0
    if mode == "info":
        if not args:
            print("usage: python -m repro info <engine|propfan|path> [time_index]")
            return 2
        name = args[0]
        time_index = int(args[1]) if len(args) > 1 else 0
        from .grids.summary import summarize_dataset

        if name in {"engine", "propfan"}:
            from .synth import build_engine, build_propfan

            dataset = {"engine": build_engine, "propfan": build_propfan}[name](
                base_resolution=5, n_timesteps=max(time_index + 1, 1)
            )
            level = dataset.level(time_index)
        else:
            from .io import DatasetStore

            level = DatasetStore(name).read_level(time_index)
        print(summarize_dataset(level).format())
        return 0
    print(f"unknown mode {mode!r}; try --help")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
