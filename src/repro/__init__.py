"""repro — a reproduction of VIRACOCHA (SC 2004).

A parallelization framework for large-scale CFD post-processing in
virtual environments: a data management system (two-tier caching,
prefetching, adaptive loading strategies) and streaming of partial
results, evaluated on multi-block curvilinear CFD datasets.

Quick start::

    from repro import ViracochaSession, build_engine

    session = ViracochaSession(build_engine(base_resolution=5), n_workers=4)
    result = session.run(
        "iso-viewer",
        params={"isovalue": -0.3, "scalar": "pressure",
                "time_range": (0, 2), "viewpoint": (0, 0, -5)},
    )
    print(result.latency, result.total_runtime, result.geometry)

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from .core.session import CommandResult, ViracochaSession
from .parallel import ParallelExtractor
from .synth.engine import build_engine
from .synth.propfan import build_propfan

__version__ = "1.0.0"

__all__ = [
    "CommandResult",
    "ParallelExtractor",
    "ViracochaSession",
    "build_engine",
    "build_propfan",
    "__version__",
]
