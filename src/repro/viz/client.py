"""The visualization-client model (the ViSTA FlowLib stand-in).

The client receives (partial) result packets from the cluster, merges
arriving geometry just in time for the next rendering loop, and tracks
the two VR interaction criteria from §1.1:

1. minimum frame rate (Bryson: 10 Hz; Kreylos: 30 Hz), and
2. maximum system response time (100 ms).

Rendering itself is modeled as a frame loop whose per-frame cost grows
with the triangle count — enough to ask "would this geometry still
render at 10/30 Hz?", which is the question the paper's decoupling
answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..des.kernel import Environment
from ..core.channels import Mailbox
from ..core.messages import ProgressUpdate, ResultPacket
from .mesh import TriangleMesh

__all__ = [
    "InteractionCriteria",
    "FrameRateModel",
    "PacketRecord",
    "VisualizationClient",
]


@dataclass(frozen=True)
class InteractionCriteria:
    """The two hard real-time interaction requirements (§1.1)."""

    min_frame_rate_hz: float = 10.0  #: Bryson's threshold; Kreylos: 30.0
    max_response_time_s: float = 0.1

    def frame_rate_ok(self, achieved_hz: float) -> bool:
        return achieved_hz >= self.min_frame_rate_hz

    def response_time_ok(self, response_s: float) -> bool:
        return response_s <= self.max_response_time_s

    def slos(self) -> list:
        """These criteria as declarative SLOs (see :mod:`repro.obs.slo`).

        The response-time bound becomes the ``interactive-response``
        latency objective, so tightening the criterion here tightens
        what ``python -m repro slo`` gates on.
        """
        from ..obs.slo import default_slos

        return default_slos(self)


@dataclass(frozen=True)
class FrameRateModel:
    """Crude renderer model: triangles/second the GPU sustains.

    An NVIDIA GeForce FX 5950 Ultra (the paper's board) pushed on the
    order of tens of millions of triangles per second.
    """

    triangles_per_second: float = 30e6
    fixed_frame_cost_s: float = 1e-3

    def frame_rate(self, n_triangles: int) -> float:
        frame_time = self.fixed_frame_cost_s + n_triangles / self.triangles_per_second
        return 1.0 / frame_time

    def triangle_budget(self, target_hz: float) -> int:
        """Triangles renderable per frame while holding ``target_hz``.

        This is the frame budget a client publishes to the progressive
        command (``params["frame_budget"]``): refinement packets are
        paced so one frame's worth of new triangles never exceeds it.
        """
        if target_hz <= 0:
            raise ValueError(f"target_hz must be > 0, got {target_hz}")
        spare = 1.0 / target_hz - self.fixed_frame_cost_s
        return max(0, int(spare * self.triangles_per_second))


@dataclass
class PacketRecord:
    time: float
    nbytes: int
    worker_index: int
    sequence: int
    final: bool
    n_triangles: int = 0
    kind: str = "geometry"


class VisualizationClient:
    """Receives result packets and accumulates geometry + statistics."""

    def __init__(self, env: Environment, criteria: InteractionCriteria | None = None,
                 renderer: FrameRateModel | None = None):
        self.env = env
        self.mailbox = Mailbox(env, name="viz-client")
        self.criteria = criteria or InteractionCriteria()
        self.renderer = renderer or FrameRateModel()
        self.packets: list[PacketRecord] = []
        self.payloads: list[Any] = []
        self.packets_by_request: dict[int, list[PacketRecord]] = {}
        self.payloads_by_request: dict[int, list[Any]] = {}
        #: latest progress fraction per (request_id, worker_index) and
        #: the times updates arrived — feeds the §9 "progress bar".
        self.progress: dict[int, dict[int, float]] = {}
        self.progress_times: dict[int, list[float]] = {}
        self._request_done: dict[int, Any] = {}
        self._done_event = None
        self._consumer = None
        #: packets already merged, keyed (request, worker, sequence) —
        #: a retried streaming share re-sends packets its first attempt
        #: already delivered; duplicates must not double the geometry.
        self._seen: set[tuple[int, int, int]] = set()
        self.duplicates = 0

    # ----------------------------------------------------------- running
    def start_listening(self):
        """Spawn the consume loop; returns the event that fires on final.

        Any consumer left over from a previous (possibly failed) run is
        interrupted, and a fresh mailbox isolates this run from stale
        in-flight packets.
        """
        if self._consumer is not None and self._consumer.is_alive:
            self._consumer.interrupt("new run")
            self.mailbox = Mailbox(self.env, name="viz-client")
        self._done_event = self.env.event()
        self._consumer = self.env.process(self._consume(), name="viz-client")
        self._consumer_stops_on_final = True
        return self._done_event

    def expect(self, request_id: int):
        """Register interest in a command's packets; returns its done event.

        Unlike :meth:`start_listening`, the consume loop keeps running
        so several concurrent commands can interleave their packets.
        """
        if self._consumer is not None and self._consumer.is_alive and getattr(
            self, "_consumer_stops_on_final", False
        ):
            # A stale single-shot consumer (e.g. from a failed run) would
            # stop at the first final packet and starve other requests.
            self._consumer.interrupt("switch to multi-request mode")
            self.mailbox = Mailbox(self.env, name="viz-client")
            self._consumer = None
        if self._consumer is None or not self._consumer.is_alive:
            self._consumer = self.env.process(
                self._consume(stop_on_final=False), name="viz-client"
            )
            self._consumer_stops_on_final = False
        done = self.env.event()
        self._request_done[request_id] = done
        self.packets_by_request.setdefault(request_id, [])
        self.payloads_by_request.setdefault(request_id, [])
        return done

    def _consume(self, stop_on_final: bool = True):
        from ..des.kernel import Interrupt

        while True:
            try:
                message = yield self.mailbox.get()
            except Interrupt:
                return
            if isinstance(message, ProgressUpdate):
                per_worker = self.progress.setdefault(message.request_id, {})
                per_worker[message.worker_index] = message.fraction
                self.progress_times.setdefault(message.request_id, []).append(
                    self.env.now
                )
                continue
            if not isinstance(message, ResultPacket):
                continue
            if not message.final:
                key = (message.request_id, message.worker_index, message.sequence)
                if key in self._seen:
                    self.duplicates += 1
                    continue
                self._seen.add(key)
            n_tri = 0
            if isinstance(message.payload, TriangleMesh):
                n_tri = message.payload.n_triangles
            record = PacketRecord(
                time=self.env.now,
                nbytes=message.nbytes,
                worker_index=message.worker_index,
                sequence=message.sequence,
                final=message.final,
                n_triangles=n_tri,
                kind=getattr(message, "kind", "geometry"),
            )
            self.packets.append(record)
            self.packets_by_request.setdefault(message.request_id, []).append(record)
            if message.payload is not None:
                self.payloads.append(message.payload)
                self.payloads_by_request.setdefault(message.request_id, []).append(
                    message.payload
                )
            if message.final:
                done = self._request_done.pop(message.request_id, None)
                if done is not None and not done.triggered:
                    done.succeed()
                if stop_on_final:
                    if self._done_event is not None and not self._done_event.triggered:
                        self._done_event.succeed()
                    return

    # --------------------------------------------------------- analysis
    def reset(self) -> None:
        self.packets.clear()
        self.payloads.clear()
        self.packets_by_request.clear()
        self.payloads_by_request.clear()
        self.progress.clear()
        self.progress_times.clear()
        self._seen.clear()
        self.duplicates = 0

    @property
    def first_data_time(self) -> float | None:
        """Arrival of the first packet that carried actual data."""
        for p in self.packets:
            if p.nbytes > 0 or p.n_triangles > 0:
                return p.time
        return None

    def first_data_time_of(self, request_id: int) -> float | None:
        """Per-request first-data arrival.

        The global :attr:`first_data_time` spans every interleaved
        request, so concurrent tenants would report each other's
        latency; this looks only at ``request_id``'s packets.
        """
        for p in self.packets_by_request.get(request_id, ()):
            if p.nbytes > 0 or p.n_triangles > 0:
                return p.time
        return None

    def first_approximation_time(
        self, n_workers: int, request_id: int | None = None
    ) -> float | None:
        """When the first *complete* approximation was on screen (TTFA).

        A progressive worker streams a zero-byte ``"approximation"``
        marker once the coarsest level of all its blocks is out; the
        first complete approximation exists when every one of the
        command's ``n_workers`` workers has done so.  Returns the
        arrival time of the last such marker, or ``None`` when the
        command is not progressive (no markers at all).
        """
        packets = (
            self.packets
            if request_id is None
            else self.packets_by_request.get(request_id, ())
        )
        seen: set[int] = set()
        for p in packets:
            if p.kind != "approximation":
                continue
            seen.add(p.worker_index)
            if len(seen) >= n_workers:
                return p.time
        return None

    @property
    def final_time(self) -> float | None:
        for p in self.packets:
            if p.final:
                return p.time
        return None

    def progress_of(self, request_id: int) -> float:
        """Mean completion fraction across the command's workers."""
        per_worker = self.progress.get(request_id)
        if not per_worker:
            return 0.0
        return float(sum(per_worker.values()) / len(per_worker))

    def merged_geometry(self) -> TriangleMesh:
        meshes = [p for p in self.payloads if isinstance(p, TriangleMesh)]
        return TriangleMesh.merge(meshes)

    def other_payloads(self) -> list[Any]:
        return [p for p in self.payloads if not isinstance(p, TriangleMesh)]

    def achieved_frame_rate(self) -> float:
        return self.renderer.frame_rate(self.merged_geometry().n_triangles)

    def frame_rate_ok(self) -> bool:
        return self.criteria.frame_rate_ok(self.achieved_frame_rate())
