"""Triangle meshes — the geometry streamed back to the client.

A :class:`TriangleMesh` is triangle soup: ``vertices`` has shape
``(3 * n_triangles, 3)`` with consecutive vertex triples forming
triangles, plus optional per-vertex scalar attributes.  Soup (rather
than an indexed mesh) matches what block-wise streamed extraction
produces: fragments arrive independently and are concatenated.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

__all__ = ["TriangleMesh"]


class TriangleMesh:
    """Immutable-ish triangle soup with optional vertex attributes."""

    def __init__(
        self,
        vertices: np.ndarray | None = None,
        attributes: Mapping[str, np.ndarray] | None = None,
    ):
        if vertices is None:
            vertices = np.empty((0, 3), dtype=np.float64)
        vertices = np.asarray(vertices, dtype=np.float64)
        if vertices.ndim != 2 or vertices.shape[1] != 3:
            raise ValueError(f"vertices must have shape (3n, 3), got {vertices.shape}")
        if len(vertices) % 3 != 0:
            raise ValueError(
                f"vertex count {len(vertices)} is not a multiple of 3"
            )
        self.vertices = vertices
        self.attributes: dict[str, np.ndarray] = {}
        for name, data in (attributes or {}).items():
            data = np.asarray(data, dtype=np.float64)
            if data.shape[0] != len(vertices):
                raise ValueError(
                    f"attribute {name!r} has {data.shape[0]} values for "
                    f"{len(vertices)} vertices"
                )
            self.attributes[name] = data

    # ------------------------------------------------------------ shape
    @property
    def n_triangles(self) -> int:
        return len(self.vertices) // 3

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    @property
    def triangles(self) -> np.ndarray:
        """View of shape ``(n_triangles, 3, 3)``."""
        return self.vertices.reshape(-1, 3, 3)

    @property
    def nbytes(self) -> int:
        return self.vertices.nbytes + sum(a.nbytes for a in self.attributes.values())

    def is_empty(self) -> bool:
        return self.n_triangles == 0

    # --------------------------------------------------------- geometry
    def areas(self) -> np.ndarray:
        """Per-triangle areas."""
        t = self.triangles
        return 0.5 * np.linalg.norm(
            np.cross(t[:, 1] - t[:, 0], t[:, 2] - t[:, 0]), axis=1
        )

    def area(self) -> float:
        return float(self.areas().sum())

    def normals(self) -> np.ndarray:
        """Per-triangle unit normals (zero for degenerate triangles)."""
        t = self.triangles
        n = np.cross(t[:, 1] - t[:, 0], t[:, 2] - t[:, 0])
        norms = np.linalg.norm(n, axis=1, keepdims=True)
        return np.divide(n, norms, out=np.zeros_like(n), where=norms > 0)

    def bounds(self) -> np.ndarray | None:
        if self.is_empty():
            return None
        return np.vstack([self.vertices.min(axis=0), self.vertices.max(axis=0)])

    def drop_degenerate(self, min_area: float = 1e-14) -> "TriangleMesh":
        """Remove zero-area triangles (tet faces grazing the isovalue)."""
        keep = self.areas() > min_area
        mask = np.repeat(keep, 3)
        return TriangleMesh(
            self.vertices[mask],
            {n: a[mask] for n, a in self.attributes.items()},
        )

    # --------------------------------------------------------- topology
    def indexed(self, decimals: int = 9) -> tuple[np.ndarray, np.ndarray]:
        """Weld duplicate vertices: returns ``(points, faces)``.

        ``points`` is ``(m, 3)`` unique vertices, ``faces`` is
        ``(n_triangles, 3)`` indices into it.  Welding keys on rounded
        coordinates, which is exact for our extraction (shared cut
        points are computed from identical inputs).
        """
        if self.is_empty():
            return np.empty((0, 3)), np.empty((0, 3), dtype=np.int64)
        rounded = np.round(self.vertices, decimals)
        points, inverse = np.unique(rounded, axis=0, return_inverse=True)
        faces = inverse.reshape(-1, 3)
        return points, faces

    def edge_statistics(self, decimals: int = 9) -> dict[str, int]:
        """Edge-manifoldness census of the welded mesh.

        A closed (watertight) surface has every edge shared by exactly
        two triangles: ``boundary == 0`` and ``nonmanifold == 0``.
        Streamed fragments legitimately have boundary edges; the *merged*
        surface of a closed feature must not.
        """
        _points, faces = self.indexed(decimals)
        if len(faces) == 0:
            return {"edges": 0, "interior": 0, "boundary": 0, "nonmanifold": 0}
        edges = np.concatenate(
            [faces[:, [0, 1]], faces[:, [1, 2]], faces[:, [2, 0]]]
        )
        edges.sort(axis=1)
        _unique, counts = np.unique(edges, axis=0, return_counts=True)
        return {
            "edges": int(len(counts)),
            "interior": int(np.sum(counts == 2)),
            "boundary": int(np.sum(counts == 1)),
            "nonmanifold": int(np.sum(counts > 2)),
        }

    def is_closed(self, decimals: int = 9) -> bool:
        """True when every edge is shared by exactly two triangles."""
        stats = self.edge_statistics(decimals)
        return stats["edges"] > 0 and stats["boundary"] == 0 and stats["nonmanifold"] == 0

    # ------------------------------------------------------------ merge
    @staticmethod
    def merge(meshes: Iterable["TriangleMesh"]) -> "TriangleMesh":
        """Concatenate fragments (the master worker's / client's job)."""
        meshes = [m for m in meshes if m is not None]
        if not meshes:
            return TriangleMesh()
        non_empty = [m for m in meshes if not m.is_empty()]
        if not non_empty:
            return TriangleMesh()
        vertices = np.concatenate([m.vertices for m in non_empty])
        names = set(non_empty[0].attributes)
        for m in non_empty[1:]:
            names &= set(m.attributes)
        attributes = {
            n: np.concatenate([m.attributes[n] for m in non_empty]) for n in names
        }
        return TriangleMesh(vertices, attributes)

    def __repr__(self) -> str:
        return f"TriangleMesh(n_triangles={self.n_triangles}, attrs={sorted(self.attributes)})"
