"""Terminal rendering of extracted geometry and run timelines.

A minimal stand-in for the paper's Figures 4/5 screenshots: orthographic
projection of a triangle mesh (or polyline set) onto a coordinate plane,
rasterized as a character-density image.  Useful for eyeballing results
in examples and headless environments.

Also hosts :func:`render_timeline`: an ASCII Gantt of one simulated run
(one lane per node, load/compute/merge/stream spans as characters) fed
by the :mod:`repro.obs` span tracer — the terminal twin of the Chrome
``trace_event`` export.
"""

from __future__ import annotations

import numpy as np

from .mesh import TriangleMesh
from .polyline import PolylineSet

__all__ = ["render_ascii", "render_timeline", "TIMELINE_GLYPHS"]

_AXES = {"xy": (0, 1), "xz": (0, 2), "yz": (1, 2)}
_RAMP = " .:-=+*#%@"


def render_ascii(
    geometry: TriangleMesh | PolylineSet,
    plane: str = "xy",
    width: int = 60,
    height: int = 24,
    bounds: np.ndarray | None = None,
) -> str:
    """Project ``geometry`` onto ``plane`` and render a density image.

    ``bounds`` (``[[min],[max]]`` in 3-D) fixes the frame; by default the
    geometry's own bounds are used.  Empty geometry renders as an empty
    frame.
    """
    try:
        ax, ay = _AXES[plane]
    except KeyError:
        raise ValueError(f"plane must be one of {sorted(_AXES)}, got {plane!r}") from None
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")

    if isinstance(geometry, TriangleMesh):
        points = geometry.triangles.mean(axis=1) if not geometry.is_empty() else None
    elif isinstance(geometry, PolylineSet):
        points = geometry.vertices if not geometry.is_empty() else None
    else:
        raise TypeError(f"cannot render {type(geometry).__name__}")

    grid = np.zeros((height, width))
    if points is not None:
        if bounds is None:
            geo_bounds = geometry.bounds()
            lo, hi = geo_bounds[0], geo_bounds[1]
        else:
            bounds = np.asarray(bounds, dtype=float)
            lo, hi = bounds[0], bounds[1]
        span_x = max(hi[ax] - lo[ax], 1e-12)
        span_y = max(hi[ay] - lo[ay], 1e-12)
        u = np.clip(((points[:, ax] - lo[ax]) / span_x * (width - 1)), 0, width - 1)
        v = np.clip(((points[:, ay] - lo[ay]) / span_y * (height - 1)), 0, height - 1)
        np.add.at(grid, (v.astype(int), u.astype(int)), 1.0)
    peak = grid.max()
    if peak > 0:
        levels = (grid / peak * (len(_RAMP) - 1)).astype(int)
    else:
        levels = grid.astype(int)
    rows = ["".join(_RAMP[levels[r, c]] for c in range(width)) for r in range(height)]
    # Image row 0 is the minimum of the vertical axis; print top-down.
    rows.reverse()
    frame = "+" + "-" * width + "+"
    return "\n".join([frame, *(f"|{row}|" for row in rows), frame])


# ----------------------------------------------------------- timelines
#: span kind -> glyph, in *ascending paint priority*: later entries
#: overwrite earlier ones where spans overlap in a cell, so fine-grained
#: activity (loads, computes, streams) shows through coarse envelopes.
TIMELINE_GLYPHS = {
    "session": ".",
    "command": "-",
    "worker": "=",
    "dms-prefetch": "p",
    "dms-strategy-load": "l",
    "dms-lookup": "?",
    "load": "L",
    "compute": "C",
    "merge": "M",
    "stream-packet": "S",
    # fault-injection instants paint on top of everything: a crash or
    # stall marker must stay visible inside a busy worker lane.
    "fault-link": "~",
    "fault-link-restore": "'",
    "fault-stall": "z",
    "fault-timeout": "t",
    "fault-retry": "r",
    "fault-reassign": "R",
    "fault-recover": "^",
    "fault-giveup": "G",
    "fault-degraded": "D",
    "fault-crash": "X",
}


def render_timeline(
    spans,
    width: int = 72,
    kinds=None,
    node_labels: dict[int, str] | None = None,
) -> str:
    """ASCII Gantt chart: one lane per node, one glyph per span kind.

    ``spans`` is any iterable of :class:`repro.obs.Span` (for example
    ``CommandResult.spans`` or a whole ``SpanTracer``); unfinished spans
    are skipped.  ``kinds`` restricts the chart to a subset of span
    kinds (default: everything in :data:`TIMELINE_GLYPHS`).
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    done = [s for s in spans if s.t_end is not None]
    if kinds is not None:
        kinds = set(kinds)
        done = [s for s in done if s.kind in kinds]
    done = [s for s in done if s.kind in TIMELINE_GLYPHS]
    if not done:
        return "(no finished spans)"
    t0 = min(s.t_start for s in done)
    t1 = max(s.t_end for s in done)
    span_t = max(t1 - t0, 1e-12)
    priority = {kind: i for i, kind in enumerate(TIMELINE_GLYPHS)}
    done.sort(key=lambda s: priority[s.kind])
    nodes = sorted({s.node for s in done})
    lanes = {node: [" "] * width for node in nodes}
    lane_priority = {node: [-1] * width for node in nodes}
    for s in done:
        c0 = int((s.t_start - t0) / span_t * (width - 1))
        c1 = int((s.t_end - t0) / span_t * (width - 1))
        glyph = TIMELINE_GLYPHS[s.kind]
        rank = priority[s.kind]
        lane = lanes[s.node]
        ranks = lane_priority[s.node]
        for c in range(c0, c1 + 1):
            if rank >= ranks[c]:
                lane[c] = glyph
                ranks[c] = rank
    def label(node: int) -> str:
        if node_labels and node in node_labels:
            return node_labels[node]
        return f"node {node}" + (" (sched)" if node == 0 else "")
    label_w = max(len(label(n)) for n in nodes)
    lines = [
        f"t = {t0:.4f} .. {t1:.4f} sim s  "
        f"({span_t / (width - 1):.4g} s/char)"
    ]
    for node in nodes:
        lines.append(f"{label(node):>{label_w}s} |{''.join(lanes[node])}|")
    used = sorted({s.kind for s in done}, key=lambda k: priority[k])
    lines.append(
        "legend: " + "  ".join(f"{TIMELINE_GLYPHS[k]}={k}" for k in used)
    )
    return "\n".join(lines)
