"""Terminal rendering of extracted geometry.

A minimal stand-in for the paper's Figures 4/5 screenshots: orthographic
projection of a triangle mesh (or polyline set) onto a coordinate plane,
rasterized as a character-density image.  Useful for eyeballing results
in examples and headless environments.
"""

from __future__ import annotations

import numpy as np

from .mesh import TriangleMesh
from .polyline import PolylineSet

__all__ = ["render_ascii"]

_AXES = {"xy": (0, 1), "xz": (0, 2), "yz": (1, 2)}
_RAMP = " .:-=+*#%@"


def render_ascii(
    geometry: TriangleMesh | PolylineSet,
    plane: str = "xy",
    width: int = 60,
    height: int = 24,
    bounds: np.ndarray | None = None,
) -> str:
    """Project ``geometry`` onto ``plane`` and render a density image.

    ``bounds`` (``[[min],[max]]`` in 3-D) fixes the frame; by default the
    geometry's own bounds are used.  Empty geometry renders as an empty
    frame.
    """
    try:
        ax, ay = _AXES[plane]
    except KeyError:
        raise ValueError(f"plane must be one of {sorted(_AXES)}, got {plane!r}") from None
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")

    if isinstance(geometry, TriangleMesh):
        points = geometry.triangles.mean(axis=1) if not geometry.is_empty() else None
    elif isinstance(geometry, PolylineSet):
        points = geometry.vertices if not geometry.is_empty() else None
    else:
        raise TypeError(f"cannot render {type(geometry).__name__}")

    grid = np.zeros((height, width))
    if points is not None:
        if bounds is None:
            geo_bounds = geometry.bounds()
            lo, hi = geo_bounds[0], geo_bounds[1]
        else:
            bounds = np.asarray(bounds, dtype=float)
            lo, hi = bounds[0], bounds[1]
        span_x = max(hi[ax] - lo[ax], 1e-12)
        span_y = max(hi[ay] - lo[ay], 1e-12)
        u = np.clip(((points[:, ax] - lo[ax]) / span_x * (width - 1)), 0, width - 1)
        v = np.clip(((points[:, ay] - lo[ay]) / span_y * (height - 1)), 0, height - 1)
        np.add.at(grid, (v.astype(int), u.astype(int)), 1.0)
    peak = grid.max()
    if peak > 0:
        levels = (grid / peak * (len(_RAMP) - 1)).astype(int)
    else:
        levels = grid.astype(int)
    rows = ["".join(_RAMP[levels[r, c]] for c in range(width)) for r in range(height)]
    # Image row 0 is the minimum of the vertical axis; print top-down.
    rows.reverse()
    frame = "+" + "-" * width + "+"
    return "\n".join([frame, *(f"|{row}|" for row in rows), frame])
