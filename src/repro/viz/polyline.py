"""Polyline geometry for particle traces.

Pathlines, streamlines and streaklines arrive at the client as point
sequences; this module turns them into renderable polyline sets with
per-vertex attributes (time, speed) and supports the same merge
semantics as :class:`~repro.viz.mesh.TriangleMesh`.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["PolylineSet"]


class PolylineSet:
    """A batch of polylines in one vertex buffer.

    ``vertices`` is ``(n, 3)``; ``offsets`` holds the start index of
    each polyline plus a final sentinel ``n`` (CSR-style), so line ``i``
    is ``vertices[offsets[i]:offsets[i+1]]``.
    """

    def __init__(
        self,
        vertices: np.ndarray | None = None,
        offsets: Sequence[int] | None = None,
        attributes: Mapping[str, np.ndarray] | None = None,
    ):
        if vertices is None:
            vertices = np.empty((0, 3), dtype=np.float64)
        vertices = np.asarray(vertices, dtype=np.float64)
        if vertices.ndim != 2 or vertices.shape[1] != 3:
            raise ValueError(f"vertices must be (n, 3), got {vertices.shape}")
        if offsets is None:
            offsets = [0, len(vertices)] if len(vertices) else [0]
        offsets = list(int(o) for o in offsets)
        if offsets[0] != 0 or offsets[-1] != len(vertices):
            raise ValueError(
                f"offsets must start at 0 and end at {len(vertices)}, got {offsets}"
            )
        if any(b < a for a, b in zip(offsets, offsets[1:])):
            raise ValueError("offsets must be non-decreasing")
        self.vertices = vertices
        self.offsets = offsets
        self.attributes: dict[str, np.ndarray] = {}
        for name, data in (attributes or {}).items():
            data = np.asarray(data, dtype=np.float64)
            if data.shape[0] != len(vertices):
                raise ValueError(
                    f"attribute {name!r} has {data.shape[0]} values for "
                    f"{len(vertices)} vertices"
                )
            self.attributes[name] = data

    # ------------------------------------------------------------ shape
    @property
    def n_lines(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    def line(self, index: int) -> np.ndarray:
        if not 0 <= index < self.n_lines:
            raise IndexError(f"line {index} out of range 0..{self.n_lines - 1}")
        return self.vertices[self.offsets[index] : self.offsets[index + 1]]

    def line_attribute(self, name: str, index: int) -> np.ndarray:
        return self.attributes[name][self.offsets[index] : self.offsets[index + 1]]

    def is_empty(self) -> bool:
        return self.n_vertices == 0

    # --------------------------------------------------------- geometry
    def lengths(self) -> np.ndarray:
        """Arc length per polyline."""
        out = np.zeros(self.n_lines)
        for i in range(self.n_lines):
            pts = self.line(i)
            if len(pts) >= 2:
                out[i] = np.linalg.norm(np.diff(pts, axis=0), axis=1).sum()
        return out

    def bounds(self) -> np.ndarray | None:
        if self.is_empty():
            return None
        return np.vstack([self.vertices.min(axis=0), self.vertices.max(axis=0)])

    @property
    def nbytes(self) -> int:
        return self.vertices.nbytes + sum(a.nbytes for a in self.attributes.values())

    # ---------------------------------------------------------- factory
    @classmethod
    def from_pathlines(cls, pathlines: Iterable) -> "PolylineSet":
        """Build from Pathline objects, carrying time and speed."""
        verts, times, speeds, offsets = [], [], [], [0]
        for path in pathlines:
            pts = np.asarray(path.points)
            verts.append(pts)
            times.append(np.asarray(path.times))
            if len(pts) >= 2:
                seg = np.linalg.norm(np.diff(pts, axis=0), axis=1)
                dt = np.diff(np.asarray(path.times))
                v = np.divide(seg, dt, out=np.zeros_like(seg), where=dt > 0)
                speeds.append(np.concatenate([[v[0]], v]))
            else:
                speeds.append(np.zeros(len(pts)))
            offsets.append(offsets[-1] + len(pts))
        if not verts:
            return cls()
        return cls(
            np.concatenate(verts),
            offsets,
            {"time": np.concatenate(times), "speed": np.concatenate(speeds)},
        )

    @staticmethod
    def merge(sets: Iterable["PolylineSet"]) -> "PolylineSet":
        sets = [s for s in sets if s is not None and not s.is_empty()]
        if not sets:
            return PolylineSet()
        vertices = np.concatenate([s.vertices for s in sets])
        offsets = [0]
        for s in sets:
            base = offsets[-1]
            offsets.extend(base + o for o in s.offsets[1:])
        names = set(sets[0].attributes)
        for s in sets[1:]:
            names &= set(s.attributes)
        attrs = {n: np.concatenate([s.attributes[n] for s in sets]) for n in names}
        return PolylineSet(vertices, offsets, attrs)

    def __repr__(self) -> str:
        return f"PolylineSet(n_lines={self.n_lines}, n_vertices={self.n_vertices})"
