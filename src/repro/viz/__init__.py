"""Client-side geometry and the visualization-client model."""

from .mesh import TriangleMesh
from .polyline import PolylineSet
from .ascii import render_ascii
from .client import (
    FrameRateModel,
    InteractionCriteria,
    PacketRecord,
    VisualizationClient,
)

__all__ = [
    "render_ascii",
    "TriangleMesh",
    "PolylineSet",
    "FrameRateModel",
    "InteractionCriteria",
    "PacketRecord",
    "VisualizationClient",
]
