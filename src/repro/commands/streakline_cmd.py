"""Streakline command (extension; the paper lists streaklines as future
work in §9).

Seeds are dealt to workers like pathline seeds; each seed produces one
dye filament observed at ``t_observe``.  Block demands run through the
DMS with the same block-Markov prefetcher the pathline command uses —
the access pattern is a superposition of pathline patterns, which is
exactly what the shared Markov graph learns fastest.

Params: ``seeds`` (required), ``n_particles`` per filament,
``t_start`` / ``t_observe``, plus the pathline tracer knobs.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..algorithms.streaklines import StreaklineTracer
from ..dms.items import block_item
from ..core.commands import Compute, Emit, Load
from .pathline_cmd import PathlinesDataManCommand

__all__ = ["StreaklinesCommand"]


class StreaklinesCommand(PathlinesDataManCommand):
    """DMS-backed streakline integration."""

    name = "streaklines"
    streaming = False
    use_dms = True

    def run(self, ctx, assignment: Any, worker_index: int):
        times = list(ctx.times)
        handles = list(ctx.handles_by_time[0])
        t_start = ctx.params.get("t_start", times[0])
        t_observe = ctx.params.get("t_observe", times[-1])
        n_particles = int(ctx.params.get("n_particles", 16))
        tracer = StreaklineTracer(
            handles,
            times,
            rtol=float(ctx.params.get("rtol", 1e-3)),
            max_steps=int(ctx.params.get("max_steps", 400)),
            local_cache_blocks=int(ctx.params.get("local_cache_blocks", 8)),
        )
        sample_cost = ctx.costs.pathline_sample
        for seed in assignment:
            gen = tracer.trace(seed, t_start, t_observe, n_particles)
            charged = tracer.tracer.samples
            try:
                request = next(gen)
                while True:
                    pending = tracer.tracer.samples - charged
                    if pending:
                        yield Compute(pending * sample_cost)
                        charged = tracer.tracer.samples
                    block = yield Load(
                        block_item(
                            ctx.dataset,
                            ctx.time_offset + request.time_index,
                            request.block_id,
                        )
                    )
                    request = gen.send(block)
            except StopIteration as stop:
                streak = stop.value
            pending = tracer.tracer.samples - charged
            if pending:
                yield Compute(pending * sample_cost)
            yield Emit(streak, nbytes=int(streak.points.nbytes) + 64)
