"""The pathline commands of the evaluation (§6.3, §7.3).

Seed points are dealt to workers round-robin; because "every pathline
has different computational efforts and strongly varying block
requirements", this static distribution shows the load imbalance the
paper reports (bad scalability, Fig. 13).

The tracer's block demands drive ``Load`` ops, so with the DMS enabled
the request stream feeds the Markov(+OBL) prefetcher — "making use of
the markov prefetcher, and after a learning phase, the data requests
even of time-dependent particle tracing can be predicted quite well."

Each worker integrates its seed share as ONE particle batch through
:class:`~repro.algorithms.pathlines.BatchPathlineTracer`: the RK45
stages advance all of the share's particles together, and every block
the batch needs is demanded once per super-step (*coalesced* — one
``Load`` per (time level, block) regardless of how many particles sit
in it), which both cuts DMS round trips and keeps the request stream
Markov-learnable.  ``params["tracer"] = "scalar"`` falls back to the
one-particle-at-a-time reference tracer.

Params: ``seeds`` (list of 3-D points; required), ``t_start`` /
``t_end`` (physical times; default full range), ``rtol``,
``local_cache_blocks``, ``max_steps``, ``tracer`` ("batched" |
"scalar"), ``prefetch`` override.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..algorithms.pathlines import BatchPathlineTracer, PathlineTracer
from ..dms.items import block_item
from ..core.commands import Command, CommandContext, Compute, Emit, Load, split_round_robin

__all__ = ["SimplePathlinesCommand", "PathlinesDataManCommand"]


class PathlinesDataManCommand(Command):
    """DMS-backed pathline integration with Markov prefetching."""

    name = "pathlines-dataman"
    streaming = False
    use_dms = True

    def plan(self, ctx: CommandContext, group_size: int) -> list[Any]:
        seeds = [np.asarray(s, dtype=np.float64) for s in ctx.params["seeds"]]
        if not seeds:
            raise ValueError("pathline commands need at least one seed")
        return split_round_robin(seeds, group_size)

    def plan_tasks(self, ctx: CommandContext) -> list[Any]:
        # One task per seed, in seed order.  A singleton batch traces
        # byte-identically to the same seed inside a larger batch (the
        # batched tracer's per-particle equivalence pin), so per-seed
        # stealing preserves every path's bytes and the merged order.
        return [[seed] for seed in self.plan(ctx, 1)[0]]

    def task_cost(self, ctx: CommandContext, task: Any) -> float:
        # Seeds have no a-priori cost signal (effort depends on the
        # trajectory); uniform estimates leave ordering to feedback
        # from recorded per-seed timings.
        return 1.0

    def item_sequence_for(self, ctx: CommandContext, assignment: Any):
        # The OBL fallback order: file-storage order, time-major.
        return [
            block_item(ctx.dataset, t, h.block_id)
            for t in ctx.time_indices
            for h in sorted(
                ctx.handles_by_time[t - ctx.time_offset], key=lambda h: h.block_id
            )
        ]

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "block-markov"

    def merge(self, payload_lists):
        return [p for payloads in payload_lists for p in payloads]

    def run(self, ctx: CommandContext, assignment: Any, worker_index: int):
        if not assignment:
            return
        times = list(ctx.times)
        handles = list(ctx.handles_by_time[0])
        t_start = ctx.params.get("t_start", times[0])
        t_end = ctx.params.get("t_end", times[-1])
        mode = str(ctx.params.get("tracer", "batched"))
        tracer_kwargs = dict(
            rtol=float(ctx.params.get("rtol", 1e-3)),
            max_steps=int(ctx.params.get("max_steps", 400)),
            local_cache_blocks=int(ctx.params.get("local_cache_blocks", 8)),
        )
        sample_cost = ctx.costs.pathline_sample
        if mode == "scalar":
            tracer = PathlineTracer(handles, times, **tracer_kwargs)
            for seed in assignment:
                yield from self._drive(
                    tracer, tracer.trace(seed, t_start, t_end), ctx, sample_cost
                )
        else:
            tracer = BatchPathlineTracer(handles, times, **tracer_kwargs)
            yield from self._drive(
                tracer, tracer.trace_many(assignment, t_start, t_end), ctx, sample_cost
            )

    def _drive(self, tracer, gen, ctx: CommandContext, sample_cost: float):
        """Run one tracer generator, charging samples and emitting results."""
        charged = tracer.samples
        try:
            request = next(gen)
            while True:
                # Charge the numerics done since the last block demand.
                pending = tracer.samples - charged
                if pending:
                    yield Compute(pending * sample_cost)
                    charged = tracer.samples
                block = yield Load(
                    block_item(
                        ctx.dataset,
                        ctx.time_offset + request.time_index,
                        request.block_id,
                    )
                )
                request = gen.send(block)
        except StopIteration as stop:
            result = stop.value
        pending = tracer.samples - charged
        if pending:
            yield Compute(pending * sample_cost)
        paths = result if isinstance(result, list) else [result]
        for path in paths:
            yield Emit(path, nbytes=int(path.points.nbytes + path.times.nbytes))


class SimplePathlinesCommand(PathlinesDataManCommand):
    """The no-DMS baseline: every tracer block demand hits the fileserver."""

    name = "pathlines-simple"
    use_dms = False

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "none"
