"""The pathline commands of the evaluation (§6.3, §7.3).

Seed points are dealt to workers round-robin; because "every pathline
has different computational efforts and strongly varying block
requirements", this static distribution shows the load imbalance the
paper reports (bad scalability, Fig. 13).

The tracer's block demands drive ``Load`` ops, so with the DMS enabled
the request stream feeds the Markov(+OBL) prefetcher — "making use of
the markov prefetcher, and after a learning phase, the data requests
even of time-dependent particle tracing can be predicted quite well."

Params: ``seeds`` (list of 3-D points; required), ``t_start`` /
``t_end`` (physical times; default full range), ``rtol``,
``local_cache_blocks``, ``max_steps``, ``prefetch`` override.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..algorithms.pathlines import PathlineTracer
from ..dms.items import block_item
from ..core.commands import Command, CommandContext, Compute, Emit, Load, split_round_robin

__all__ = ["SimplePathlinesCommand", "PathlinesDataManCommand"]


class PathlinesDataManCommand(Command):
    """DMS-backed pathline integration with Markov prefetching."""

    name = "pathlines-dataman"
    streaming = False
    use_dms = True

    def plan(self, ctx: CommandContext, group_size: int) -> list[Any]:
        seeds = [np.asarray(s, dtype=np.float64) for s in ctx.params["seeds"]]
        if not seeds:
            raise ValueError("pathline commands need at least one seed")
        return split_round_robin(seeds, group_size)

    def item_sequence_for(self, ctx: CommandContext, assignment: Any):
        # The OBL fallback order: file-storage order, time-major.
        return [
            block_item(ctx.dataset, t, h.block_id)
            for t in ctx.time_indices
            for h in sorted(
                ctx.handles_by_time[t - ctx.time_offset], key=lambda h: h.block_id
            )
        ]

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "block-markov"

    def merge(self, payload_lists):
        return [p for payloads in payload_lists for p in payloads]

    def run(self, ctx: CommandContext, assignment: Any, worker_index: int):
        times = list(ctx.times)
        handles = list(ctx.handles_by_time[0])
        t_start = ctx.params.get("t_start", times[0])
        t_end = ctx.params.get("t_end", times[-1])
        tracer = PathlineTracer(
            handles,
            times,
            rtol=float(ctx.params.get("rtol", 1e-3)),
            max_steps=int(ctx.params.get("max_steps", 400)),
            local_cache_blocks=int(ctx.params.get("local_cache_blocks", 8)),
        )
        sample_cost = ctx.costs.pathline_sample
        for seed in assignment:
            gen = tracer.trace(seed, t_start, t_end)
            charged = tracer.samples
            try:
                request = next(gen)
                while True:
                    # Charge the numerics done since the last block demand.
                    pending = tracer.samples - charged
                    if pending:
                        yield Compute(pending * sample_cost)
                        charged = tracer.samples
                    block = yield Load(
                        block_item(
                            ctx.dataset,
                            ctx.time_offset + request.time_index,
                            request.block_id,
                        )
                    )
                    request = gen.send(block)
            except StopIteration as stop:
                path = stop.value
            pending = tracer.samples - charged
            if pending:
                yield Compute(pending * sample_cost)
            yield Emit(path, nbytes=int(path.points.nbytes + path.times.nbytes))


class SimplePathlinesCommand(PathlinesDataManCommand):
    """The no-DMS baseline: every tracer block demand hits the fileserver."""

    name = "pathlines-simple"
    use_dms = False

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "none"
