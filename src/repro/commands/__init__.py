"""The command library (layer 3): the paper's six evaluated commands,
plus cut-plane and progressive extensions."""

from ..core.commands import CommandRegistry
from .iso import IsoDataManCommand, SimpleIsoCommand, ViewerIsoCommand
from .vortex import SimpleVortexCommand, StreamedVortexCommand, VortexDataManCommand
from .pathline_cmd import PathlinesDataManCommand, SimplePathlinesCommand
from .cutplane_cmd import CutplaneCommand, StreamedCutplaneCommand
from .progressive import ProgressiveIsoCommand
from .streakline_cmd import StreaklinesCommand

ALL_COMMANDS = [
    SimpleIsoCommand,
    IsoDataManCommand,
    ViewerIsoCommand,
    SimpleVortexCommand,
    VortexDataManCommand,
    StreamedVortexCommand,
    SimplePathlinesCommand,
    PathlinesDataManCommand,
    CutplaneCommand,
    StreamedCutplaneCommand,
    ProgressiveIsoCommand,
    StreaklinesCommand,
]


def default_registry() -> CommandRegistry:
    """A registry with every built-in command installed."""
    registry = CommandRegistry()
    for cls in ALL_COMMANDS:
        registry.register(cls)
    return registry


__all__ = [
    "ALL_COMMANDS",
    "default_registry",
    "SimpleIsoCommand",
    "IsoDataManCommand",
    "ViewerIsoCommand",
    "SimpleVortexCommand",
    "VortexDataManCommand",
    "StreamedVortexCommand",
    "SimplePathlinesCommand",
    "PathlinesDataManCommand",
    "CutplaneCommand",
    "StreamedCutplaneCommand",
    "ProgressiveIsoCommand",
    "StreaklinesCommand",
]
