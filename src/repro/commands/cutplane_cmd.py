"""Cut-plane commands (the other §5.1 example, beyond the paper's eval).

``CutplaneCommand`` is the batch DMS variant; ``StreamedCutplaneCommand``
reorganizes the work block by block and streams each block's cut as soon
as it is computed (data-reorganization streaming, §5.1).

Params: ``normal`` (3-vector, required), ``offset`` (default 0.0),
``attributes`` (scalar fields to interpolate onto the cut),
``time_range``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..algorithms.cutplane import extract_block_cutplane
from ..dms.items import block_item
from ..core.commands import (
    Command,
    CommandContext,
    Compute,
    Emit,
    Load,
    plan_block_assignments,
    plan_block_tasks,
    split_round_robin,
)

__all__ = ["CutplaneCommand", "StreamedCutplaneCommand"]


class CutplaneCommand(Command):
    """Batch cut-plane extraction through the DMS."""

    name = "cutplane"
    streaming = False
    use_dms = True

    def plan(self, ctx: CommandContext, group_size: int) -> list[Any]:
        return plan_block_assignments(ctx, group_size)

    def plan_tasks(self, ctx: CommandContext) -> list[Any]:
        return plan_block_tasks(ctx)

    def item_sequence_for(self, ctx: CommandContext, assignment: Any):
        return [block_item(ctx.dataset, t, bid) for t, bid in assignment]

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "obl"

    def run(self, ctx: CommandContext, assignment: Any, worker_index: int):
        normal = np.asarray(ctx.params["normal"], dtype=np.float64)
        offset = float(ctx.params.get("offset", 0.0))
        attributes = list(ctx.params.get("attributes", []))
        for t, bid in assignment:
            block = yield Load(block_item(ctx.dataset, t, bid))
            handle = ctx.handle(t, bid)
            mesh = yield Compute(
                ctx.costs.iso_block_cost(handle, 0.05),
                lambda b=block: extract_block_cutplane(b, normal, offset, attributes),
            )
            if not mesh.is_empty():
                yield Emit(mesh, ctx.costs.result_bytes(mesh.nbytes, handle))


class StreamedCutplaneCommand(CutplaneCommand):
    """Block-by-block streaming (data reorganization, §5.1)."""

    name = "cutplane-streamed"
    streaming = True
