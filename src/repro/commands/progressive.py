"""Progressive multi-resolution isosurface extraction (§5.3).

"First, one uses the lowest resolution level to extract the so called
base data, which is essentially a very coarse approximation of the
final result.  Then, details are successively added by refining the
underlying data grid and adjusting the approximate result data
accordingly."

The command builds a subsampling pyramid per block and streams one
surface approximation per level, coarsest first.  Each level's packet
carries a ``level`` attribute so the client can replace the previous
approximation (a replace-refine scheme; the truly incremental
refinement operator is future work in the paper too).  The total
runtime exceeds the plain algorithm's — the paper's stated price for
the reduced latency.

Params: ``isovalue`` (required), ``scalar``, ``min_dim`` / ``max_levels``
for the pyramid, ``time_range``.
"""

from __future__ import annotations

from typing import Any

from ..algorithms.isosurface import active_cell_indices, extract_block_isosurface
from ..dms.items import block_item
from ..grids.multires import MultiResPyramid
from ..core.commands import (
    Command,
    CommandContext,
    Compute,
    Emit,
    Load,
    plan_block_assignments,
    split_round_robin,
)

__all__ = ["ProgressiveIsoCommand"]


class ProgressiveIsoCommand(Command):
    """Coarse-to-fine streamed isosurface extraction."""

    name = "iso-progressive"
    streaming = True
    use_dms = True

    def plan(self, ctx: CommandContext, group_size: int) -> list[Any]:
        return plan_block_assignments(ctx, group_size)

    def item_sequence_for(self, ctx: CommandContext, assignment: Any):
        return [block_item(ctx.dataset, t, bid) for t, bid in assignment]

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "obl"

    def run(self, ctx: CommandContext, assignment: Any, worker_index: int):
        isovalue = float(ctx.params["isovalue"])
        scalar = ctx.params.get("scalar", "pressure")
        min_dim = int(ctx.params.get("min_dim", 3))
        max_levels = int(ctx.params.get("max_levels", 4))
        for t, bid in assignment:
            block = yield Load(block_item(ctx.dataset, t, bid))
            handle = ctx.handle(t, bid)
            pyramid = yield Compute(
                # Pyramid construction touches every point once per level.
                handle.modeled_points * 2.0,
                lambda b=block: MultiResPyramid(b, min_dim=min_dim, max_levels=max_levels),
            )
            total_cells = max(sum(pyramid.cells_per_level()), 1)
            for level_index, level_block in enumerate(pyramid.levels):
                # Level cost scales with its share of the pyramid cells.
                share = level_block.n_cells / total_cells
                active = active_cell_indices(level_block, scalar, isovalue)
                fraction = len(active) / max(level_block.n_cells, 1)
                mesh = yield Compute(
                    ctx.costs.iso_block_cost(handle, fraction) * share,
                    lambda b=level_block, a=active: extract_block_isosurface(
                        b, scalar, isovalue, cell_indices=a
                    ),
                )
                if mesh.is_empty():
                    continue
                # Coarse levels produce coarse (small) packets.
                nbytes = ctx.costs.result_bytes(mesh.nbytes, handle)
                payload = mesh
                payload.attributes["level"] = _level_attribute(mesh, level_index)
                yield Emit(payload, int(nbytes * share))


def _level_attribute(mesh, level_index: int):
    import numpy as np

    return np.full(mesh.n_vertices, float(level_index))
