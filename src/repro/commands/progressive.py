"""Progressive multi-resolution isosurface extraction (§5.3).

"First, one uses the lowest resolution level to extract the so called
base data, which is essentially a very coarse approximation of the
final result.  Then, details are successively added by refining the
underlying data grid and adjusting the approximate result data
accordingly."

The command is *level-major*: every assigned block's coarsest level is
extracted and streamed before any block is refined, so the client holds
a complete (if coarse) approximation after the cheap coarse pass — the
time-to-first-approximation (TTFA) becomes O(coarse pass) instead of
O(full command).  Once a worker's coarse pass is out it streams a
zero-byte ``kind="approximation"`` marker packet; the client's TTFA
clock stops when every worker's marker has arrived.

Three more optimizations ride on the schedule:

* **Cached pyramids** — the per-block :class:`~..grids.multires.`
  ``MultiResPyramid`` is a cacheable derived DMS item
  (:class:`~..core.commands.ComputeCached`), so re-interaction with a
  new isovalue skips re-coarsening entirely.
* **Coarse-to-fine culling** — refinement levels scan only cells whose
  coarse ancestor box straddles the isovalue
  (:meth:`MultiResPyramid.active_cells`); the exact 8-corner filter on
  the survivors keeps the finest level byte-identical to plain ``iso``.
* **Frame-budget refinement** — with ``params["frame_budget"]`` (a
  triangle count from :meth:`~..viz.client.FrameRateModel.triangle_budget`)
  refinement is reordered by visible benefit per triangle and paced in
  budget-sized rounds; a :class:`RefinementControl` token in
  ``params["control"]`` cancels in-flight refinement cooperatively
  (the coarse pass always completes).

Each level's packet carries ``level`` / ``finest`` / ``order`` vertex
attributes so the client can replace-refine and :meth:`merge` can
assemble final-quality geometry from the finest level per block.

Params: ``isovalue`` (required), ``scalar``, ``min_dim`` /
``max_levels`` for the pyramid, ``time_range``, ``schedule``
(``"level-major"`` default, ``"depth-first"`` for the legacy
traversal), ``frame_budget``, ``control``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..algorithms.isosurface import extract_block_isosurface
from ..dms.items import block_item, pyramid_item
from ..grids.multires import MultiResPyramid, modeled_pyramid_nbytes
from ..viz.mesh import TriangleMesh
from ..core.commands import (
    Command,
    CommandContext,
    Compute,
    ComputeCached,
    Emit,
    Load,
    plan_block_assignments,
)

__all__ = ["ProgressiveIsoCommand", "RefinementControl"]


class RefinementControl:
    """Cooperative cancellation token for in-flight refinement.

    The client — or the serving layer, on a viewpoint move or isovalue
    change — calls :meth:`cancel`; the command checks the flag between
    refinement emissions and stops streaming further detail.  The
    coarse pass always completes, so the user keeps the approximation
    they already have.  The token travels inside ``params`` (shallow
    ``dict()`` copies along the scheduler and serve paths preserve the
    reference, so an external ``cancel`` reaches the running command).
    """

    def __init__(self) -> None:
        self.cancelled = False
        self.reason: str | None = None

    def cancel(self, reason: str = "superseded") -> None:
        self.cancelled = True
        self.reason = reason


class ProgressiveIsoCommand(Command):
    """Coarse-to-fine streamed isosurface extraction, level-major."""

    name = "iso-progressive"
    streaming = True
    use_dms = True

    def plan(self, ctx: CommandContext, group_size: int) -> list[Any]:
        return plan_block_assignments(ctx, group_size)

    def item_sequence_for(self, ctx: CommandContext, assignment: Any):
        return [block_item(ctx.dataset, t, bid) for t, bid in assignment]

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "obl"

    # ------------------------------------------------------------- run
    def run(self, ctx: CommandContext, assignment: Any, worker_index: int):
        schedule = str(ctx.params.get("schedule", "level-major"))
        if schedule == "depth-first":
            yield from self._run_depth_first(ctx, assignment)
        elif schedule == "level-major":
            yield from self._run_level_major(ctx, assignment)
        else:
            raise ValueError(
                f"schedule must be 'level-major' or 'depth-first', got {schedule!r}"
            )

    def _run_level_major(self, ctx: CommandContext, assignment: Any):
        isovalue = float(ctx.params["isovalue"])
        scalar = ctx.params.get("scalar", "pressure")
        control = ctx.params.get("control")
        frame_budget = float(ctx.params.get("frame_budget") or 0.0)

        # Coarse pass: pyramid + coarsest surface for *every* assigned
        # block before refining any of them.
        blocks: list[dict] = []
        for order, (t, bid) in enumerate(assignment):
            handle = ctx.handle(t, bid)
            pyramid = yield from self._acquire_pyramid(ctx, t, bid, handle)
            state = {"order": order, "handle": handle, "pyramid": pyramid,
                     "triangles": 0, "area": 0.0}
            yield from self._emit_level(ctx, state, 0, scalar, isovalue)
            blocks.append(state)
        # The coarse pass is complete: a zero-byte marker packet stops
        # the client's TTFA clock for this worker.
        yield Emit(None, 0, kind="approximation")

        max_depth = max((len(s["pyramid"]) for s in blocks), default=1)
        for level in range(1, max_depth):
            if control is not None and control.cancelled:
                return
            pending = [s for s in blocks if level < len(s["pyramid"])]
            if frame_budget > 0.0:
                # Refine where a streamed triangle buys the most visible
                # surface: blocks with coarse (large-triangle) coverage
                # first.  Stable sort keeps assignment order on ties.
                pending = sorted(
                    pending,
                    key=lambda s: -(s["area"] / max(s["triangles"], 1)),
                )
            while pending:
                if control is not None and control.cancelled:
                    return
                spent = 0
                next_round = []
                for state in pending:
                    if control is not None and control.cancelled:
                        return
                    if frame_budget > 0.0 and spent >= frame_budget:
                        # Over budget for this frame: defer the rest to
                        # the next round (a later frame).
                        next_round.append(state)
                        continue
                    spent += yield from self._emit_level(
                        ctx, state, level, scalar, isovalue
                    )
                pending = next_round

    def _run_depth_first(self, ctx: CommandContext, assignment: Any):
        """Legacy traversal: each block's full pyramid before the next.

        Kept as the TTFA baseline for ``macro_bench --suite pr9``: the
        first *complete* approximation only exists once the last block's
        coarsest level is out, which depth-first delays behind every
        earlier block's full refinement.
        """
        isovalue = float(ctx.params["isovalue"])
        scalar = ctx.params.get("scalar", "pressure")
        control = ctx.params.get("control")
        last = len(assignment) - 1
        for order, (t, bid) in enumerate(assignment):
            handle = ctx.handle(t, bid)
            pyramid = yield from self._acquire_pyramid(ctx, t, bid, handle)
            state = {"order": order, "handle": handle, "pyramid": pyramid,
                     "triangles": 0, "area": 0.0}
            for level in range(len(pyramid)):
                if level > 0 and control is not None and control.cancelled:
                    return
                yield from self._emit_level(ctx, state, level, scalar, isovalue)
                if level == 0 and order == last:
                    yield Emit(None, 0, kind="approximation")
        if last < 0:
            yield Emit(None, 0, kind="approximation")

    # --------------------------------------------------------- helpers
    def _acquire_pyramid(self, ctx: CommandContext, t: int, bid: int, handle):
        """Probe the derived cache first; only a miss loads the block.

        The pyramid's finest level aliases the source block, so a cache
        hit makes the full-resolution ``Load`` redundant — interactive
        re-extraction (a new isovalue over resident data) never touches
        the disk tier at all, which is where the TTFA win comes from.
        """
        min_dim = int(ctx.params.get("min_dim", 3))
        max_levels = int(ctx.params.get("max_levels", 4))
        item = pyramid_item(ctx.dataset, t, bid, min_dim, max_levels)
        nbytes = modeled_pyramid_nbytes(
            handle.modeled_shape, min_dim=min_dim, max_levels=max_levels
        )
        pyramid = yield ComputeCached(item=item, cost=0.0, fn=None, nbytes=nbytes)
        if pyramid is None:
            block = yield Load(block_item(ctx.dataset, t, bid))
            pyramid = yield ComputeCached(
                item=item,
                # Pyramid construction touches every point once per
                # level — paid once, then served from the derived cache.
                cost=handle.modeled_points * 2.0,
                fn=lambda b=block: MultiResPyramid(
                    b, min_dim=min_dim, max_levels=max_levels
                ),
                nbytes=nbytes,
            )
        return pyramid

    def _emit_level(self, ctx, state, level, scalar, isovalue):
        """Extract and emit one block level; returns triangles emitted."""
        pyramid: MultiResPyramid = state["pyramid"]
        handle = state["handle"]
        if not pyramid.level_straddles(level, scalar, isovalue):
            # The level's scalar range excludes the isovalue: no cull,
            # no Compute event, no packet.
            return 0
        level_block = pyramid.levels[level]
        total_cells = max(sum(pyramid.cells_per_level()), 1)
        share = level_block.n_cells / total_cells
        stats: dict = {}
        active = pyramid.active_cells(level, scalar, isovalue, out_stats=stats)
        if len(active) == 0:
            return 0
        # Scan cost covers only the cells that survived the coarse cull;
        # triangulation covers the exactly-active ones.
        modeled_cells = handle.modeled_cells * share
        scan_fraction = stats["candidates"] / max(level_block.n_cells, 1)
        fraction = len(active) / max(level_block.n_cells, 1)
        cost = modeled_cells * (
            scan_fraction * ctx.costs.iso_scan_per_cell
            + fraction * ctx.costs.iso_triangulate_per_cell
        )
        mesh = yield Compute(
            cost,
            lambda b=level_block, a=active: extract_block_isosurface(
                b, scalar, isovalue, cell_indices=a
            ),
        )
        if mesh.is_empty():
            return 0
        n = mesh.n_vertices
        finest = level == len(pyramid) - 1
        mesh.attributes["level"] = np.full(n, float(level))
        mesh.attributes["finest"] = np.full(n, 1.0 if finest else 0.0)
        mesh.attributes["order"] = np.full(n, float(state["order"]))
        state["triangles"] = mesh.n_triangles
        state["area"] = mesh.area()
        # Coarse levels produce coarse (small) packets.
        nbytes = ctx.costs.result_bytes(mesh.nbytes, handle)
        yield Emit(mesh, int(nbytes * share))
        return mesh.n_triangles

    # ----------------------------------------------------------- merge
    def merge(self, payload_lists):
        """Final-quality geometry: the finest level of every block.

        Selecting the ``finest``-tagged mesh per block (ordered by each
        share's assignment order) reproduces exactly what the plain
        ``iso`` command merges — byte-identical vertices, since the
        culled finest active set equals ``active_cell_indices``.  The
        progressive bookkeeping attributes are dropped from the merged
        mesh so the result matches plain ``iso`` attribute-for-attribute
        as well.
        """
        finest: list[TriangleMesh] = []
        for payloads in payload_lists:
            share = [
                m for m in payloads
                if isinstance(m, TriangleMesh)
                and not m.is_empty()
                and float(m.attributes.get("finest", np.zeros(1))[0]) == 1.0
            ]
            share.sort(key=lambda m: float(m.attributes["order"][0]))
            finest.extend(share)
        merged = TriangleMesh.merge(finest)
        for tag in ("level", "finest", "order"):
            merged.attributes.pop(tag, None)
        return merged
