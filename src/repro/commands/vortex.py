"""The three λ2 vortex commands of the evaluation (§6.3, §7.2).

* ``SimpleVortexCommand``   — no data management.
* ``VortexDataManCommand``  — DMS + OBL prefetching, batch extraction
  (compute the full λ2 field of a block, then triangulate).
* ``StreamedVortexCommand`` — "works on the original data set but
  avoids computing the complete λ2 scalar field first": slab-wise λ2
  with active-cell batches streamed as soon as a user-specified number
  accumulates.

Params: ``threshold`` (λ2 iso level, default 0.0 — "in practice a value
about zero is used"), ``velocity`` field name, ``batch_cells`` for the
streamed variant, ``time_range``, ``prefetch`` override.
"""

from __future__ import annotations

from typing import Any

from ..algorithms.lambda2 import (
    extract_block_isosurface,
    iter_vortex_batches,
    lambda2_field,
)
from ..algorithms.isosurface import active_cell_indices
from ..dms.items import block_item
from ..core.commands import (
    Command,
    CommandContext,
    Compute,
    Emit,
    Load,
    plan_block_assignments,
    plan_block_tasks,
    split_round_robin,
)
from ..grids.block import StructuredBlock

__all__ = ["SimpleVortexCommand", "VortexDataManCommand", "StreamedVortexCommand"]


class VortexDataManCommand(Command):
    """Batch λ2 extraction through the DMS."""

    name = "vortex-dataman"
    streaming = False
    use_dms = True

    def plan(self, ctx: CommandContext, group_size: int) -> list[Any]:
        return plan_block_assignments(ctx, group_size)

    def plan_tasks(self, ctx: CommandContext) -> list[Any]:
        return plan_block_tasks(ctx)

    def item_sequence_for(self, ctx: CommandContext, assignment: Any):
        return [block_item(ctx.dataset, t, bid) for t, bid in assignment]

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "obl"

    def run(self, ctx: CommandContext, assignment: Any, worker_index: int):
        threshold = float(ctx.params.get("threshold", 0.0))
        velocity = ctx.params.get("velocity", "velocity")
        for t, bid in assignment:
            block = yield Load(block_item(ctx.dataset, t, bid))
            handle = ctx.handle(t, bid)

            def work(b: StructuredBlock = block):
                # A precomputed "lambda2" field (e.g. derived fields in
                # the shared-memory store, reused across a threshold
                # sweep) short-circuits the expensive eigenvalue pass.
                if b.has_field("lambda2"):
                    lam = b.field("lambda2")
                else:
                    lam = lambda2_field(b, velocity)
                scratch = StructuredBlock(
                    b.coords, {"lambda2": lam}, block_id=b.block_id,
                    time_index=b.time_index,
                )
                active = active_cell_indices(scratch, "lambda2", threshold)
                mesh = extract_block_isosurface(
                    scratch, "lambda2", threshold, cell_indices=active
                )
                return mesh, len(active) / max(b.n_cells, 1)

            mesh, fraction = yield Compute(
                ctx.costs.lambda2_block_cost(handle, 0.05), work
            )
            if not mesh.is_empty():
                yield Emit(mesh, ctx.costs.result_bytes(mesh.nbytes, handle))


class SimpleVortexCommand(VortexDataManCommand):
    """The no-DMS baseline."""

    name = "vortex-simple"
    use_dms = False

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "none"


class StreamedVortexCommand(Command):
    """Slab-wise streamed λ2 extraction."""

    name = "vortex-streamed"
    streaming = True
    use_dms = True

    def plan(self, ctx: CommandContext, group_size: int) -> list[Any]:
        return plan_block_assignments(ctx, group_size)

    def plan_tasks(self, ctx: CommandContext) -> list[Any]:
        return plan_block_tasks(ctx)

    def item_sequence_for(self, ctx: CommandContext, assignment: Any):
        return [block_item(ctx.dataset, t, bid) for t, bid in assignment]

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "obl"

    def run(self, ctx: CommandContext, assignment: Any, worker_index: int):
        threshold = float(ctx.params.get("threshold", 0.0))
        velocity = ctx.params.get("velocity", "velocity")
        batch_cells = int(ctx.params.get("batch_cells", 256))
        for t, bid in assignment:
            block = yield Load(block_item(ctx.dataset, t, bid))
            handle = ctx.handle(t, bid)
            per_cell = (
                ctx.costs.lambda2_per_cell
                * ctx.costs.streaming_compute_factor
                * handle.scale_factor
            )
            batches = iter_vortex_batches(
                block, threshold=threshold, velocity=velocity,
                batch_cells=batch_cells,
            )
            while True:
                # Pull the next batch (real work), then charge its cost
                # based on how many cells it actually covered.
                result = yield Compute(0.0, lambda it=batches: next(it, None))
                if result is None:
                    break
                mesh, cells_processed = result
                cost = cells_processed * per_cell
                if not mesh.is_empty():
                    # Triangle counts grow like area: 2/3 power of the
                    # modeled-to-actual cell ratio.
                    cost += (
                        ctx.costs.iso_triangulate_per_cell
                        * mesh.n_triangles
                        * handle.scale_factor ** (2.0 / 3.0)
                        * 0.1
                    )
                yield Compute(cost)
                if not mesh.is_empty():
                    yield Emit(mesh, ctx.costs.result_bytes(mesh.nbytes, handle))
