"""The three isosurface commands of the evaluation (§6.3, §7.1).

* ``SimpleIsoCommand``  — no data management: every block read hits the
  fileserver (the paper's SimpleIso baseline).
* ``IsoDataManCommand`` — DMS-enabled batch extraction with OBL system
  prefetching (IsoDataMan).
* ``ViewerIsoCommand``  — the view-dependent *streaming* version:
  blocks sorted front-to-back, per-block BSP traversal, triangle
  batches transmitted as soon as they are complete (ViewerIso).

Params (``session.run(..., params={...})``):

* ``isovalue`` (required), ``scalar`` (default ``"pressure"``),
* ``time_range`` (default: all steps),
* ``viewpoint`` (ViewerIso), ``max_triangles`` per streamed batch,
* ``prefetch`` override ('none' disables the system prefetcher).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..algorithms.isosurface import active_cell_indices, extract_block_isosurface
from ..algorithms.view_dep_iso import iter_view_dependent_batches
from ..dms.items import ItemName, block_item
from ..core.commands import (
    Command,
    CommandContext,
    Compute,
    Emit,
    Load,
    plan_block_assignments,
    plan_block_tasks,
    split_round_robin,
)

__all__ = ["SimpleIsoCommand", "IsoDataManCommand", "ViewerIsoCommand"]


class IsoDataManCommand(Command):
    """Batch isosurface extraction through the DMS."""

    name = "iso-dataman"
    streaming = False
    use_dms = True

    def plan(self, ctx: CommandContext, group_size: int) -> list[Any]:
        return plan_block_assignments(ctx, group_size)

    def plan_tasks(self, ctx: CommandContext) -> list[Any]:
        return plan_block_tasks(ctx)

    def item_sequence_for(self, ctx: CommandContext, assignment: Any):
        return [block_item(ctx.dataset, t, bid) for t, bid in assignment]

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "obl"

    def run(self, ctx: CommandContext, assignment: Any, worker_index: int):
        isovalue = float(ctx.params["isovalue"])
        scalar = ctx.params.get("scalar", "pressure")
        for t, bid in assignment:
            block = yield Load(block_item(ctx.dataset, t, bid))
            handle = ctx.handle(t, bid)
            active = active_cell_indices(block, scalar, isovalue)
            fraction = len(active) / max(block.n_cells, 1)
            mesh = yield Compute(
                ctx.costs.iso_block_cost(handle, fraction),
                lambda b=block, a=active: extract_block_isosurface(
                    b, scalar, isovalue, cell_indices=a
                ),
            )
            if not mesh.is_empty():
                yield Emit(mesh, ctx.costs.result_bytes(mesh.nbytes, handle))


class SimpleIsoCommand(IsoDataManCommand):
    """The no-DMS baseline: forced fileserver read for every block."""

    name = "iso-simple"
    use_dms = False

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "none"


class ViewerIsoCommand(Command):
    """View-dependent streamed isosurface extraction."""

    name = "iso-viewer"
    streaming = True
    use_dms = True

    def plan(self, ctx: CommandContext, group_size: int) -> list[Any]:
        viewpoint = np.asarray(ctx.params.get("viewpoint", (0.0, 0.0, 0.0)))
        work: list[tuple[int, int]] = []
        for t in ctx.time_indices:
            handles = ctx.handles_by_time[t - ctx.time_offset]
            # Step 1: sort this level's blocks front to back (§6.3).
            ordered = sorted(
                handles, key=lambda h: float(np.sum((h.center() - viewpoint) ** 2))
            )
            work.extend((t, h.block_id) for h in ordered)
        return split_round_robin(work, group_size)

    def plan_tasks(self, ctx: CommandContext) -> list[Any]:
        # Canonical task order is the front-to-back view order the
        # single-worker plan visits, one block per task.
        return [[pair] for pair in self.plan(ctx, 1)[0]]

    def item_sequence_for(self, ctx: CommandContext, assignment: Any):
        return [block_item(ctx.dataset, t, bid) for t, bid in assignment]

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        return "obl"

    def run(self, ctx: CommandContext, assignment: Any, worker_index: int):
        isovalue = float(ctx.params["isovalue"])
        scalar = ctx.params.get("scalar", "pressure")
        viewpoint = np.asarray(ctx.params.get("viewpoint", (0.0, 0.0, 0.0)), dtype=float)
        max_triangles = int(ctx.params.get("max_triangles", 2000))
        for t, bid in assignment:
            block = yield Load(block_item(ctx.dataset, t, bid))
            handle = ctx.handle(t, bid)
            active = active_cell_indices(block, scalar, isovalue)
            fraction = len(active) / max(block.n_cells, 1)
            # BSP construction + view-dependent traversal ("the tree
            # construction could be done offline [...] but the
            # computations should be as similar as possible in order to
            # evaluate the 'true cost' of streaming").
            fragments = yield Compute(
                handle.modeled_cells
                * (ctx.costs.bsp_per_cell + ctx.costs.iso_scan_per_cell),
                lambda b=block: list(
                    iter_view_dependent_batches(
                        b, scalar, isovalue, viewpoint, max_triangles=max_triangles
                    )
                ),
            )
            if not fragments:
                continue
            # Triangulation cost, charged per streamed batch.
            tri_total = ctx.costs.iso_triangulate_per_cell * handle.modeled_cells * fraction
            per_fragment = tri_total / len(fragments)
            for fragment in fragments:
                yield Compute(per_fragment)
                yield Emit(fragment, ctx.costs.result_bytes(fragment.nbytes, handle))
