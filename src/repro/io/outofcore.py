"""Out-of-core block iteration over on-disk datasets.

The paper's §4 opens with the memory-hierarchy problem: "The first
problem arises when the main memory does not suffice to hold all data
needed, a problem tackled by out-of-core methods."  Inside the
framework the DMS's capacity-bounded two-tier cache plays that role;
this module provides the equivalent for *direct* (framework-free)
library use: stream blocks from a :class:`~repro.io.DatasetStore` one
at a time with a hard bound on resident blocks, and run extraction
incrementally so peak memory stays at O(one block) instead of O(one
time level).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator

import numpy as np

from ..grids.block import StructuredBlock
from ..viz.mesh import TriangleMesh
from .dataset_io import DatasetStore

__all__ = ["iter_blocks", "BoundedBlockReader", "isosurface_out_of_core"]


def iter_blocks(
    store: DatasetStore, time_index: int, lazy: bool = True
) -> Iterator[StructuredBlock]:
    """Yield the blocks of one time level, one resident at a time.

    Blocks are lazy by default on this path: out-of-core exists to
    bound residency, and the eager ``<f4`` → float64 upcast used to
    double every block's resident bytes on read, fields the extraction
    never touches included.
    """
    for block_id in range(store.n_blocks):
        yield store.read_block(time_index, block_id, lazy=lazy)


class BoundedBlockReader:
    """Random-access reads with an LRU bound on resident blocks.

    The direct-API analogue of a data proxy's L1 cache: at most
    ``max_blocks`` blocks stay in memory; everything else is re-read
    from disk on demand.  Reads are lazy by default (zero-copy mmap
    views, per-field float64 upcast on access), so
    :attr:`resident_nbytes` reports what is truly held — the file-sized
    ``<f4`` payloads plus only the fields that were materialized.
    """

    def __init__(self, store: DatasetStore, max_blocks: int = 4, lazy: bool = True):
        if max_blocks < 1:
            raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
        self.store = store
        self.max_blocks = max_blocks
        self.lazy = lazy
        self._resident: OrderedDict[tuple[int, int], StructuredBlock] = OrderedDict()
        self.reads = 0
        self.hits = 0

    @property
    def resident_count(self) -> int:
        return len(self._resident)

    @property
    def resident_nbytes(self) -> int:
        """True bytes held right now (lazy fields at ``<f4`` size)."""
        return sum(b.resident_nbytes for b in self._resident.values())

    def get(self, time_index: int, block_id: int) -> StructuredBlock:
        key = (time_index, block_id)
        block = self._resident.get(key)
        if block is not None:
            self.hits += 1
            self._resident.move_to_end(key)
            return block
        block = self.store.read_block(time_index, block_id, lazy=self.lazy)
        self.reads += 1
        self._resident[key] = block
        while len(self._resident) > self.max_blocks:
            self._resident.popitem(last=False)
        return block

    def clear(self) -> None:
        self._resident.clear()


def isosurface_out_of_core(
    store: DatasetStore,
    time_index: int,
    scalar: str,
    isovalue: float,
    on_fragment: Callable[[TriangleMesh, int], None] | None = None,
) -> TriangleMesh:
    """Whole-level isosurface with only one block resident at a time.

    ``on_fragment(fragment, block_id)`` is invoked per block as its
    fragment becomes available — the out-of-core sibling of streaming.
    """
    from ..algorithms.isosurface import extract_block_isosurface

    fragments = []
    for block in iter_blocks(store, time_index):
        fragment = extract_block_isosurface(block, scalar, isovalue)
        if on_fragment is not None:
            on_fragment(fragment, block.block_id)
        if not fragment.is_empty():
            fragments.append(fragment)
        del block
    return TriangleMesh.merge(fragments)
