"""Binary block format and on-disk dataset stores."""

from .format import (
    FormatError,
    block_from_buffer,
    block_from_bytes,
    block_nbytes,
    block_to_bytes,
    read_block,
    write_block,
)
from .dataset_io import DatasetStore, block_filename, write_dataset
from .outofcore import BoundedBlockReader, isosurface_out_of_core, iter_blocks
from .geometry_io import (
    geometry_from_bytes,
    geometry_to_bytes,
    load_geometry,
    read_geometry,
    save_geometry,
    write_geometry,
)

__all__ = [
    "FormatError",
    "block_from_buffer",
    "block_from_bytes",
    "block_nbytes",
    "block_to_bytes",
    "read_block",
    "write_block",
    "DatasetStore",
    "block_filename",
    "write_dataset",
    "BoundedBlockReader",
    "isosurface_out_of_core",
    "iter_blocks",
    "geometry_from_bytes",
    "geometry_to_bytes",
    "load_geometry",
    "read_geometry",
    "save_geometry",
    "write_geometry",
]
