"""Binary serialization of extracted geometry.

Results that took hundreds of simulated seconds to extract are worth
keeping: this module writes :class:`~repro.viz.mesh.TriangleMesh` and
:class:`~repro.viz.polyline.PolylineSet` objects to a compact binary
container (float32 payloads — the wire format the cost model's
``result_wire_factor`` assumes).

Layout::

    magic    4s   b"VIRG"
    version  u32  1
    kind     u32  1 = TriangleMesh, 2 = PolylineSet
    n_vertices u32, n_attrs u32, [n_offsets u32 if polyline]
    -- per attribute: name_len u32, name utf-8 --
    vertices float32[n_vertices * 3]
    [offsets u64[n_offsets] if polyline]
    each attribute float32[n_vertices]
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO

import numpy as np

from ..viz.mesh import TriangleMesh
from ..viz.polyline import PolylineSet
from .format import FormatError

__all__ = [
    "write_geometry",
    "read_geometry",
    "geometry_to_bytes",
    "geometry_from_bytes",
    "save_geometry",
    "load_geometry",
]

_MAGIC = b"VIRG"
_VERSION = 1
_KIND_MESH = 1
_KIND_POLYLINES = 2
_HEADER = struct.Struct("<4sIII")


def write_geometry(fh: BinaryIO, geometry: TriangleMesh | PolylineSet) -> int:
    """Serialize a geometry object; returns bytes written."""
    if isinstance(geometry, TriangleMesh):
        kind = _KIND_MESH
    elif isinstance(geometry, PolylineSet):
        kind = _KIND_POLYLINES
    else:
        raise TypeError(f"cannot serialize {type(geometry).__name__}")
    names = sorted(geometry.attributes)
    written = fh.write(_HEADER.pack(_MAGIC, _VERSION, kind, geometry.n_vertices))
    written += fh.write(struct.pack("<I", len(names)))
    if kind == _KIND_POLYLINES:
        written += fh.write(struct.pack("<I", len(geometry.offsets)))
    for name in names:
        raw = name.encode("utf-8")
        written += fh.write(struct.pack("<I", len(raw)))
        written += fh.write(raw)
    written += fh.write(
        np.ascontiguousarray(geometry.vertices, dtype="<f4").tobytes()
    )
    if kind == _KIND_POLYLINES:
        written += fh.write(
            np.ascontiguousarray(geometry.offsets, dtype="<u8").tobytes()
        )
    for name in names:
        written += fh.write(
            np.ascontiguousarray(geometry.attributes[name], dtype="<f4").tobytes()
        )
    return written


def _read_exact(fh: BinaryIO, n: int) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise FormatError(f"truncated geometry file: wanted {n} bytes, got {len(data)}")
    return data


def read_geometry(fh: BinaryIO) -> TriangleMesh | PolylineSet:
    """Deserialize one geometry object."""
    magic, version, kind, n_vertices = _HEADER.unpack(_read_exact(fh, _HEADER.size))
    if magic != _MAGIC:
        raise FormatError(f"bad magic {magic!r}, not a geometry file")
    if version != _VERSION:
        raise FormatError(f"unsupported geometry version {version}")
    if kind not in (_KIND_MESH, _KIND_POLYLINES):
        raise FormatError(f"unknown geometry kind {kind}")
    (n_attrs,) = struct.unpack("<I", _read_exact(fh, 4))
    n_offsets = 0
    if kind == _KIND_POLYLINES:
        (n_offsets,) = struct.unpack("<I", _read_exact(fh, 4))
    names = []
    for _ in range(n_attrs):
        (name_len,) = struct.unpack("<I", _read_exact(fh, 4))
        names.append(_read_exact(fh, name_len).decode("utf-8"))
    vertices = np.frombuffer(
        _read_exact(fh, n_vertices * 3 * 4), dtype="<f4"
    ).astype(np.float64).reshape(n_vertices, 3)
    offsets = None
    if kind == _KIND_POLYLINES:
        offsets = np.frombuffer(
            _read_exact(fh, n_offsets * 8), dtype="<u8"
        ).astype(np.int64)
    attributes = {}
    for name in names:
        attributes[name] = np.frombuffer(
            _read_exact(fh, n_vertices * 4), dtype="<f4"
        ).astype(np.float64)
    if kind == _KIND_MESH:
        return TriangleMesh(vertices, attributes)
    return PolylineSet(vertices, offsets.tolist(), attributes)


def geometry_to_bytes(geometry) -> bytes:
    buf = io.BytesIO()
    write_geometry(buf, geometry)
    return buf.getvalue()


def geometry_from_bytes(data: bytes):
    return read_geometry(io.BytesIO(data))


def save_geometry(path: str | Path, geometry) -> int:
    with open(path, "wb") as fh:
        return write_geometry(fh, geometry)


def load_geometry(path: str | Path):
    with open(path, "rb") as fh:
        return read_geometry(fh)
