"""Binary block-file format.

A PLOT3D-like single-block container: a fixed header, a field directory
and raw little-endian arrays.  Coordinates are stored as float64 (grid
fidelity matters for Newton point location), fields as float32 (the
usual precision of exported CFD solutions, and what the paper-scale
size accounting assumes).

Layout::

    magic    4s   b"VIRB"
    version  u32  1
    block_id u32
    time     u32
    ni nj nk u32 x3
    nfields  u32
    -- per field --
    name_len u32, name utf-8, ncomp u32
    -- payloads --
    coords float64[ni*nj*nk*3]
    each field float32[ni*nj*nk*ncomp]
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO

import numpy as np

from ..grids.block import StructuredBlock

__all__ = ["FormatError", "write_block", "read_block", "block_to_bytes", "block_from_bytes"]

MAGIC = b"VIRB"
VERSION = 1
_HEADER = struct.Struct("<4sIIIIIII")


class FormatError(ValueError):
    """Raised for malformed or truncated block files."""


def write_block(fh: BinaryIO, block: StructuredBlock) -> int:
    """Serialize ``block``; returns the number of bytes written."""
    ni, nj, nk = block.shape
    names = sorted(block.fields)
    written = 0
    written += fh.write(
        _HEADER.pack(
            MAGIC, VERSION, block.block_id, block.time_index, ni, nj, nk, len(names)
        )
    )
    for name in names:
        raw = name.encode("utf-8")
        data = block.fields[name]
        ncomp = 1 if data.ndim == 3 else data.shape[-1]
        written += fh.write(struct.pack("<I", len(raw)))
        written += fh.write(raw)
        written += fh.write(struct.pack("<I", ncomp))
    written += fh.write(np.ascontiguousarray(block.coords, dtype="<f8").tobytes())
    for name in names:
        written += fh.write(
            np.ascontiguousarray(block.fields[name], dtype="<f4").tobytes()
        )
    return written


def _read_exact(fh: BinaryIO, n: int) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise FormatError(f"truncated block file: wanted {n} bytes, got {len(data)}")
    return data


def read_block(fh: BinaryIO) -> StructuredBlock:
    """Deserialize one block from a binary stream."""
    magic, version, block_id, time_index, ni, nj, nk, nfields = _HEADER.unpack(
        _read_exact(fh, _HEADER.size)
    )
    if magic != MAGIC:
        raise FormatError(f"bad magic {magic!r}, not a block file")
    if version != VERSION:
        raise FormatError(f"unsupported version {version}")
    specs: list[tuple[str, int]] = []
    for _ in range(nfields):
        (name_len,) = struct.unpack("<I", _read_exact(fh, 4))
        name = _read_exact(fh, name_len).decode("utf-8")
        (ncomp,) = struct.unpack("<I", _read_exact(fh, 4))
        if ncomp not in (1, 3):
            raise FormatError(f"field {name!r} has unsupported ncomp {ncomp}")
        specs.append((name, ncomp))
    npts = ni * nj * nk
    coords = np.frombuffer(_read_exact(fh, npts * 3 * 8), dtype="<f8").reshape(
        ni, nj, nk, 3
    )
    fields = {}
    for name, ncomp in specs:
        flat = np.frombuffer(_read_exact(fh, npts * ncomp * 4), dtype="<f4")
        shape = (ni, nj, nk) if ncomp == 1 else (ni, nj, nk, 3)
        fields[name] = flat.astype(np.float64).reshape(shape)
    return StructuredBlock(
        coords.astype(np.float64), fields, block_id=block_id, time_index=time_index
    )


def block_to_bytes(block: StructuredBlock) -> bytes:
    buf = io.BytesIO()
    write_block(buf, block)
    return buf.getvalue()


def block_from_bytes(data: bytes) -> StructuredBlock:
    return read_block(io.BytesIO(data))
