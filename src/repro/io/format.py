"""Binary block-file format.

A PLOT3D-like single-block container: a fixed header, a field directory
and raw little-endian arrays.  Coordinates are stored as float64 (grid
fidelity matters for Newton point location), fields as float32 (the
usual precision of exported CFD solutions, and what the paper-scale
size accounting assumes).

Layout::

    magic    4s   b"VIRB"
    version  u32  1
    block_id u32
    time     u32
    ni nj nk u32 x3
    nfields  u32
    -- per field --
    name_len u32, name utf-8, ncomp u32
    -- payloads --
    coords float64[ni*nj*nk*3]
    each field float32[ni*nj*nk*ncomp]

Two deserialization modes exist everywhere bytes come in:

* ``lazy=False`` (default) — the historical behavior: every payload is
  copied out of the buffer and fields are upcast to float64 eagerly.
  Arrays are writable and independent of the source buffer.
* ``lazy=True`` — zero-copy: coordinates and fields are *read-only*
  ``np.frombuffer`` views straight into the source buffer (bytes, mmap
  or shared memory) and fields stay ``<f4`` until first accessed
  through the returned :class:`~repro.grids.block.LazyStructuredBlock`,
  which upcasts per field on demand.  Resident bytes match the file,
  not double it.
"""

from __future__ import annotations

import struct
from typing import BinaryIO

import numpy as np

from ..grids.block import LazyStructuredBlock, StructuredBlock

__all__ = [
    "FormatError",
    "write_block",
    "read_block",
    "block_to_bytes",
    "block_from_bytes",
    "block_from_buffer",
    "block_nbytes",
]

MAGIC = b"VIRB"
VERSION = 1
_HEADER = struct.Struct("<4sIIIIIII")
_U32 = struct.Struct("<I")


def _field_specs(block: StructuredBlock) -> list[tuple[str, bytes, int]]:
    specs = []
    for name in sorted(block.fields):
        data = block.fields[name]
        ncomp = 1 if data.ndim == 3 else data.shape[-1]
        specs.append((name, name.encode("utf-8"), ncomp))
    return specs


class FormatError(ValueError):
    """Raised for malformed or truncated block files."""


def block_nbytes(block: StructuredBlock) -> int:
    """Exact serialized size of ``block`` without serializing it."""
    total = _HEADER.size
    npts = block.n_points
    for _name, raw, ncomp in _field_specs(block):
        total += 8 + len(raw)  # name_len + name + ncomp
    total += npts * 3 * 8
    for _name, _raw, ncomp in _field_specs(block):
        total += npts * ncomp * 4
    return total


def write_block(fh: BinaryIO, block: StructuredBlock) -> int:
    """Serialize ``block``; returns the number of bytes written."""
    ni, nj, nk = block.shape
    specs = _field_specs(block)
    written = 0
    written += fh.write(
        _HEADER.pack(
            MAGIC, VERSION, block.block_id, block.time_index, ni, nj, nk, len(specs)
        )
    )
    for name, raw, ncomp in specs:
        written += fh.write(_U32.pack(len(raw)))
        written += fh.write(raw)
        written += fh.write(_U32.pack(ncomp))
    written += fh.write(np.ascontiguousarray(block.coords, dtype="<f8").tobytes())
    for name, _raw, _ncomp in specs:
        written += fh.write(
            np.ascontiguousarray(block.fields[name], dtype="<f4").tobytes()
        )
    return written


def block_to_bytes(block: StructuredBlock) -> bytes:
    """Serialize into one flat buffer (no ``BytesIO`` round trip).

    The buffer is assembled once at its exact final size and the array
    payloads are written in place through a memoryview — contiguous
    float64 coordinates and float32 fields are copied exactly once.
    """
    ni, nj, nk = block.shape
    specs = _field_specs(block)
    out = bytearray(block_nbytes(block))
    view = memoryview(out)
    _HEADER.pack_into(
        out, 0, MAGIC, VERSION, block.block_id, block.time_index, ni, nj, nk, len(specs)
    )
    offset = _HEADER.size
    for name, raw, ncomp in specs:
        _U32.pack_into(out, offset, len(raw))
        offset += 4
        out[offset : offset + len(raw)] = raw
        offset += len(raw)
        _U32.pack_into(out, offset, ncomp)
        offset += 4
    npts = ni * nj * nk
    coords_bytes = npts * 3 * 8
    target = np.frombuffer(view[offset : offset + coords_bytes], dtype="<f8")
    np.copyto(target.reshape(ni, nj, nk, 3), block.coords, casting="same_kind")
    offset += coords_bytes
    for name, _raw, ncomp in specs:
        data = block.fields[name]
        nbytes = npts * ncomp * 4
        target = np.frombuffer(view[offset : offset + nbytes], dtype="<f4")
        np.copyto(target.reshape(data.shape), data, casting="same_kind")
        offset += nbytes
    view.release()
    return bytes(out)


def _parse_directory(buf, offset: int, nfields: int, total: int):
    specs: list[tuple[str, int]] = []
    for _ in range(nfields):
        if offset + 4 > total:
            raise FormatError("truncated block file: directory cut short")
        (name_len,) = _U32.unpack_from(buf, offset)
        offset += 4
        if offset + name_len + 4 > total:
            raise FormatError("truncated block file: directory cut short")
        name = bytes(buf[offset : offset + name_len]).decode("utf-8")
        offset += name_len
        (ncomp,) = _U32.unpack_from(buf, offset)
        offset += 4
        if ncomp not in (1, 3):
            raise FormatError(f"field {name!r} has unsupported ncomp {ncomp}")
        specs.append((name, ncomp))
    return specs, offset


def block_from_buffer(buf, lazy: bool = False) -> StructuredBlock:
    """Deserialize one block from any buffer (bytes, mmap, shm).

    With ``lazy=True`` every array is a zero-copy ``np.frombuffer``
    view into ``buf`` — read-only, ``<f4`` fields upcast on access.
    Trailing bytes beyond the block are ignored, so page-aligned
    buffers (shared memory rounds sizes up) parse cleanly.
    """
    total = len(buf)
    if total < _HEADER.size:
        raise FormatError(
            f"truncated block file: wanted {_HEADER.size} bytes, got {total}"
        )
    magic, version, block_id, time_index, ni, nj, nk, nfields = _HEADER.unpack_from(
        buf, 0
    )
    if magic != MAGIC:
        raise FormatError(f"bad magic {magic!r}, not a block file")
    if version != VERSION:
        raise FormatError(f"unsupported version {version}")
    specs, offset = _parse_directory(buf, _HEADER.size, nfields, total)
    npts = ni * nj * nk
    coords_bytes = npts * 3 * 8
    if offset + coords_bytes > total:
        raise FormatError(
            f"truncated block file: wanted {coords_bytes} coordinate bytes"
        )
    coords = np.frombuffer(buf, dtype="<f8", count=npts * 3, offset=offset).reshape(
        ni, nj, nk, 3
    )
    offset += coords_bytes
    raw_fields: dict[str, np.ndarray] = {}
    for name, ncomp in specs:
        nbytes = npts * ncomp * 4
        if offset + nbytes > total:
            raise FormatError(
                f"truncated block file: wanted {nbytes} bytes for field {name!r}"
            )
        flat = np.frombuffer(buf, dtype="<f4", count=npts * ncomp, offset=offset)
        shape = (ni, nj, nk) if ncomp == 1 else (ni, nj, nk, 3)
        raw_fields[name] = flat.reshape(shape)
        offset += nbytes
    if lazy:
        return LazyStructuredBlock(
            coords, raw_fields, block_id=block_id, time_index=time_index
        )
    return StructuredBlock(
        coords.astype(np.float64),
        {name: raw.astype(np.float64) for name, raw in raw_fields.items()},
        block_id=block_id,
        time_index=time_index,
    )


def _read_exact(fh: BinaryIO, n: int) -> bytes:
    data = fh.read(n)
    if len(data) != n:
        raise FormatError(f"truncated block file: wanted {n} bytes, got {len(data)}")
    return data


def read_block(fh: BinaryIO, lazy: bool = False) -> StructuredBlock:
    """Deserialize one block from a binary stream.

    ``lazy=True`` defers the float64 upcast of each field until first
    access (the views alias the read buffer, which is immutable bytes —
    see :func:`block_from_buffer` for the semantics).
    """
    header = _read_exact(fh, _HEADER.size)
    magic, version, block_id, time_index, ni, nj, nk, nfields = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FormatError(f"bad magic {magic!r}, not a block file")
    if version != VERSION:
        raise FormatError(f"unsupported version {version}")
    specs: list[tuple[str, int]] = []
    for _ in range(nfields):
        (name_len,) = _U32.unpack(_read_exact(fh, 4))
        name = _read_exact(fh, name_len).decode("utf-8")
        (ncomp,) = _U32.unpack(_read_exact(fh, 4))
        if ncomp not in (1, 3):
            raise FormatError(f"field {name!r} has unsupported ncomp {ncomp}")
        specs.append((name, ncomp))
    npts = ni * nj * nk
    coords = np.frombuffer(_read_exact(fh, npts * 3 * 8), dtype="<f8").reshape(
        ni, nj, nk, 3
    )
    raw_fields: dict[str, np.ndarray] = {}
    for name, ncomp in specs:
        flat = np.frombuffer(_read_exact(fh, npts * ncomp * 4), dtype="<f4")
        shape = (ni, nj, nk) if ncomp == 1 else (ni, nj, nk, 3)
        raw_fields[name] = flat.reshape(shape)
    if lazy:
        return LazyStructuredBlock(
            coords, raw_fields, block_id=block_id, time_index=time_index
        )
    return StructuredBlock(
        coords.astype(np.float64),
        {name: raw.astype(np.float64) for name, raw in raw_fields.items()},
        block_id=block_id,
        time_index=time_index,
    )


def block_from_bytes(data: bytes, lazy: bool = False) -> StructuredBlock:
    return block_from_buffer(data, lazy=lazy)
