"""On-disk multi-block dataset store.

Directory layout (one file per block per time level, mirroring the
paper's observation that "the source of a data item can be a single
file, a part of a file, or even a combination of files")::

    <root>/
      meta.json
      t0000_b0000.blk
      t0000_b0001.blk
      ...

The store is the ground truth the DMS loads from; its ``meta.json``
carries both actual and modeled shapes so handles can be reconstructed
without opening block files.
"""

from __future__ import annotations

import json
import mmap
from pathlib import Path
from typing import Sequence

import numpy as np

from ..grids.block import BlockHandle, StructuredBlock
from ..grids.multiblock import MultiBlockDataset, TimeSeries
from .format import FormatError, block_from_buffer, write_block

__all__ = ["DatasetStore", "write_dataset", "block_filename"]


def block_filename(time_index: int, block_id: int) -> str:
    return f"t{time_index:04d}_b{block_id:04d}.blk"


def write_dataset(
    root: str | Path,
    levels: Sequence[MultiBlockDataset],
    name: str | None = None,
    modeled_shapes: Sequence[tuple[int, int, int]] | None = None,
    times: Sequence[float] | None = None,
) -> "DatasetStore":
    """Write time levels to ``root`` and return the opened store."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    if not levels:
        raise ValueError("need at least one time level")
    n_blocks = len(levels[0])
    for t, level in enumerate(levels):
        if len(level) != n_blocks:
            raise ValueError(
                f"time level {t} has {len(level)} blocks, expected {n_blocks}"
            )
        for block in level:
            with open(root / block_filename(t, block.block_id), "wb") as fh:
                write_block(fh, block)
    first = levels[0]
    handles = first.handles(modeled_shapes=modeled_shapes)
    meta = {
        "name": name or first.name,
        "n_timesteps": len(levels),
        "n_blocks": n_blocks,
        "times": list(times) if times is not None else [lvl.time for lvl in levels],
        "fields": first.field_names(),
        "blocks": [
            {
                "block_id": h.block_id,
                "shape": list(h.shape),
                "modeled_shape": list(h.modeled_shape),
                "bounds_min": list(h.bounds_min),
                "bounds_max": list(h.bounds_max),
            }
            for h in handles
        ],
    }
    (root / "meta.json").write_text(json.dumps(meta, indent=2))
    return DatasetStore(root)


class DatasetStore:
    """Read access to an on-disk multi-block time series."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        meta_path = self.root / "meta.json"
        if not meta_path.exists():
            raise FileNotFoundError(f"no dataset at {self.root} (missing meta.json)")
        self.meta = json.loads(meta_path.read_text())
        for key in ("name", "n_timesteps", "n_blocks", "blocks"):
            if key not in self.meta:
                raise FormatError(f"meta.json missing key {key!r}")

    @property
    def name(self) -> str:
        return self.meta["name"]

    @property
    def n_timesteps(self) -> int:
        return self.meta["n_timesteps"]

    @property
    def n_blocks(self) -> int:
        return self.meta["n_blocks"]

    @property
    def times(self) -> list[float]:
        return list(self.meta["times"])

    def block_path(self, time_index: int, block_id: int) -> Path:
        self._check_indices(time_index, block_id)
        return self.root / block_filename(time_index, block_id)

    def _check_indices(self, time_index: int, block_id: int) -> None:
        if not 0 <= time_index < self.n_timesteps:
            raise IndexError(
                f"time index {time_index} out of range 0..{self.n_timesteps - 1}"
            )
        if not 0 <= block_id < self.n_blocks:
            raise IndexError(f"block id {block_id} out of range 0..{self.n_blocks - 1}")

    def block_buffer(self, time_index: int, block_id: int) -> memoryview:
        """The raw serialized block as an mmap-backed memoryview.

        This is the fast path that feeds shared memory and the
        zero-copy readers: the file's pages are mapped, not copied
        through a ``BytesIO``.  The mapping stays alive as long as the
        returned memoryview (or any NumPy view into it) does.
        """
        path = self.block_path(time_index, block_id)
        with open(path, "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        return memoryview(mapped)

    def read_block(
        self, time_index: int, block_id: int, lazy: bool = False
    ) -> StructuredBlock:
        """One block, deserialized via mmap (never a stream copy).

        ``lazy=True`` returns a zero-copy
        :class:`~repro.grids.block.LazyStructuredBlock` whose arrays
        are read-only views over the mapped file and whose ``<f4``
        fields upcast to float64 only on first access.  The default
        materializes everything eagerly (writable arrays, no aliasing),
        matching the historical behavior.
        """
        return block_from_buffer(self.block_buffer(time_index, block_id), lazy=lazy)

    def read_level(self, time_index: int, lazy: bool = False) -> MultiBlockDataset:
        blocks = [
            self.read_block(time_index, b, lazy=lazy) for b in range(self.n_blocks)
        ]
        time = self.times[time_index] if self.times else float(time_index)
        return MultiBlockDataset(blocks, name=self.name, time=time)

    def timeseries(self) -> TimeSeries:
        return TimeSeries(self.times, self.read_level, name=self.name)

    def handles(self, time_index: int = 0) -> list[BlockHandle]:
        self._check_indices(time_index, 0)
        return [
            BlockHandle(
                dataset=self.name,
                block_id=rec["block_id"],
                time_index=time_index,
                shape=tuple(rec["shape"]),
                modeled_shape=tuple(rec["modeled_shape"]),
                bounds_min=tuple(rec["bounds_min"]),
                bounds_max=tuple(rec["bounds_max"]),
            )
            for rec in self.meta["blocks"]
        ]

    def file_bytes(self, time_index: int, block_id: int) -> int:
        """Actual on-disk size of one block file."""
        return self.block_path(time_index, block_id).stat().st_size
