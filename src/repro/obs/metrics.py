"""Metrics: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per session unifies what used to be
scattered ad-hoc counters: the per-node :class:`~repro.dms.stats.DMSStatistics`
publish into it (labelled by node), the session observes command
latency and packet inter-arrival histograms, and the server publishes
strategy decisions — so ``python -m repro stats`` and benchmark
assertions read one coherent view.

Metric identity is ``(name, labels)``; the registry renders a
Prometheus-style text exposition (`render_prometheus`) and a plain
nested-dict snapshot (`snapshot`) for attaching to results.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "render_prometheus",
]

#: command-latency / runtime buckets in simulated seconds (paper's
#: evaluated range spans ~10 ms streaming latencies to ~100 s runtimes).
LATENCY_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0,
)


def _label_key(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class Metric:
    """Base: one (name, labels) series."""

    type_name = "untyped"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels

    def value_dict(self) -> dict[str, Any]:
        raise NotImplementedError


class Counter(Metric):
    """Monotonic count.

    ``set`` exists for *sync-publishing* cumulative sources (such as
    :class:`DMSStatistics`, which keeps its own totals); it refuses to
    move backwards so the series stays monotone.
    """

    type_name = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        super().__init__(name, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def set(self, value: float) -> None:
        if value < self.value:
            raise ValueError(
                f"counter {self.name} cannot decrease ({self.value} -> {value})"
            )
        self.value = value

    def value_dict(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge(Metric):
    """A value that can go up and down (hit rate, reliability, ...)."""

    type_name = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        super().__init__(name, labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def value_dict(self) -> dict[str, Any]:
        return {"value": self.value}


class Histogram(Metric):
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the rest.  Counts stored per bucket are *non*-cumulative internally
    and accumulated at exposition time.
    """

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Iterable[float],
        labels: tuple[tuple[str, str], ...] = (),
    ):
        super().__init__(name, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = overflow (+Inf)
        self.total = 0.0
        self.n = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.total += value
        self.n += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation within the covering bucket, matching
        Prometheus's ``histogram_quantile``: the first finite bucket
        interpolates from 0 (all recorded values are durations), and a
        quantile landing in the implicit ``+Inf`` overflow bucket is
        clamped to the highest finite bound — the histogram cannot say
        more than "beyond the last edge".  Returns ``nan`` when no
        observations have been recorded.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.n == 0:
            return math.nan
        rank = q * self.n
        running = 0
        for i, bound in enumerate(self.bounds):
            prev_running = running
            running += self.counts[i]
            if running >= rank:
                lower = self.bounds[i - 1] if i > 0 else min(0.0, bound)
                in_bucket = self.counts[i]
                if in_bucket == 0:  # rank == running == prev boundary
                    return lower
                frac = (rank - prev_running) / in_bucket
                return lower + (bound - lower) * frac
        # Overflow (+Inf) bucket: clamp to the highest finite bound.
        return self.bounds[-1]

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at +Inf."""
        out = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    def value_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.n,
        }


class MetricsRegistry:
    """Get-or-create home for all metric series."""

    def __init__(self):
        self._metrics: dict[tuple[str, tuple], Metric] = {}
        self._types: dict[str, str] = {}
        self._help: dict[str, str] = {}

    # ----------------------------------------------------------- create
    def _get_or_create(
        self,
        cls,
        name: str,
        labels: Mapping[str, str] | None,
        help: str,
        **kwargs: Any,
    ):
        type_name = cls.type_name
        existing_type = self._types.get(name)
        if existing_type is not None and existing_type != type_name:
            raise TypeError(
                f"metric {name!r} already registered as {existing_type}, "
                f"not {type_name}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels=key[1], **kwargs)
            self._metrics[key] = metric
            self._types[name] = type_name
            if help:
                self._help[name] = help
        return metric

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None, help: str = ""
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(
        self, name: str, labels: Mapping[str, str] | None = None, help: str = ""
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = LATENCY_BUCKETS,
        labels: Mapping[str, str] | None = None,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help, buckets=buckets)

    # ------------------------------------------------------------ query
    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted({name for name, _ in self._metrics})

    def series(self, name: str) -> list[Metric]:
        return [m for (n, _), m in sorted(self._metrics.items()) if n == name]

    def snapshot(self) -> dict[str, Any]:
        """Nested plain-data view: name -> [{labels, type, ...values}]."""
        out: dict[str, Any] = {}
        for (name, key), metric in sorted(self._metrics.items()):
            entry = {"labels": dict(key), "type": metric.type_name}
            entry.update(metric.value_dict())
            out.setdefault(name, []).append(entry)
        return out

    # -------------------------------------------------------- rendering
    def render_prometheus(self) -> str:
        return render_prometheus(self)

    def format_table(self, width: int = 40) -> str:
        """Human-readable table for ``python -m repro stats``."""
        lines: list[str] = []
        for name in self.names():
            series = self.series(name)
            kind = series[0].type_name
            if kind == "histogram":
                for metric in series:
                    label = _format_labels(metric.labels)
                    lines.append(f"{name}{label}  (histogram, n={metric.n}, "
                                 f"mean={metric.mean:.4g})")
                    peak = max(metric.counts) if any(metric.counts) else 1
                    for bound, count in zip(
                        [*metric.bounds, math.inf], metric.counts
                    ):
                        if count == 0:
                            continue
                        bar = "#" * max(1, round(width * count / peak))
                        edge = "+Inf" if bound == math.inf else f"{bound:g}"
                        lines.append(f"  <= {edge:>8s}  {count:6d}  {bar}")
            else:
                for metric in series:
                    label = _format_labels(metric.labels)
                    value = metric.value
                    shown = f"{value:.4g}" if isinstance(value, float) else str(value)
                    lines.append(f"{name}{label}  {shown}")
        return "\n".join(lines)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for name in registry.names():
        series = registry.series(name)
        help_text = registry._help.get(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {series[0].type_name}")
        for metric in series:
            label = _format_labels(metric.labels)
            if isinstance(metric, Histogram):
                for bound, cum in metric.cumulative():
                    le = "+Inf" if bound == math.inf else f"{bound:g}"
                    extra = (("," if metric.labels else "") + f'le="{le}"')
                    base = _format_labels(metric.labels)
                    if base:
                        bucket_labels = base[:-1] + extra + "}"
                    else:
                        bucket_labels = "{" + f'le="{le}"' + "}"
                    lines.append(f"{name}_bucket{bucket_labels} {cum}")
                lines.append(f"{name}_sum{label} {metric.total:g}")
                lines.append(f"{name}_count{label} {metric.n}")
            else:
                lines.append(f"{name}{label} {metric.value:g}")
    return "\n".join(lines) + "\n"
