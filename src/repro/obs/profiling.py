"""Cross-process sampling profiler: collapsed stacks, one flamegraph.

``python -m repro profile`` (PR 1) wraps a run in ``cProfile`` — fine
in-process, blind the moment :class:`~repro.parallel.ProcessWorkerPool`
fans shares out to worker *processes*.  This module closes that gap
with a sampling profiler cheap enough to run inside every worker:

* :class:`StackSampler` — a daemon thread that snapshots a target
  thread's Python stack every ``interval`` seconds via
  ``sys._current_frames`` and folds it into collapsed-stack form
  (``mod.func;mod.func;... count`` — Brendan Gregg's ``flamegraph.pl``
  / speedscope input format);
* :func:`merge_folded` — aggregates the per-share folded dicts the
  pool ships back with each :class:`~repro.parallel.pool.ShareResult`
  into one profile spanning every worker process;
* :func:`write_folded` — emits the flamegraph-ready file.

Sampling is cooperative with the GIL: the sampler wakes, grabs the
frame list, walks ``f_back`` — a few microseconds per sample at the
default 5 ms interval, so shares are not meaningfully perturbed.
"""

from __future__ import annotations

import sys
import threading
from typing import Iterable, Mapping, TextIO

__all__ = [
    "DEFAULT_INTERVAL",
    "StackSampler",
    "fold_stack",
    "merge_folded",
    "render_folded",
    "write_folded",
    "top_functions",
]

DEFAULT_INTERVAL = 0.005  #: seconds between samples (200 Hz)


def fold_stack(frame) -> str:
    """Collapse one frame chain into ``root;...;leaf`` form."""
    parts: list[str] = []
    while frame is not None:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class StackSampler:
    """Periodically sample one thread's stack into folded counts.

    Usable as a context manager::

        with StackSampler() as sampler:
            run_share()
        folded = sampler.folded

    The target defaults to the thread that *created* the sampler (in a
    pool worker that is the main thread running the share).
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        target_thread_id: int | None = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = interval
        self.target_thread_id = (
            target_thread_id
            if target_thread_id is not None
            else threading.get_ident()
        )
        self.folded: dict[str, int] = {}
        self.n_samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------ control
    def start(self) -> "StackSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> dict[str, int]:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join()
        return self.folded

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------ worker
    def sample_once(self) -> None:
        frame = sys._current_frames().get(self.target_thread_id)
        if frame is None:
            return
        stack = fold_stack(frame)
        self.folded[stack] = self.folded.get(stack, 0) + 1
        self.n_samples += 1

    def _run(self) -> None:
        wait = self._stop.wait
        while not wait(self.interval):
            self.sample_once()


# ------------------------------------------------------------ aggregation
def merge_folded(parts: Iterable[Mapping[str, int] | None]) -> dict[str, int]:
    """Sum folded-stack counts across shares / worker processes."""
    out: dict[str, int] = {}
    for part in parts:
        if not part:
            continue
        for stack, count in part.items():
            out[stack] = out.get(stack, 0) + count
    return out


def render_folded(folded: Mapping[str, int]) -> str:
    """The collapsed-stack text ``flamegraph.pl`` / speedscope read."""
    lines = [f"{stack} {count}" for stack, count in sorted(folded.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def write_folded(path_or_file: "str | TextIO", folded: Mapping[str, int]) -> int:
    """Write the folded profile; returns the number of stacks written."""
    text = render_folded(folded)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as fh:
            fh.write(text)
    else:
        path_or_file.write(text)
    return len(folded)


def top_functions(
    folded: Mapping[str, int], limit: int = 15
) -> list[tuple[str, int]]:
    """Leaf-function self-sample counts, heaviest first (quick console view)."""
    self_counts: dict[str, int] = {}
    for stack, count in folded.items():
        leaf = stack.rsplit(";", 1)[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + count
    ranked = sorted(self_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:limit]
