"""Unified observability layer: spans, metrics, and trace export.

The measurement substrate for every performance claim in this repo:

* :mod:`repro.obs.spans` — hierarchical timed intervals over the
  simulated cluster (session -> command -> worker -> load/compute/
  merge/stream-packet, plus the DMS's lookup/strategy-load/prefetch);
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket histograms into which the DMS statistics publish;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  Perfetto / ``about:tracing``), JSONL event logs, and a
  Prometheus-style text exposition.

``ViracochaSession`` wires all three up by default and attaches the
populated tracer and a metrics snapshot to every ``CommandResult``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    render_prometheus,
)
from .spans import NULL_SPAN, Span, SpanTracer
from .export import (
    to_chrome_trace,
    to_jsonl_records,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Span",
    "SpanTracer",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "render_prometheus",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl_records",
    "write_jsonl",
]
