"""Unified observability layer: spans, metrics, analysis, and export.

The measurement substrate for every performance claim in this repo:

* :mod:`repro.obs.spans` — hierarchical timed intervals over the
  simulated cluster (session -> command -> worker -> load/compute/
  merge/stream-packet, plus the DMS's lookup/strategy-load/prefetch);
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket histograms into which the DMS statistics publish;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  Perfetto / ``about:tracing``) with causal flow arrows, JSONL event
  logs, and a Prometheus-style text exposition;
* :mod:`repro.obs.critical_path` — span-DAG critical-path extraction
  and per-phase wall-time attribution (where did the seconds go?);
* :mod:`repro.obs.slo` — declarative SLOs against the paper's 100 ms
  interaction criterion, with streaming quantiles, error budgets and
  burn rates over simulated time;
* :mod:`repro.obs.sentry` — the perf regression sentry comparing a
  fresh measurement against a committed baseline (``repro slo
  --check`` in CI);
* :mod:`repro.obs.profiling` — cross-process sampling profiler
  producing one flamegraph-ready collapsed-stack file per run.

``ViracochaSession`` wires spans and metrics up by default and attaches
the populated tracer and a metrics snapshot to every ``CommandResult``;
the analysis modules consume those results after the fact.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    render_prometheus,
)
from .spans import NULL_SPAN, Span, SpanTracer
from .export import (
    flow_events,
    to_chrome_trace,
    to_jsonl_records,
    write_chrome_trace,
    write_jsonl,
)
from .critical_path import (
    PHASES,
    CriticalPathReport,
    PhaseSegment,
    analyze_result,
    analyze_spans,
    critical_segments,
    publish_phase_metrics,
)
from .slo import (
    SLODefinition,
    SLOStatus,
    SLOTracker,
    default_slos,
)
from .profiling import (
    StackSampler,
    merge_folded,
    render_folded,
    top_functions,
    write_folded,
)

__all__ = [
    "Span",
    "SpanTracer",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "render_prometheus",
    "flow_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl_records",
    "write_jsonl",
    "PHASES",
    "CriticalPathReport",
    "PhaseSegment",
    "analyze_result",
    "analyze_spans",
    "critical_segments",
    "publish_phase_metrics",
    "SLODefinition",
    "SLOStatus",
    "SLOTracker",
    "default_slos",
    "StackSampler",
    "merge_folded",
    "render_folded",
    "top_functions",
    "write_folded",
]
