"""Trace exporters: Chrome ``trace_event`` JSON and JSONL event logs.

The Chrome format loads directly in ``about:tracing`` / Perfetto: one
"process" per simulated node (the scheduler node and each worker node),
demand work on thread 0 and background prefetch I/O on thread 1, so a
run renders as the per-worker Gantt the paper's evaluation reasons
about.  All timestamps are simulated seconds converted to microseconds.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, TextIO

from ..des.trace import TraceRecorder
from .spans import Span, SpanTracer

__all__ = [
    "flow_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_jsonl_records",
    "write_jsonl",
]

#: span kinds that run as background I/O, rendered on their own thread
#: lane so overlapping demand spans keep proper nesting.
_BACKGROUND_KINDS = {"dms-prefetch"}

_SECONDS_TO_US = 1e6


def _thread_for(span: Span) -> int:
    if span.kind in _BACKGROUND_KINDS:
        return 1
    if span.attrs.get("demand") is False:
        # strategy-loads issued by the prefetcher live on the
        # background lane with their parent prefetch span.
        return 1
    return 0


def _flow_pair(
    name: str, flow_id: int, src: Span, dst: Span
) -> list[dict[str, Any]]:
    """One ``s``/``f`` flow-event pair from ``src`` to ``dst``.

    The start event must sit inside the source slice and the finish
    inside the destination slice, so Chrome/Perfetto draws the arrow
    between the two bars; ``bp: "e"`` binds to the enclosing slice.
    """
    ts_s = min(max(dst.t_start, src.t_start), src.t_end)
    return [
        {
            "name": name, "cat": "flow", "ph": "s", "id": flow_id,
            "ts": round(ts_s * _SECONDS_TO_US, 3),
            "pid": src.node, "tid": _thread_for(src),
        },
        {
            "name": name, "cat": "flow", "ph": "f", "bp": "e", "id": flow_id,
            "ts": round(dst.t_start * _SECONDS_TO_US, 3),
            "pid": dst.node, "tid": _thread_for(dst),
        },
    ]


def flow_events(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """Causality arrows for ``chrome://tracing`` / Perfetto.

    Three kinds of edges, so a trace shows *why* a bar starts rather
    than just parallel lanes:

    * ``dispatch`` — cross-node parent → child (scheduler ``command``
      span to each ``worker`` share on its own node);
    * ``dms`` — a DMS request (``dms-lookup``) to the strategy-load /
      transfer it forced under the same ``load`` parent;
    * ``collect`` — each worker's share-transfer ``stream-packet`` to
      the ``merge`` span that consumed it at the master.

    Flow ids are the destination span id (unique per edge kind offset),
    so arrows stay stable across exports of the same trace.
    """
    finished = [s for s in spans if s.t_end is not None]
    by_id = {s.span_id: s for s in finished}
    events: list[dict[str, Any]] = []
    merges_by_parent: dict[int | None, list[Span]] = {}
    for span in finished:
        if span.kind == "merge":
            merges_by_parent.setdefault(span.parent_id, []).append(span)
    for span in finished:
        parent = by_id.get(span.parent_id)
        if parent is None:
            continue
        # dispatch: the scheduler handing work to another node.
        if span.node != parent.node:
            events.extend(_flow_pair("dispatch", span.span_id, parent, span))
        # dms: request -> the transfer it triggered (same load parent,
        # lookup strictly before the strategy-load starts).
        if span.kind == "dms-strategy-load":
            for sibling in finished:
                if (
                    sibling.kind == "dms-lookup"
                    and sibling.parent_id == span.parent_id
                    and sibling.t_end <= span.t_start
                ):
                    events.extend(
                        _flow_pair("dms", 1_000_000 + span.span_id, sibling, span)
                    )
                    break
        # collect: a share transfer feeding its command's merge.
        if span.kind == "stream-packet" and span.attrs.get("share"):
            for merge in merges_by_parent.get(span.parent_id, ()):
                if merge.node != span.node and merge.t_start >= span.t_end:
                    events.extend(
                        _flow_pair("collect", 2_000_000 + span.span_id, span, merge)
                    )
                    break
    return events


def to_chrome_trace(
    tracer: SpanTracer,
    recorder: TraceRecorder | None = None,
    node_names: dict[int, str] | None = None,
) -> dict[str, Any]:
    """Build a Chrome ``trace_event`` document from recorded spans.

    Unfinished spans are skipped (a trace export mid-run is valid but
    partial).  Flat :class:`TraceRecorder` events other than the span
    mirror records are included as instant events.
    """
    events: list[dict[str, Any]] = []
    nodes = set()
    finished = tracer.finished()
    events.extend(flow_events(finished))
    for span in finished:
        nodes.add(span.node)
        args = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": round(span.t_start * _SECONDS_TO_US, 3),
                "dur": round((span.t_end - span.t_start) * _SECONDS_TO_US, 3),
                "pid": span.node,
                "tid": _thread_for(span),
                "args": args,
            }
        )
    if recorder is not None:
        for event in recorder:
            if event.kind in ("span-begin", "span-end"):
                continue  # already represented as complete events
            nodes.add(event.node)
            events.append(
                {
                    "name": event.kind,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "ts": round(event.time * _SECONDS_TO_US, 3),
                    "pid": event.node,
                    "tid": 0,
                    "args": dict(event.detail),
                }
            )
    metadata: list[dict[str, Any]] = []
    for node in sorted(nodes):
        if node_names and node in node_names:
            label = node_names[node]
        elif node == 0:
            label = "node 0 (scheduler)"
        else:
            label = f"node {node} (worker)"
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": node,
                "tid": 0,
                "args": {"name": label},
            }
        )
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": node,
                "tid": 0,
                "args": {"name": "demand"},
            }
        )
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": node,
                "tid": 1,
                "args": {"name": "prefetch"},
            }
        )
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"]))
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    tracer: SpanTracer,
    recorder: TraceRecorder | None = None,
    node_names: dict[int, str] | None = None,
) -> dict[str, Any]:
    doc = to_chrome_trace(tracer, recorder, node_names)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True)
    return doc


# ------------------------------------------------------------------ JSONL
def to_jsonl_records(
    tracer: SpanTracer,
    recorder: TraceRecorder | None = None,
) -> Iterable[dict[str, Any]]:
    """One structured record per finished span and per flat event."""
    for span in tracer.finished():
        yield {
            "record": "span",
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "kind": span.kind,
            "name": span.name,
            "node": span.node,
            "t_start": span.t_start,
            "t_end": span.t_end,
            "attrs": span.attrs,
        }
    if recorder is not None:
        for event in recorder:
            if event.kind in ("span-begin", "span-end"):
                continue
            yield {
                "record": "event",
                "kind": event.kind,
                "node": event.node,
                "time": event.time,
                "detail": dict(event.detail),
            }


def write_jsonl(
    path_or_file: "str | TextIO",
    tracer: SpanTracer,
    recorder: TraceRecorder | None = None,
) -> int:
    """Write the JSONL log; returns the number of records written."""
    records = to_jsonl_records(tracer, recorder)
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as fh:
            return _dump_lines(records, fh)
    return _dump_lines(records, path_or_file)


def _dump_lines(records: Iterable[dict[str, Any]], fh: TextIO) -> int:
    n = 0
    for record in records:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
        n += 1
    return n
