"""Critical-path analysis: from a span DAG to a phase breakdown.

PR 1's tracer answers "what happened when"; this module answers the
question an operator actually asks: *which phase blew this command's
latency budget?*  For every completed command it

1. reconstructs the span DAG (scheduler ``command`` span → ``worker``
   shares → DMS ``load``/``dms-lookup``/``dms-strategy-load`` requests
   → ``merge`` → ``stream-packet`` transfers, including cross-process
   ``parallel-share`` intervals imported via
   :meth:`~repro.obs.spans.SpanTracer.record_interval`),
2. walks the *critical path* — the chain of spans the end-to-end time
   actually waited on — backwards from the finish, and
3. attributes every segment of wall clock to a fixed phase taxonomy
   (:data:`PHASES`), so the per-phase seconds sum to the command's
   wall time (coverage is 1.0 by construction when the root span
   brackets the run; off-path worker-idle seconds are added to the
   ``queue`` phase on top, so runs with heavy imbalance can exceed it).

The critical path through a fork-join DAG is found per join point: at
any instant the path follows the child span that ended *last* before
the clock can advance past it; gaps no child covers are the parent's
own time.  For Viracocha's fork-join command structure this is exact —
the merge (or final packet) cannot start before the last share arrives,
so the last-finishing chain is precisely what the client waited on.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .spans import Span

__all__ = [
    "PHASES",
    "PhaseSegment",
    "CriticalPathReport",
    "analyze_result",
    "analyze_spans",
    "critical_segments",
    "phase_of_segment",
    "publish_phase_metrics",
]

#: the fixed phase taxonomy every wall-clock second is charged to.
PHASES = (
    "queue",        # request transit, group formation, dispatch overhead
    "load_disk",    # fileserver / local-disk block I/O on the path
    "load_wire",    # node-to-node & collective fabric transfers
    "decompress",   # codec time on compressed transfers (DMSConfig.compression)
    "compute",      # feature extraction on worker cores
    "merge",        # partial-result collection and merge at the master
    "stream",       # result packets to the visualization client
    "recovery",     # retry backoff / reassignment after faults
)

#: span kinds whose *self time* (time not covered by any child) maps
#: straight to one phase.
_SELF_PHASE = {
    "session": "queue",
    "command": "queue",
    "worker": "compute",
    "compute": "compute",
    "merge": "merge",
    "stream-packet": "stream",
    "dms-lookup": "load_disk",      # cache probe + L2 promotion read
    "load": "load_disk",            # waits on in-flight loads land here
    "dms-prefetch": "load_disk",
    "decompress": "decompress",
    # multicore extraction (repro.parallel) span kinds
    "parallel-run": "queue",        # plan + fan-out + result collection
    "parallel-share": "compute",
    "parallel-precompute": "compute",
    "parallel-idle": "queue",       # worker claim waits + run-tail idle
}

#: span kinds excluded from the critical-path chain competition.  Idle
#: intervals end exactly at the run tail, so letting them compete would
#: displace the straggler's real compute from the path; their seconds
#: are instead folded into the ``queue`` phase additively (see
#: :func:`analyze_spans`), which can push coverage above 1.0 on runs
#: with substantial worker idling — deliberately: imbalance *is* extra
#: latency an operator should see.
_OFF_PATH_KINDS = frozenset({"parallel-idle"})

#: zero-duration fault markers whose presence re-labels an enclosing
#: scheduler-side gap as recovery time.
_RECOVERY_MARKERS = frozenset({
    "fault-retry", "fault-timeout", "fault-reassign", "fault-giveup",
    "fault-crash", "fault-stall",
})

#: loading strategies that move bytes over the fabric rather than the
#: fileserver/disk path (see repro.dms.loading); "dedup-follow" is a
#: cluster-dedup follower pulling the block from the winner's cache.
_WIRE_STRATEGIES = frozenset({"node-transfer", "collective", "dedup-follow"})


@dataclass(frozen=True)
class PhaseSegment:
    """One contiguous slice of the critical path."""

    t_start: float
    t_end: float
    phase: str
    span: Span | None  #: span charged for this slice (None: uncovered gap)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class CriticalPathReport:
    """Phase attribution for one command's wall-clock interval."""

    command: str
    wall: float  #: end-to-end seconds the report covers
    segments: list[PhaseSegment] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def covered(self) -> float:
        """On-path seconds: the chain of segments the finish waited on.

        Off-path worker idle is folded into ``phase_seconds["queue"]``
        additively but is *not* path coverage — the finish never waited
        on an idle worker — so it is excluded here to keep
        ``coverage == 1.0`` by construction for bracketed runs.
        """
        return sum(s.duration for s in self.segments)

    @property
    def coverage(self) -> float:
        """Fraction of the wall clock the attribution explains."""
        if self.wall <= 0:
            return 1.0
        return self.covered / self.wall

    @property
    def dominant_phase(self) -> str:
        if not self.phase_seconds:
            return "queue"
        return max(self.phase_seconds.items(), key=lambda kv: kv[1])[0]

    def fractions(self) -> dict[str, float]:
        total = sum(self.phase_seconds.values())
        if total <= 0:
            return {p: 0.0 for p in PHASES}
        return {p: self.phase_seconds.get(p, 0.0) / total for p in PHASES}

    # ------------------------------------------------------- rendering
    def format(self, width: int = 36) -> str:
        """ASCII/markdown table: one row per phase, bar-scaled."""
        lines = [
            f"critical path: {self.command}  "
            f"(wall {self.wall * 1e3:.2f} ms, "
            f"coverage {self.coverage:.1%}, "
            f"dominant: {self.dominant_phase})",
            "",
            "| phase      | seconds    | share  | bar |",
            "|------------|------------|--------|-----|",
        ]
        peak = max(self.phase_seconds.values(), default=0.0)
        for phase in PHASES:
            seconds = self.phase_seconds.get(phase, 0.0)
            share = seconds / self.covered if self.covered > 0 else 0.0
            bar = "#" * (round(width * seconds / peak) if peak > 0 else 0)
            lines.append(
                f"| {phase:<10s} | {seconds:>10.6f} | {share:>5.1%} | {bar} |"
            )
        return "\n".join(lines)

    def format_path(self, limit: int = 40) -> str:
        """The critical chain itself, longest segments first."""
        rows = sorted(self.segments, key=lambda s: -s.duration)[:limit]
        lines = [f"top critical-path segments ({self.command}):"]
        for seg in rows:
            name = seg.span.name if seg.span is not None else "(gap)"
            kind = seg.span.kind if seg.span is not None else "-"
            node = seg.span.node if seg.span is not None else "-"
            lines.append(
                f"  [{seg.t_start:>10.4f} .. {seg.t_end:>10.4f}] "
                f"{seg.duration * 1e3:>9.3f} ms  {seg.phase:<9s} "
                f"{kind}:{name} @node{node}"
            )
        return "\n".join(lines)


# ------------------------------------------------------------------ DAG
def _index_children(spans: Iterable[Span]) -> dict[int | None, list[Span]]:
    children: dict[int | None, list[Span]] = defaultdict(list)
    for span in spans:
        children[span.parent_id].append(span)
    return children


def critical_segments(
    root: Span,
    children: dict[int | None, list[Span]],
    t_lo: float | None = None,
    t_hi: float | None = None,
) -> list[tuple[float, float, Span]]:
    """Chain of ``(t_start, t_end, span)`` slices covering the root.

    Walks backwards from ``t_hi``: the child whose end the clock most
    recently waited on owns the preceding interval (recursively); time
    no child covers is the root's own.  Slices are returned in
    chronological order and partition ``[t_lo, t_hi]`` exactly.
    """
    t_lo = root.t_start if t_lo is None else t_lo
    t_hi = root.t_end if t_hi is None else t_hi
    if t_hi is None or t_hi <= t_lo:
        return []
    kids = [
        c for c in children.get(root.span_id, ())
        if c.t_end is not None and c.t_end > t_lo and c.t_start < t_hi
        and c.duration > 0.0 and c.kind not in _OFF_PATH_KINDS
    ]
    kids.sort(key=lambda c: (c.t_end, c.t_start))
    out: list[tuple[float, float, Span]] = []
    cur = t_hi
    while cur > t_lo and kids:
        # Last child finishing at or before the current frontier.
        pick = None
        while kids:
            cand = kids[-1]
            if cand.t_end <= cur or cand.t_start < cur:
                pick = kids.pop()
                break
            kids.pop()
        if pick is None:
            break
        end = min(pick.t_end, cur)
        if end < cur:
            out.append((end, cur, root))  # gap: root's own time
        lo = max(pick.t_start, t_lo)
        # Sub-chains come back chronological; the whole list is built
        # newest-first and reversed once at the end, so flip them here.
        out.extend(reversed(critical_segments(pick, children, t_lo=lo, t_hi=end)))
        cur = lo
        kids = [c for c in kids if c.t_start < cur]
    if cur > t_lo:
        out.append((t_lo, cur, root))
    out.reverse()
    return out


def phase_of_segment(
    span: Span,
    t_start: float,
    t_end: float,
    marker_times: Sequence[tuple[float, str]] = (),
) -> str:
    """Map one critical-path slice onto the phase taxonomy."""
    kind = span.kind
    if kind == "dms-strategy-load":
        strategy = span.attrs.get("strategy")
        return "load_wire" if strategy in _WIRE_STRATEGIES else "load_disk"
    if kind in ("session", "command"):
        # Scheduler-side self time that brackets a fault marker is the
        # command *recovering* (retry backoff, reassignment), not
        # queueing: the zero-duration fault-* spans pin those instants.
        eps = 1e-12
        for t, _marker_kind in marker_times:
            if t_start - eps <= t <= t_end + eps:
                return "recovery"
        return "queue"
    phase = _SELF_PHASE.get(kind)
    if phase is not None:
        return phase
    if kind.startswith("fault-"):
        return "recovery"
    return "queue"


# ------------------------------------------------------------- analysis
def analyze_spans(
    spans: Sequence[Span],
    command: str | None = None,
    wall: float | None = None,
    root_kinds: tuple[str, ...] = ("session", "parallel-run"),
) -> CriticalPathReport:
    """Build a :class:`CriticalPathReport` from one run's span slice.

    ``spans`` is typically ``CommandResult.spans`` (one root ``session``
    span) or a :class:`~repro.parallel.ParallelExtractor` tracer slice
    (one root ``parallel-run`` span).  ``wall`` defaults to the root
    span's duration.
    """
    finished = [s for s in spans if s.t_end is not None]
    present = {s.span_id for s in finished}
    roots = [
        s for s in finished
        if (s.parent_id is None or s.parent_id not in present)
        and s.kind in root_kinds
    ]
    if not roots:
        # Fall back to any orphan span bracketing the run.
        roots = [
            s for s in finished
            if s.parent_id is None or s.parent_id not in present
        ]
    if not roots:
        return CriticalPathReport(command=command or "?", wall=wall or 0.0)
    root = max(roots, key=lambda s: s.duration)
    children = _index_children(finished)
    markers = [
        (s.t_start, s.kind) for s in finished if s.kind in _RECOVERY_MARKERS
    ]
    markers.sort()
    chain = critical_segments(root, children)
    segments: list[PhaseSegment] = []
    phase_seconds: dict[str, float] = {}
    for t0, t1, span in chain:
        phase = phase_of_segment(span, t0, t1, markers)
        segments.append(PhaseSegment(t0, t1, phase, span))
        phase_seconds[phase] = phase_seconds.get(phase, 0.0) + (t1 - t0)
    # Worker idle (claim waits + run tails) is off-path by design; its
    # seconds are charged to the queue phase additively so imbalance
    # shows up in the breakdown without displacing the straggler's
    # compute from the critical chain.
    idle_total = sum(
        float(s.attrs.get("idle_s", s.duration))
        for s in finished
        if s.kind in _OFF_PATH_KINDS
    )
    if idle_total > 0.0:
        phase_seconds["queue"] = phase_seconds.get("queue", 0.0) + idle_total
    name = command
    if name is None:
        name = root.attrs.get("command") or root.name
    return CriticalPathReport(
        command=str(name),
        wall=wall if wall is not None else root.duration,
        segments=segments,
        phase_seconds=phase_seconds,
    )


def analyze_result(result: Any) -> CriticalPathReport:
    """Analyze one :class:`~repro.core.session.CommandResult`."""
    return analyze_spans(
        result.spans, command=result.command, wall=result.total_runtime
    )


def publish_phase_metrics(registry, report: CriticalPathReport) -> None:
    """Feed one report's per-phase seconds into a metrics registry."""
    for phase in PHASES:
        registry.histogram(
            "viracocha_phase_seconds",
            labels={"command": report.command, "phase": phase},
            help="critical-path seconds attributed to each phase",
        ).observe(report.phase_seconds.get(phase, 0.0))
    registry.gauge(
        "viracocha_phase_coverage",
        labels={"command": report.command},
        help="fraction of wall clock the phase attribution explains",
    ).set(report.coverage)
