"""The perf regression sentry: one gate over the whole BENCH trajectory.

PRs 3-5 each left behind an ad-hoc ``--check`` flag and a committed
``BENCH_*.json``; nothing watched the *shape* of a run — a regression
that kept the wall-clock floors but, say, doubled time spent merging
would sail through.  The sentry closes that hole with three layered
checks, strictest first:

1. **Golden fingerprints** — every sentry command's
   :func:`repro.faults.trace_fingerprint` must match the committed
   baseline byte for byte: the simulated event stream is deterministic,
   so *any* drift is a behavior change, not noise.
2. **Phase breakdown + SLO attainment** — per-command critical-path
   phase seconds (:mod:`repro.obs.critical_path`) and SLO
   quantiles/attainment (:mod:`repro.obs.slo`) against the baseline
   under *noise-aware* thresholds: simulated quantities are
   deterministic in one environment but may shift by float-level
   amounts across numpy versions, so each comparison allows a relative
   band plus an absolute floor instead of exact equality.
3. **Wall-clock floors** (optional, ``--wall``) — re-runs the committed
   macro-benchmarks and enforces the speedup floors recorded inside
   ``BENCH_PR4.json`` / ``BENCH_PR5.json``, replacing the per-PR
   ad-hoc CI steps.

``python -m repro slo --check`` wires all of this to CI; a nonzero
exit is a regression.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable

from .critical_path import PHASES, analyze_result, publish_phase_metrics
from .slo import SLOTracker, default_slos

__all__ = [
    "SENTRY_COMMANDS",
    "Tolerance",
    "SentryReport",
    "measure",
    "compare",
    "check_wall_floors",
    "load_baseline",
    "write_baseline",
]

#: the four headline commands, the same shapes the macro-benchmarks and
#: the chaos suite replay (small Engine testbed).
SENTRY_COMMANDS: list[tuple[str, dict]] = [
    ("iso-dataman", {"isovalue": -0.3, "scalar": "pressure", "time_range": (0, 1)}),
    ("vortex-dataman", {"threshold": -0.5, "time_range": (0, 1)}),
    (
        "pathlines-dataman",
        {
            "seeds": [[-0.3, -0.2, 0.6], [0.2, 0.3, 0.9], [0.0, -0.4, 1.1]],
            "time_range": (0, 2),
            "max_steps": 60,
        },
    ),
    ("cutplane", {"normal": (0.0, 0.0, 1.0), "offset": 0.8, "time_range": (0, 1)}),
]

#: baseline files whose committed floors the ``--wall`` check enforces.
WALL_BASELINES = ("BENCH_PR4.json", "BENCH_PR5.json")


@dataclass(frozen=True)
class Tolerance:
    """Noise bands for baseline comparisons.

    Simulated seconds are deterministic on one toolchain; the bands
    absorb float-level drift across numpy/python versions without
    letting a real regression (a phase growing by tens of percent)
    through.  ``abs_s`` keeps sub-millisecond phases from tripping the
    relative band on rounding noise.
    """

    rel: float = 0.10          #: relative band for phase seconds
    abs_s: float = 5e-3        #: absolute floor [sim s] for phase seconds
    quantile_rel: float = 0.10 #: relative band for SLO p50/p95/p99
    attainment_abs: float = 1e-9  #: attainment fractions are exact ratios


@dataclass
class SentryReport:
    """Everything one sentry pass produced."""

    current: dict[str, Any]
    regressions: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def format(self) -> str:
        lines = []
        if self.regressions:
            lines.append(f"REGRESSIONS ({len(self.regressions)}):")
            lines.extend(f"  - {r}" for r in self.regressions)
        else:
            lines.append("sentry: no regressions against baseline")
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


# ------------------------------------------------------------ measuring
def _sentry_session(data: str, n_workers: int):
    from ..bench.calibration import paper_cluster, paper_costs
    from ..core.session import ViracochaSession
    from ..synth import build_engine, build_propfan

    builders = {"engine": build_engine, "propfan": build_propfan}
    if data not in builders:
        raise KeyError(data)
    dataset = builders[data](base_resolution=4, n_timesteps=2)
    return ViracochaSession(
        dataset,
        cluster_config=paper_cluster(n_workers),
        costs=paper_costs(),
    )


def measure(
    data: str = "engine",
    workers: int = 4,
    repeats: int = 3,
    commands: list[tuple[str, dict]] | None = None,
    session_factory: Callable[[], Any] | None = None,
    tracker: SLOTracker | None = None,
) -> dict[str, Any]:
    """Run the sentry workload and collect every gated quantity.

    One fresh session, each command executed ``repeats`` times in
    order (first pass cold, later passes warm — both phases matter:
    regressions can hide in either).  Returns a plain-JSON dict:
    fingerprints, per-phase critical-path seconds, coverage, and the
    SLO rollup, all in simulated time.
    """
    from ..faults.chaos import trace_fingerprint

    # The cluster-DMS cell only makes sense on the stock sentry
    # workload; explicit commands/session_factory (tests, ad-hoc runs)
    # keep the exact shape they asked for.
    include_cluster = commands is None and session_factory is None
    if session_factory is not None:
        session = session_factory()
    else:
        session = _sentry_session(data, workers)
    tracker = tracker if tracker is not None else SLOTracker(default_slos())
    commands = commands if commands is not None else SENTRY_COMMANDS
    per_command: dict[str, Any] = {}
    for name, params in commands:
        fingerprints: list[str] = []
        runtimes: list[float] = []
        latencies: list[float] = []
        phase_seconds = {p: 0.0 for p in PHASES}
        coverage = 1.0
        for _ in range(max(repeats, 1)):
            result = session.run(name, params=dict(params))
            fingerprints.append(trace_fingerprint(result))
            runtimes.append(result.total_runtime)
            latencies.append(result.latency)
            report = analyze_result(result)
            coverage = min(coverage, report.coverage)
            for phase, seconds in report.phase_seconds.items():
                phase_seconds[phase] += seconds
            publish_phase_metrics(session.metrics, report)
            tracker.observe_result(result)
        per_command[name] = {
            "fingerprints": fingerprints,
            "runtime_seconds": runtimes,
            "latency_seconds": latencies,
            "phase_seconds": phase_seconds,
            "coverage": coverage,
        }
    if include_cluster:
        per_command["cluster-iso-concurrent"] = _measure_cluster_cell(
            data, workers
        )
        per_command["progressive-ttfa"] = _measure_ttfa_cell(data, workers)
        per_command["dynamic-schedule"] = _measure_dynamic_cell(data, workers)
    slo_rollup: dict[str, Any] = {}
    for st in tracker.status("command"):
        slo_rollup.setdefault(st.slo.name, {})[st.key] = {
            "total": st.total,
            "good": st.good,
            "attainment": st.attainment,
            "p50": st.p50,
            "p95": st.p95,
            "p99": st.p99,
            "burn_rate": st.burn_rate if math.isfinite(st.burn_rate) else None,
        }
    tracker.publish_metrics(session.metrics)
    return {
        "suite": "slo-sentry",
        "dataset": data,
        "workers": workers,
        "repeats": repeats,
        "commands": per_command,
        "slo": slo_rollup,
        "_session": session,   # stripped before serialization
        "_tracker": tracker,
    }


def _measure_cluster_cell(data: str, workers: int) -> dict[str, Any]:
    """One cluster-scale DMS cell: two concurrent tenants over shared
    timesteps with cluster dedup, contention-aware selection, and ZSTD
    wire compression on.  Gated like any other sentry cell —
    fingerprints exactly, phase seconds (including the new dedup wire
    pulls and codec time) within tolerance bands.
    """
    from ..bench.calibration import paper_cluster, paper_costs
    from ..core.session import ViracochaSession
    from ..dms.compression import ZSTD_2020
    from ..dms.proxy import DMSConfig
    from ..faults.chaos import trace_fingerprint
    from ..synth import build_engine, build_propfan

    builders = {"engine": build_engine, "propfan": build_propfan}
    dataset = builders[data](base_resolution=4, n_timesteps=2)
    session = ViracochaSession(
        dataset,
        cluster_config=paper_cluster(workers),
        costs=paper_costs(),
        dms_config=DMSConfig(
            cluster_dedup=True, contention_aware=True, compression=ZSTD_2020
        ),
    )
    group = max(1, workers // 2)
    results = session.run_concurrent([
        {
            "command": "iso-dataman",
            "params": {
                "isovalue": -0.3, "scalar": "pressure", "time_range": (0, 2),
            },
            "group_size": group,
            "tenant": tenant,
        }
        for tenant in ("tenant-a", "tenant-b")
    ])
    # The batch shares one span slice; analyze it once (via the first
    # result) so phase seconds are not double-counted.
    report = analyze_result(results[0])
    phase_seconds = {p: 0.0 for p in PHASES}
    phase_seconds.update(report.phase_seconds)
    agg = session.scheduler.aggregate_dms_stats()
    server = session.scheduler.server
    return {
        "fingerprints": [trace_fingerprint(r) for r in results],
        "runtime_seconds": [r.total_runtime for r in results],
        "latency_seconds": [r.latency for r in results],
        "phase_seconds": phase_seconds,
        "coverage": report.coverage,
        "dedup_followers": server.dedup_followers,
        "dedup_load_seconds": agg.load_seconds_by_strategy.get(
            "dedup-follow", 0.0
        ),
        "compression_codec_seconds": agg.compression_seconds,
        "compression_decisions": dict(sorted(agg.compression_decisions.items())),
    }


def _measure_ttfa_cell(data: str, workers: int) -> dict[str, Any]:
    """One progressive-streaming cell: time-to-first-approximation under
    level-major vs depth-first scheduling, in simulated seconds.

    Each schedule gets a fresh session and runs the command twice: a
    cold pass (loads dominate both schedules equally) and a warm pass
    at a *new isovalue* — the paper's interactive re-extraction, where
    cached pyramids make the coarse pass nearly free and scheduling is
    the whole difference.  ``base_resolution=8`` keeps the blocks
    coarsenable (3+ pyramid levels); at the stock sentry resolution the
    pyramid degenerates to a single level and the schedules coincide.
    The cell is gated directionally in :func:`compare`: the warm
    speedup over depth-first has a floor, so a scheduler regression
    back toward depth-first behavior flips ``repro slo --check`` to
    exit 1.
    """
    from ..bench.calibration import paper_cluster, paper_costs
    from ..core.session import ViracochaSession
    from ..faults.chaos import trace_fingerprint
    from ..synth import build_engine, build_propfan

    builders = {"engine": build_engine, "propfan": build_propfan}
    params = {
        "isovalue": -0.3,
        "scalar": "pressure",
        "time_range": (0, 1),
        "max_levels": 4,
    }
    fingerprints: list[str] = []
    ttfa: dict[str, dict[str, float]] = {}
    for schedule in ("level-major", "depth-first"):
        dataset = builders[data](base_resolution=8, n_timesteps=1)
        session = ViracochaSession(
            dataset,
            cluster_config=paper_cluster(workers),
            costs=paper_costs(),
        )
        cold = session.run(
            "iso-progressive", params=dict(params, schedule=schedule)
        )
        warm = session.run(
            "iso-progressive",
            params=dict(params, schedule=schedule, isovalue=-0.1),
        )
        fingerprints.extend([trace_fingerprint(cold), trace_fingerprint(warm)])
        ttfa[schedule] = {"cold": cold.ttfa_s, "warm": warm.ttfa_s}
    level_major = ttfa["level-major"]["warm"]
    depth_first = ttfa["depth-first"]["warm"]
    return {
        "fingerprints": fingerprints,
        "ttfa_cold_level_major_s": ttfa["level-major"]["cold"],
        "ttfa_cold_depth_first_s": ttfa["depth-first"]["cold"],
        "ttfa_level_major_s": level_major,
        "ttfa_depth_first_s": depth_first,
        "ttfa_speedup": (depth_first / level_major) if level_major > 0 else None,
    }


def _worker_idle_seconds(result: Any) -> float:
    """Worker imbalance from one result's span slice: the simulated
    seconds workers spent finished while the slowest one still ran
    (``Σ over workers of (last worker end − this worker's end)``)."""
    ends: dict[Any, float] = {}
    for span in result.spans:
        if span.kind != "worker" or span.t_end is None:
            continue
        wid = span.attrs.get("worker")
        ends[wid] = max(ends.get(wid, 0.0), span.t_end)
    if len(ends) < 2:
        return 0.0
    t_max = max(ends.values())
    return sum(t_max - t for t in ends.values())


def _measure_dynamic_cell(data: str, workers: int) -> dict[str, Any]:
    """One dynamic-scheduling cell: static vs work-stealing vs stealing
    with load/compute pipelining, in simulated seconds.

    Each schedule gets a fresh session and runs iso extraction twice: a
    cold pass (fileserver-bound — every block pays its compulsory load,
    so all schedules are bottlenecked alike) and a warm pass at a new
    isovalue — the interactive re-extraction loop, where cached blocks
    make compute the whole story and the static split's fraction-driven
    imbalance is exactly what stealing erases.  ``base_resolution=8``
    gives the blocks enough cells for compute to dominate warm.

    Gated in :func:`compare`: runtimes and idle seconds within the
    tolerance bands, plus a *directional* floor on the warm speedup of
    dynamic over static — a scheduler regression that drifts back
    toward static tail latency flips ``repro slo --check`` to exit 1.
    """
    from ..bench.calibration import paper_cluster, paper_costs
    from ..core.session import ViracochaSession
    from ..faults.chaos import trace_fingerprint
    from ..synth import build_engine, build_propfan

    builders = {"engine": build_engine, "propfan": build_propfan}
    base = {"scalar": "pressure", "time_range": (0, 1)}
    fingerprints: list[str] = []
    out: dict[str, Any] = {}
    for schedule, tag in (
        ("static", "static"),
        ("dynamic", "dynamic"),
        ("dynamic+pipeline", "pipeline"),
    ):
        dataset = builders[data](base_resolution=8, n_timesteps=1)
        session = ViracochaSession(
            dataset,
            cluster_config=paper_cluster(workers),
            costs=paper_costs(),
        )
        params = dict(base)
        if schedule != "static":
            params["schedule"] = schedule
        cold = session.run(
            "iso-dataman", params=dict(params, isovalue=-0.3), group_size=workers
        )
        warm = session.run(
            "iso-dataman", params=dict(params, isovalue=-0.1), group_size=workers
        )
        fingerprints.extend([trace_fingerprint(cold), trace_fingerprint(warm)])
        record = session.scheduler.history[-1]
        out[f"cold_{tag}_s"] = session.scheduler.history[-2].runtime
        out[f"warm_{tag}_s"] = record.runtime
        out[f"idle_{tag}_s"] = _worker_idle_seconds(warm)
        out[f"steals_{tag}"] = record.steals
    warm_static = out["warm_static_s"]
    warm_dynamic = out["warm_dynamic_s"]
    out["fingerprints"] = fingerprints
    out["dynamic_speedup"] = (
        (warm_static / warm_dynamic) if warm_dynamic > 0 else None
    )
    return out


def strip_runtime(current: dict[str, Any]) -> dict[str, Any]:
    """Drop the live session/tracker handles for JSON serialization."""
    return {k: v for k, v in current.items() if not k.startswith("_")}


# ------------------------------------------------------------ comparing
def _close(base: float, now: float, rel: float, abs_floor: float) -> bool:
    return abs(now - base) <= max(rel * abs(base), abs_floor)


def compare(
    baseline: dict[str, Any],
    current: dict[str, Any],
    tol: Tolerance | None = None,
) -> list[str]:
    """Regression messages (empty = clean) for current vs baseline."""
    tol = tol or Tolerance()
    problems: list[str] = []
    base_cmds = baseline.get("commands", {})
    cur_cmds = current.get("commands", {})
    for name, base in base_cmds.items():
        cur = cur_cmds.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        if cur["fingerprints"] != base["fingerprints"]:
            problems.append(
                f"{name}: trace fingerprint drift — simulated behavior "
                "changed (golden pins would catch the same run)"
            )
        if "ttfa_level_major_s" in base:
            # Progressive-TTFA cell: band the simulated seconds, and gate
            # the speedup *directionally* — falling back toward
            # depth-first TTFA is a regression even if everything else
            # stayed inside its band.
            for key in (
                "ttfa_cold_level_major_s",
                "ttfa_cold_depth_first_s",
                "ttfa_level_major_s",
                "ttfa_depth_first_s",
            ):
                if key not in base:
                    continue
                b, c = base[key], cur.get(key, 0.0)
                if not _close(b, c, tol.rel, tol.abs_s):
                    problems.append(
                        f"{name}: {key} moved {b:.6f}s -> {c:.6f}s "
                        f"(tolerance ±{tol.rel:.0%} / {tol.abs_s}s)"
                    )
            b = base.get("ttfa_speedup") or 0.0
            c = cur.get("ttfa_speedup") or 0.0
            if c < b * (1.0 - tol.rel):
                problems.append(
                    f"{name}: TTFA speedup over depth-first fell "
                    f"{b:.2f}x -> {c:.2f}x (floor {b * (1.0 - tol.rel):.2f}x)"
                )
            continue
        if "dynamic_speedup" in base:
            # Dynamic-scheduling cell: band the simulated runtimes and
            # idle seconds, and gate the warm dynamic-over-static
            # speedup *directionally* — stealing regressing toward
            # static tail latency is a failure even inside the bands.
            for key, value in base.items():
                if not (key.endswith("_s") or key.startswith("steals_")):
                    continue
                b, c = float(value), float(cur.get(key, 0.0))
                if not _close(b, c, tol.rel, tol.abs_s):
                    problems.append(
                        f"{name}: {key} moved {b:.6f} -> {c:.6f} "
                        f"(tolerance ±{tol.rel:.0%} / {tol.abs_s})"
                    )
            b = base.get("dynamic_speedup") or 0.0
            c = cur.get("dynamic_speedup") or 0.0
            if c < b * (1.0 - tol.rel):
                problems.append(
                    f"{name}: warm dynamic-over-static speedup fell "
                    f"{b:.2f}x -> {c:.2f}x (floor {b * (1.0 - tol.rel):.2f}x)"
                )
            continue
        for phase in PHASES:
            b = base["phase_seconds"].get(phase, 0.0)
            c = cur["phase_seconds"].get(phase, 0.0)
            if not _close(b, c, tol.rel, tol.abs_s):
                problems.append(
                    f"{name}: phase {phase!r} moved {b:.6f}s -> {c:.6f}s "
                    f"(tolerance ±{tol.rel:.0%} / {tol.abs_s}s)"
                )
        if cur.get("coverage", 0.0) < 0.95:
            problems.append(
                f"{name}: critical-path coverage {cur['coverage']:.1%} < 95%"
            )
        # Cluster-cell extras (dedup wire seconds, codec seconds) ride
        # the same tolerance bands as phase seconds.
        for key in ("dedup_load_seconds", "compression_codec_seconds"):
            if key in base:
                b, c = base[key], cur.get(key, 0.0)
                if not _close(b, c, tol.rel, tol.abs_s):
                    problems.append(
                        f"{name}: {key} moved {b:.6f}s -> {c:.6f}s "
                        f"(tolerance ±{tol.rel:.0%} / {tol.abs_s}s)"
                    )
    for slo_name, base_rollup in baseline.get("slo", {}).items():
        cur_rollup = current.get("slo", {}).get(slo_name, {})
        for key, base_cell in base_rollup.items():
            cur_cell = cur_rollup.get(key)
            if cur_cell is None:
                problems.append(f"slo {slo_name}/{key}: missing from current run")
                continue
            if abs(cur_cell["attainment"] - base_cell["attainment"]) > tol.attainment_abs:
                problems.append(
                    f"slo {slo_name}/{key}: attainment "
                    f"{base_cell['attainment']:.3f} -> {cur_cell['attainment']:.3f}"
                )
            for q in ("p50", "p95", "p99"):
                if not _close(base_cell[q], cur_cell[q], tol.quantile_rel, tol.abs_s):
                    problems.append(
                        f"slo {slo_name}/{key}: {q} moved "
                        f"{base_cell[q]:.6f}s -> {cur_cell[q]:.6f}s"
                    )
    return problems


# ------------------------------------------------------- wall-clock leg
def _load_macro_bench(repo_root: str):
    """Import benchmarks/perf/macro_bench.py by path (not a package)."""
    import importlib.util

    path = os.path.join(repo_root, "benchmarks", "perf", "macro_bench.py")
    if not os.path.exists(path):
        return None
    spec = importlib.util.spec_from_file_location("_sentry_macro_bench", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def check_wall_floors(repo_root: str = ".") -> tuple[list[str], list[str]]:
    """Re-run the macro-benchmarks; enforce each committed floor.

    Floors come from the committed ``BENCH_PR4.json`` /
    ``BENCH_PR5.json`` (falling back to the harness constants when a
    file is absent).  Returns ``(regressions, notes)``; wall-clock
    timing is noisy on shared runners, so callers may choose to treat
    these as advisory (CI marks the job ``continue-on-error``).
    """
    problems: list[str] = []
    notes: list[str] = []
    bench = _load_macro_bench(repo_root)
    if bench is None:
        notes.append("benchmarks/perf/macro_bench.py not found; wall leg skipped")
        return problems, notes

    def committed_floors(fname: str, fallback: dict) -> dict:
        path = os.path.join(repo_root, fname)
        if os.path.exists(path):
            with open(path) as fh:
                return json.load(fh).get("floors", fallback)
        return fallback

    pr4_floors = committed_floors("BENCH_PR4.json", bench.FLOORS)
    current = bench.measure()
    ratios = bench.speedups(current)
    for key, floor in pr4_floors.items():
        ratio = ratios.get(key)
        if ratio is not None and ratio < floor:
            problems.append(
                f"wall pr4: {key} speedup {ratio:.2f}x under floor {floor}x"
            )
    notes.append(
        "wall pr4: " + ", ".join(f"{k}={v:.2f}x" for k, v in sorted(ratios.items()))
    )
    pr5_floors = committed_floors("BENCH_PR5.json", bench.PR5_FLOORS)
    pr5 = bench.measure_pr5()
    for key, floor in pr5_floors.items():
        ratio = pr5["speedup"].get(key)
        if ratio is not None and ratio < floor:
            problems.append(
                f"wall pr5: {key} speedup {ratio:.2f}x under floor {floor}x"
            )
    notes.append(
        "wall pr5: "
        + ", ".join(f"{k}={v:.2f}x" for k, v in sorted(pr5["speedup"].items()))
    )
    return problems, notes


# ------------------------------------------------------------- baseline
def load_baseline(path: str) -> dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


def write_baseline(path: str, current: dict[str, Any]) -> None:
    import platform

    doc = strip_runtime(current)
    doc["machine"] = platform.platform()
    doc["python"] = platform.python_version()
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
