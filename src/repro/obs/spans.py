"""Hierarchical spans: timestamped intervals with parent/child links.

The flat :class:`~repro.des.trace.TraceRecorder` answers "what happened
when"; spans answer "what was *inside* what".  A :class:`SpanTracer`
records intervals following the taxonomy

    session -> command -> worker -> {load, compute, merge, stream-packet}
    load    -> {dms-lookup, dms-strategy-load}
    dms-prefetch (background; causally linked, not contained)

so exported timelines (Chrome ``trace_event`` JSON, ASCII Gantt) show
per-node lanes and the per-component breakdown the paper's evaluation
is built on (Figs. 6-15).

The tracer is *layered on* the existing recorder: every begin/end is
mirrored as a ``span-begin`` / ``span-end`` :class:`TraceEvent` when a
recorder is attached, so code that greps the flat log keeps working.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from itertools import islice
from typing import Any, Callable, Iterator

from ..des.trace import TraceRecorder

__all__ = ["Span", "SpanTracer", "NULL_SPAN"]

#: spans emitted by the instrumented Viracocha stack (for docs/tests).
SPAN_KINDS = (
    "session",
    "command",
    "worker",
    "load",
    "compute",
    "merge",
    "stream-packet",
    "dms-lookup",
    "dms-strategy-load",
    "dms-prefetch",
    # fault-injection / recovery instants (zero-duration markers).
    "fault-crash",
    "fault-recover",
    "fault-link",
    "fault-link-restore",
    "fault-stall",
    "fault-timeout",
    "fault-retry",
    "fault-reassign",
    "fault-giveup",
    "fault-degraded",
)


class Span:
    """One timed interval on one simulated node.

    A plain ``__slots__`` class (not a dataclass): spans are created on
    every request/compute/stream step of a simulated run, so instances
    carry no ``__dict__`` and the ``attrs`` dict is materialized lazily
    — most spans never get one.
    """

    __slots__ = (
        "span_id", "kind", "name", "node", "t_start", "t_end",
        "parent_id", "_attrs",
    )

    def __init__(
        self,
        span_id: int,
        kind: str,
        name: str,
        node: int,
        t_start: float,
        t_end: float | None = None,
        parent_id: int | None = None,
        attrs: dict[str, Any] | None = None,
    ):
        self.span_id = span_id
        self.kind = kind
        self.name = name
        self.node = node
        self.t_start = t_start
        self.t_end = t_end
        self.parent_id = parent_id
        self._attrs = attrs or None

    @property
    def attrs(self) -> dict[str, Any]:
        a = self._attrs
        if a is None:
            a = self._attrs = {}
        return a

    @property
    def finished(self) -> bool:
        return self.t_end is not None

    @property
    def duration(self) -> float:
        if self.t_end is None:
            raise ValueError(f"span {self.span_id} ({self.kind}) not finished")
        return self.t_end - self.t_start

    def contains(self, other: "Span") -> bool:
        """Temporal containment (closed interval; zero-duration allowed)."""
        if self.t_end is None or other.t_end is None:
            return False
        return self.t_start <= other.t_start and other.t_end <= self.t_end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.t_end:.4f}" if self.t_end is not None else "…"
        return (
            f"Span(#{self.span_id} {self.kind}:{self.name!r} node={self.node} "
            f"[{self.t_start:.4f}, {end}] parent={self.parent_id})"
        )


#: shared sentinel returned by a disabled tracer; ending it is a no-op.
NULL_SPAN = Span(span_id=-1, kind="null", name="", node=-1, t_start=0.0, t_end=0.0)


class SpanTracer:
    """Collects :class:`Span` records; optionally mirrors to a recorder.

    ``clock`` supplies default timestamps (usually ``lambda: env.now``);
    explicit ``t=`` arguments override it.  When ``enabled`` is False
    every call is a cheap no-op returning :data:`NULL_SPAN`.

    ``max_spans`` caps memory like PR 1's ``request_log`` ring: when
    set, only the most recent ``max_spans`` spans are retained (oldest
    evicted first) and :attr:`dropped` counts the evictions, which the
    session surfaces as ``viracocha_spans_dropped_total``.
    """

    def __init__(
        self,
        recorder: TraceRecorder | None = None,
        clock: Callable[[], float] | None = None,
        enabled: bool = True,
        max_spans: int | None = None,
    ):
        if max_spans is not None and max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.recorder = recorder
        self.clock = clock
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: deque[Span] = deque()
        self.dropped = 0
        #: most spans ever resident at once — how close the ring came
        #: to (or how far past) its cap; with ``max_spans`` set this
        #: saturates at the cap once the first span is evicted.
        self.high_water = 0
        self._by_id: dict[int, Span] = {}
        self._next_id = 0

    # ------------------------------------------------------------ record
    def _now(self, t: float | None) -> float:
        if t is not None:
            return t
        if self.clock is not None:
            return self.clock()
        return 0.0

    def begin(
        self,
        kind: str,
        name: str | None = None,
        node: int = 0,
        parent: "Span | None" = None,
        t: float | None = None,
        **attrs: Any,
    ) -> Span:
        if not self.enabled:
            return NULL_SPAN
        if t is None:
            clock = self.clock
            t = clock() if clock is not None else 0.0
        span_id = self._next_id
        self._next_id = span_id + 1
        # ``attrs`` is the fresh kwargs dict — owned, so no copy.
        span = Span(
            span_id,
            kind,
            name if name is not None else kind,
            node,
            t,
            None,
            parent.span_id if parent is not None and parent is not NULL_SPAN else None,
            attrs,
        )
        spans = self.spans
        if self.max_spans is not None and len(spans) >= self.max_spans:
            evicted = spans.popleft()
            del self._by_id[evicted.span_id]
            self.dropped += 1
        spans.append(span)
        if len(spans) > self.high_water:
            self.high_water = len(spans)
        self._by_id[span_id] = span
        if self.recorder is not None:
            self.recorder.record(
                t, node, "span-begin",
                span=span_id, span_kind=kind, name=span.name,
                parent=span.parent_id,
            )
        return span

    def end(self, span: Span, t: float | None = None, **attrs: Any) -> Span:
        if not self.enabled or span is NULL_SPAN:
            return span
        if span.t_end is not None:
            raise ValueError(f"span {span.span_id} ({span.kind}) already ended")
        if t is None:
            clock = self.clock
            t = clock() if clock is not None else 0.0
        if t < span.t_start:
            raise ValueError(
                f"span {span.span_id} ends at {t} before start {span.t_start}"
            )
        span.t_end = t
        if attrs:
            existing = span._attrs
            if existing is None:
                span._attrs = attrs  # fresh kwargs dict — owned, no copy
            else:
                existing.update(attrs)
        if self.recorder is not None:
            self.recorder.record(
                t, span.node, "span-end",
                span=span.span_id, span_kind=span.kind,
            )
        return span

    @contextmanager
    def span(
        self, kind: str, name: str | None = None, node: int = 0,
        parent: Span | None = None, **attrs: Any,
    ) -> Iterator[Span]:
        """Synchronous convenience wrapper (not for use across DES yields)."""
        s = self.begin(kind, name, node, parent, **attrs)
        try:
            yield s
        finally:
            self.end(s)

    def record_interval(
        self,
        kind: str,
        name: str | None = None,
        t_start: float = 0.0,
        t_end: float = 0.0,
        node: int = 0,
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span:
        """Record one already-measured interval in a single call.

        The explicit-time sibling of :meth:`span`, for intervals clocked
        somewhere this tracer isn't — worker *processes* report their
        share wall times (``time.perf_counter`` is CLOCK_MONOTONIC on
        Linux, comparable across processes on one host) and the parent
        imports them here so multicore runs land in the same trace.
        """
        span = self.begin(kind, name, node=node, parent=parent, t=t_start, **attrs)
        return self.end(span, t=t_end)

    # ------------------------------------------------------------- query
    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def get(self, span_id: int) -> Span | None:
        return self._by_id.get(span_id)

    def of_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def kinds(self) -> set[str]:
        return {s.kind for s in self.spans}

    def nodes(self) -> list[int]:
        return sorted({s.node for s in self.spans})

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def finished(self) -> list[Span]:
        return [s for s in self.spans if s.t_end is not None]

    # ------------------------------------------------- per-run slicing
    def mark(self) -> int:
        """Position marker; pair with :meth:`since` to slice one run."""
        return self._next_id

    def since(self, mark: int) -> list[Span]:
        spans = self.spans
        if not spans:
            return []
        # Retained spans have contiguous ids; anything older than the
        # head was evicted by the ring buffer (or cleared).
        start = mark - spans[0].span_id
        if start <= 0:
            return list(spans)
        return list(islice(spans, start, None))

    def clear(self) -> None:
        self.spans.clear()
        self._by_id.clear()
