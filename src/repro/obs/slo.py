"""Declarative SLOs over simulated time: the 100 ms interaction budget.

The VR client models two hard interaction criteria (§1.1, implemented
in :class:`repro.viz.client.InteractionCriteria`); the one a serving
layer must *account* for is the ~100 ms maximum system response time.
This module turns raw per-command observations into the substrate a
multi-tenant serving layer plugs into:

* :class:`SLODefinition` — a declarative objective: which metric of
  which command class must sit under which threshold for which
  fraction of requests;
* :class:`SLOTracker` — streaming ingestion of finished commands
  (latency/runtime histograms with p50/p95/p99 via
  :meth:`~repro.obs.metrics.Histogram.quantile`, good/bad counts,
  degraded-share accounting from :mod:`repro.faults` outcomes) with
  per-command *and* per-tenant rollups;
* error-budget / burn-rate arithmetic over a simulated-time window —
  "at this failure rate, when is the budget gone?".

Everything is keyed on simulated seconds, so two runs of the same
scenario produce bit-identical attainment numbers — which is what lets
the perf sentry (:mod:`repro.obs.sentry`) gate CI on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Iterable

from .metrics import Histogram

__all__ = [
    "SLO_LATENCY_BUCKETS",
    "SLODefinition",
    "SLOStatus",
    "SLOTracker",
    "default_slos",
]

#: fine-grained buckets [sim s] bracketing the 100 ms criterion tightly
#: (6 edges inside 10..300 ms) while still covering multi-second
#: runtimes; quantile interpolation error stays well under the sentry's
#: comparison tolerance.
SLO_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.02, 0.035, 0.05, 0.075, 0.1, 0.15,
    0.2, 0.3, 0.5, 0.75, 1.0, 2.0, 3.5, 5.0, 7.5, 10.0, 20.0, 35.0,
    50.0, 100.0, 250.0, 1000.0,
)


@dataclass(frozen=True)
class SLODefinition:
    """One declarative service-level objective.

    ``command_class`` is an ``fnmatch`` pattern against the command
    name (``"*"``, ``"iso-*"``, ``"pathlines-dataman"``); ``metric``
    selects which observed quantity the threshold applies to.
    """

    name: str
    metric: str  #: "latency" | "runtime" | "queue_wait" | "ttfa" | "degraded"
    threshold: float  #: seconds; ignored for "degraded"
    target: float = 0.95  #: required good fraction (0..1]
    command_class: str = "*"
    description: str = ""

    def __post_init__(self):
        if self.metric not in (
            "latency", "runtime", "queue_wait", "ttfa", "degraded"
        ):
            raise ValueError(f"unknown SLO metric {self.metric!r}")
        if not 0.0 < self.target <= 1.0:
            raise ValueError(f"target must be in (0, 1], got {self.target}")

    def matches(self, command: str) -> bool:
        return fnmatchcase(command, self.command_class)

    def is_good(self, observation: "Observation") -> bool:
        if self.metric == "degraded":
            return not observation.degraded
        value = getattr(observation, self.metric)
        return value <= self.threshold


@dataclass(frozen=True)
class Observation:
    """One finished command as the tracker sees it."""

    command: str
    latency: float  #: submit → first data at the client [sim s]
    runtime: float  #: submit → final package [sim s]
    t: float  #: simulated completion time
    degraded: bool = False
    tenant: str = "default"
    queue_wait: float = 0.0  #: submit → dispatch in a serving queue [sim s]
    #: submit → first complete approximation [sim s]; equals ``latency``
    #: for commands without progressive approximation markers.
    ttfa: float = 0.0


@dataclass
class _Window:
    """Good/bad counts plus the value histogram for one rollup cell."""

    good: int = 0
    bad: int = 0
    t_first: float = float("inf")
    t_last: float = float("-inf")
    values: Histogram | None = None

    @property
    def total(self) -> int:
        return self.good + self.bad

    def observe(self, good: bool, value: float | None, t: float) -> None:
        if good:
            self.good += 1
        else:
            self.bad += 1
        self.t_first = min(self.t_first, t)
        self.t_last = max(self.t_last, t)
        if value is not None:
            if self.values is None:
                self.values = Histogram("slo_values", SLO_LATENCY_BUCKETS)
            self.values.observe(value)


@dataclass(frozen=True)
class SLOStatus:
    """Evaluated state of one SLO over one rollup cell."""

    slo: SLODefinition
    key: str  #: command or tenant the rollup is for ("all" = everything)
    total: int
    good: int
    p50: float
    p95: float
    p99: float
    window_s: float  #: simulated-time span of the observations

    @property
    def bad(self) -> int:
        return self.total - self.good

    @property
    def attainment(self) -> float:
        return self.good / self.total if self.total else 1.0

    @property
    def met(self) -> bool:
        return self.attainment >= self.slo.target

    @property
    def error_budget(self) -> float:
        """Allowed bad events for this window (fractional)."""
        return (1.0 - self.slo.target) * self.total

    @property
    def budget_remaining(self) -> float:
        """Fraction of the error budget still unspent (can go negative)."""
        budget = self.error_budget
        if budget <= 0:
            return 0.0 if self.bad else 1.0
        return 1.0 - self.bad / budget

    @property
    def burn_rate(self) -> float:
        """Bad-fraction over budget-fraction: 1.0 burns exactly on target."""
        allowed = 1.0 - self.slo.target
        if allowed <= 0:
            return float("inf") if self.bad else 0.0
        if not self.total:
            return 0.0
        return (self.bad / self.total) / allowed

    def time_to_exhaustion(self) -> float:
        """Simulated seconds until the budget is gone at this burn rate.

        ``inf`` when burning under rate 1.0 (the budget outlives the
        window); 0 when already exhausted.
        """
        if self.budget_remaining <= 0:
            return 0.0
        if self.burn_rate <= 1.0 or self.window_s <= 0:
            return float("inf")
        bad_per_s = self.bad / self.window_s
        remaining = self.error_budget - self.bad
        return max(remaining, 0.0) / bad_per_s


class SLOTracker:
    """Streaming SLO accounting with per-command / per-tenant rollups."""

    def __init__(self, slos: Iterable[SLODefinition] | None = None):
        self.slos: list[SLODefinition] = list(
            slos if slos is not None else default_slos()
        )
        names = [s.name for s in self.slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        #: (slo.name, dimension, key) -> window; dimension is
        #: "command" | "tenant" | "all" (key "all" aggregates everything).
        self._windows: dict[tuple[str, str, str], _Window] = {}
        self.observations = 0

    # --------------------------------------------------------- ingestion
    def observe(
        self,
        command: str,
        latency: float,
        runtime: float,
        t: float,
        degraded: bool = False,
        tenant: str = "default",
        queue_wait: float = 0.0,
        ttfa: float | None = None,
    ) -> None:
        obs = Observation(
            command, latency, runtime, t, degraded, tenant, queue_wait,
            ttfa=latency if ttfa is None else ttfa,
        )
        self.observations += 1
        for slo in self.slos:
            if not slo.matches(command):
                continue
            good = slo.is_good(obs)
            value = None
            if slo.metric in ("latency", "runtime", "queue_wait", "ttfa"):
                value = getattr(obs, slo.metric)
            for dim, key in (
                ("command", command), ("tenant", tenant), ("all", "all")
            ):
                cell = self._windows.get((slo.name, dim, key))
                if cell is None:
                    cell = self._windows[(slo.name, dim, key)] = _Window()
                cell.observe(good, value, t)

    def observe_result(self, result: Any, tenant: str | None = None) -> None:
        """Ingest one :class:`~repro.core.session.CommandResult`."""
        # Completion timestamp: the final packet's simulated arrival if
        # available, else the runtime itself (t=0 submit).
        t = result.packet_times[-1] if result.packet_times else result.total_runtime
        if tenant is None:
            tenant = getattr(result, "tenant", "default")
        self.observe(
            result.command,
            latency=result.latency,
            runtime=result.total_runtime,
            t=t,
            degraded=result.degraded,
            tenant=tenant,
            queue_wait=getattr(result, "queue_wait_s", 0.0),
            ttfa=getattr(result, "ttfa_s", None),
        )

    # -------------------------------------------------------- evaluation
    def _status(self, slo: SLODefinition, dim: str, key: str) -> SLOStatus | None:
        cell = self._windows.get((slo.name, dim, key))
        if cell is None or cell.total == 0:
            return None
        h = cell.values
        q = (lambda p: h.quantile(p)) if h is not None else (lambda p: 0.0)
        window = max(cell.t_last - cell.t_first, 0.0)
        return SLOStatus(
            slo=slo, key=key, total=cell.total, good=cell.good,
            p50=q(0.50), p95=q(0.95), p99=q(0.99), window_s=window,
        )

    def keys(self, dim: str = "command") -> list[str]:
        return sorted({
            key for (_name, d, key) in self._windows if d == dim
        })

    def status(
        self, dim: str = "command", slo_name: str | None = None
    ) -> list[SLOStatus]:
        """Evaluated rollups, one row per (SLO, key) with data."""
        out: list[SLOStatus] = []
        for slo in self.slos:
            if slo_name is not None and slo.name != slo_name:
                continue
            for key in self.keys(dim):
                st = self._status(slo, dim, key)
                if st is not None:
                    out.append(st)
        return out

    def overall(self, slo_name: str) -> SLOStatus | None:
        slo = next((s for s in self.slos if s.name == slo_name), None)
        if slo is None:
            raise KeyError(f"unknown SLO {slo_name!r}")
        return self._status(slo, "all", "all")

    def all_met(self) -> bool:
        return all(st.met for st in self.status("all"))

    # --------------------------------------------------------- rendering
    def format_report(self, dim: str = "command") -> str:
        """Markdown table of every rollup row, worst burn first."""
        rows = self.status(dim)
        rows.sort(key=lambda st: (-st.burn_rate, st.slo.name, st.key))
        lines = [
            f"SLO report ({self.observations} observations, by {dim}):",
            "",
            f"| slo | {dim} | n | attain | target | p50 ms | p95 ms "
            "| p99 ms | budget left | burn |",
            "|---|---|---|---|---|---|---|---|---|---|",
        ]
        for st in rows:
            flag = "" if st.met else " ⚠"
            lines.append(
                f"| {st.slo.name}{flag} | {st.key} | {st.total} "
                f"| {st.attainment:.1%} | {st.slo.target:.0%} "
                f"| {st.p50 * 1e3:.2f} | {st.p95 * 1e3:.2f} "
                f"| {st.p99 * 1e3:.2f} | {st.budget_remaining:+.0%} "
                f"| {st.burn_rate:.2f} |"
            )
        return "\n".join(lines)

    # ----------------------------------------------------------- metrics
    def publish_metrics(self, registry) -> None:
        """Sync attainment and quantiles into a metrics registry."""
        for st in self.status("command"):
            labels = {"slo": st.slo.name, "command": st.key}
            registry.gauge(
                "viracocha_slo_attainment", labels,
                help="good fraction per SLO and command",
            ).set(st.attainment)
            registry.gauge(
                "viracocha_slo_burn_rate", labels,
                help="error-budget burn rate (1.0 = burning exactly on target)",
            ).set(st.burn_rate)
            for q, value in (("p50", st.p50), ("p95", st.p95), ("p99", st.p99)):
                registry.gauge(
                    "viracocha_slo_quantile_seconds",
                    {**labels, "quantile": q},
                    help="observed latency/runtime quantiles per SLO",
                ).set(value)


def default_slos(criteria=None) -> list[SLODefinition]:
    """The stock objectives, derived from the VR interaction criteria.

    * ``interactive-response``: first feedback within the ~100 ms
      maximum system response time for every command class;
    * ``interactive-first-frame``: a *complete* first approximation
      (TTFA) within the same response budget — the bound progressive
      streaming exists to meet;
    * ``complete-results``: commands must not serve degraded (partial)
      merges — the share-loss rate from :mod:`repro.faults` recovery.
    """
    from ..viz.client import InteractionCriteria

    criteria = criteria or InteractionCriteria()
    return [
        SLODefinition(
            name="interactive-response",
            metric="latency",
            threshold=criteria.max_response_time_s,
            target=0.95,
            command_class="*",
            description="submit → first data within the VR response budget",
        ),
        SLODefinition(
            name="interactive-first-frame",
            metric="ttfa",
            threshold=criteria.max_response_time_s,
            target=0.95,
            command_class="*",
            description="submit → first complete approximation (TTFA) "
                        "within the VR response budget",
        ),
        SLODefinition(
            name="complete-results",
            metric="degraded",
            threshold=0.0,
            target=0.99,
            command_class="*",
            description="merged results include every planned share",
        ),
    ]
