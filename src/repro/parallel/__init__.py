"""Multicore execution of post-processing commands.

The DES runtime (:mod:`repro.core`) *models* Viracocha's parallel work
group under simulated time; this package *runs* it: the same command
classes, the same planned shares, executed on real cores.  Blocks live
once in :class:`ShmBlockStore` shared-memory segments (the ``<f4``
on-disk layout, zero-copy lazy views in every process);
:class:`ProcessWorkerPool` fans shares out to worker processes;
:class:`ParallelExtractor` fronts it all behind an
``executor="serial"|"process"`` knob with results byte-identical across
executors by construction.
"""

from .api import EXECUTORS, SCHEDULES, ParallelExtractor, ParallelResult
from .dynamic import CostFeedback, TaskResult
from .pipeline import BlockPipeline
from .pool import ProcessWorkerPool, ShareResult, WorkerPoolError, pick_start_method
from .runner import DirectRunner, ShareRun
from .shm import ShmBlockStore

__all__ = [
    "EXECUTORS",
    "SCHEDULES",
    "ParallelExtractor",
    "ParallelResult",
    "BlockPipeline",
    "CostFeedback",
    "TaskResult",
    "ProcessWorkerPool",
    "ShareResult",
    "WorkerPoolError",
    "pick_start_method",
    "DirectRunner",
    "ShareRun",
    "ShmBlockStore",
]
