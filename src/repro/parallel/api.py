"""High-level multicore extraction: plan like the scheduler, run on cores.

:class:`ParallelExtractor` is the direct-execution sibling of the
simulated :class:`~repro.core.scheduler.Scheduler`: it builds the same
:class:`~repro.core.commands.CommandContext`, asks the same command
classes to :meth:`plan` the same shares, then executes them for real —
either in-process (``executor="serial"``) or fanned out to worker
processes over a shared-memory block store (``executor="process"``).
Both executors interpret identical op streams over identical bytes, so
their merged results are byte-identical; the serial executor is the
reference the equivalence tests pin the process pool against.

Observability lands in :mod:`repro.obs`: every run opens a wall-clock
span, each share's worker-measured interval is imported as a child span
(``parallel-share``), and counters/histograms for shares, block loads
and share seconds accumulate in a :class:`~repro.obs.MetricsRegistry`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..core.commands import Command, CommandContext, CommandRegistry, lpt_order
from ..core.costs import DEFAULT_COSTS, CostModel
from ..io.dataset_io import DatasetStore
from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanTracer
from .dynamic import CostFeedback, TaskResult, is_dynamic, payload_lists
from .pipeline import BlockPipeline
from .pool import ProcessWorkerPool, ShareResult, pick_start_method
from .runner import DirectRunner, ShareRun
from .shm import ShmBlockStore

__all__ = ["ParallelExtractor", "ParallelResult", "EXECUTORS", "SCHEDULES"]

EXECUTORS = ("serial", "process")
SCHEDULES = ("static", "dynamic", "dynamic+pipeline")


@dataclass
class ParallelResult:
    """One extraction: the merged result plus its execution record."""

    command: str
    executor: str
    group_size: int
    result: Any
    shares: list[ShareResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    schedule: str = "static"

    @property
    def n_payloads(self) -> int:
        return sum(len(s.payloads) for s in self.shares)

    @property
    def n_loads(self) -> int:
        return sum(s.n_loads for s in self.shares)

    @property
    def share_seconds(self) -> list[float]:
        return [s.seconds for s in self.shares]

    @property
    def idle_seconds(self) -> float:
        """Total worker idle (claim-lock waits plus post-drain tails)."""
        return sum(s.idle_s for s in self.shares)

    @property
    def steals(self) -> int:
        """Tasks executed beyond static fair shares, summed over workers."""
        return sum(s.steals for s in self.shares)


def _as_shm_store(data: Any, time_indices: Iterable[int] | None) -> tuple[ShmBlockStore, bool]:
    """Coerce any supported dataset handle into a shared-memory store.

    Returns ``(store, owned)`` — an already-shared store is borrowed,
    everything else is loaded and owned (cleaned up on ``close``).
    """
    if isinstance(data, ShmBlockStore):
        return data, False
    if isinstance(data, DatasetStore):
        return ShmBlockStore.from_store(data, time_indices), True
    if hasattr(data, "item_sequence") and hasattr(data, "handles"):
        return ShmBlockStore.from_source(data, time_indices), True
    if hasattr(data, "build_block") and hasattr(data, "spec"):
        from ..dms.source import SyntheticSource

        return ShmBlockStore.from_source(SyntheticSource(data), time_indices), True
    raise TypeError(
        f"cannot build a ShmBlockStore from {type(data).__name__}; "
        "pass a DatasetStore, a BlockSource, a SyntheticDataset or a "
        "ShmBlockStore"
    )


class ParallelExtractor:
    """Run post-processing commands on real cores over shared memory.

    Parameters
    ----------
    data:
        A :class:`~repro.io.DatasetStore`, any
        :class:`~repro.dms.source.BlockSource`, a
        :class:`~repro.synth.base.SyntheticDataset` or a prebuilt
        :class:`ShmBlockStore`.
    workers:
        Work-group size (defaults to ``os.cpu_count()``).
    executor:
        ``"process"`` fans shares out to worker processes;
        ``"serial"`` runs them in-process over the same shared store.
    """

    def __init__(
        self,
        data: Any,
        workers: int | None = None,
        executor: str = "process",
        registry: CommandRegistry | None = None,
        costs: CostModel = DEFAULT_COSTS,
        time_indices: Iterable[int] | None = None,
        observe: bool = True,
        start_method: str | None = None,
        profile_interval: float | None = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store, self._owns_store = _as_shm_store(data, time_indices)
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.executor = executor
        if registry is None:
            from ..commands import default_registry

            registry = default_registry()
        self.registry = registry
        self.costs = costs
        self.start_method = pick_start_method(start_method)
        self.tracer = SpanTracer(clock=time.perf_counter, enabled=observe)
        self.metrics = MetricsRegistry()
        #: seconds between stack samples in every executor (worker
        #: processes *and* the serial path); None disables profiling.
        self.profile_interval = profile_interval
        #: collapsed stacks aggregated across all shares of all runs.
        self.folded: dict[str, int] = {}
        self._pool: ProcessWorkerPool | None = None
        #: serial-executor runner, kept across run() calls so its
        #: ComputeCached memo (e.g. progressive pyramids) survives
        #: interactive re-extraction with new parameters.
        self._serial_runner: DirectRunner | None = None
        #: measured per-task costs from prior dynamic runs; like the
        #: serial runner's memo it lives as long as the extractor, so a
        #: parameter sweep's second run places work from real timings.
        self.cost_feedback = CostFeedback()
        self._closed = False

    # ------------------------------------------------------------ context
    def _context(self, params: dict[str, Any]) -> CommandContext:
        """Mirror :meth:`Scheduler._context` over the shared store."""
        loaded = self.store.time_indices
        if not loaded:
            raise ValueError("shared store holds no time levels")
        t0, t1 = params.get("time_range", (loaded[0], loaded[-1] + 1))
        if not loaded[0] <= t0 < t1 <= loaded[-1] + 1:
            raise ValueError(
                f"invalid time_range ({t0}, {t1}); store holds {loaded}"
            )
        handles_by_time = [self.store.handles(t) for t in range(t0, t1)]
        return CommandContext(
            dataset=self.store.name,
            handles_by_time=handles_by_time,
            params=dict(params),
            costs=self.costs,
            time_offset=t0,
            times=list(self.store.times[t0:t1]),
        )

    # ---------------------------------------------------------------- run
    def run(
        self,
        command: str | Command,
        params: dict[str, Any] | None = None,
        group_size: int | None = None,
        schedule: str | None = None,
        **command_kwargs: Any,
    ) -> ParallelResult:
        """Plan, execute and merge one command; see module docstring.

        ``schedule`` (also accepted as ``params["schedule"]``) selects
        the execution strategy: the default ``"static"`` pre-splits one
        share per worker exactly like the DES scheduler; ``"dynamic"``
        drains fine-grained :meth:`~Command.plan_tasks` tasks from a
        shared counter in LPT order (work stealing + cost-feedback
        placement); ``"dynamic+pipeline"`` additionally double-buffers
        block materialization against extraction.  Merged bytes are
        identical across all three.  Values other than these three are
        left alone for commands with private ``schedule`` params (the
        progressive command's ``"level-major"``).
        """
        self._check_open()
        params = dict(params or {})
        if schedule is not None:
            params["schedule"] = schedule
        sched = params.get("schedule", "static")
        if isinstance(command, str):
            cmd = self.registry.create(command, **command_kwargs)
        else:
            if command_kwargs:
                raise TypeError("command_kwargs only apply to registry names")
            cmd = command
        group = group_size if group_size is not None else self.workers
        ctx = self._context(params)
        dynamic = is_dynamic(sched)
        run_span = self.tracer.begin(
            "parallel-run",
            cmd.name,
            executor=self.executor,
            group_size=group,
            schedule=str(sched) if dynamic else "static",
        )
        t0 = time.perf_counter()
        if dynamic:
            merged, results = self._run_dynamic(cmd, ctx, group, str(sched))
        else:
            assignments = cmd.plan(ctx, group)
            if self.executor == "process":
                results = self._run_process(cmd, ctx, assignments)
            else:
                results = self._run_serial(cmd, ctx, assignments)
            merged = cmd.merge([list(r.payloads) for r in results])
        if self.executor == "process" and results:
            # Tail idle: a worker is done when its share/drain ends but
            # the run lasts until the slowest one finishes.
            t_max = max(r.t_end for r in results)
            for res in results:
                res.idle_s += t_max - res.t_end
        wall = time.perf_counter() - t0
        self.tracer.end(run_span, n_shares=len(results))
        self._record(cmd.name, results, wall, run_span)
        return ParallelResult(
            command=cmd.name,
            executor=self.executor,
            group_size=group,
            result=merged,
            shares=results,
            wall_seconds=wall,
            schedule=str(sched) if dynamic else "static",
        )

    def _run_dynamic(
        self, cmd: Command, ctx: CommandContext, group: int, sched: str
    ) -> tuple[Any, list[ShareResult]]:
        """Work-stealing execution: LPT-ordered tasks, canonical merge."""
        tasks = cmd.plan_tasks(ctx)
        estimates = self.cost_feedback.estimates(cmd, ctx, tasks)
        order = lpt_order(estimates)
        pipeline = sched == "dynamic+pipeline"
        if self.executor == "process":
            results = self._ensure_pool().run_tasks(
                cmd, ctx, tasks, order, pipeline=pipeline
            )
        else:
            results = self._run_serial_dynamic(cmd, ctx, tasks, order, pipeline)
        records = [rec for res in results for rec in (res.tasks or [])]
        self.cost_feedback.record(cmd.name, records, len(tasks))
        merged = cmd.merge(payload_lists(records, len(tasks)))
        return merged, results

    def _run_serial_dynamic(
        self,
        cmd: Command,
        ctx: CommandContext,
        tasks: Sequence[Any],
        order: Sequence[int],
        pipeline: bool,
    ) -> list[ShareResult]:
        """One in-process drain: same task order and merge keys as the
        pool path, so serial dynamic is its byte-identical reference."""
        provider = lambda item: self.store.get_block(
            int(item.param("time")), int(item.param("block"))
        )
        pl = BlockPipeline(provider) if pipeline else None
        runner = DirectRunner(provider, pipeline=pl)
        records: list[TaskResult] = []
        payloads: list[Any] = []
        n_loads = n_computes = n_emits = emitted_nbytes = 0
        t_run0 = time.perf_counter()
        try:
            for qpos, pos in enumerate(order):
                if pl is not None:
                    # Current task's items first (FIFO pending order),
                    # then the next task's so the background thread can
                    # work one block ahead.
                    pl.schedule(cmd.item_sequence_for(ctx, tasks[pos]))
                    if qpos + 1 < len(order):
                        pl.schedule(
                            cmd.item_sequence_for(ctx, tasks[order[qpos + 1]])
                        )
                t0 = time.perf_counter()
                run: ShareRun = runner.run_share(cmd, ctx, tasks[pos], 0)
                t1 = time.perf_counter()
                records.append(
                    TaskResult(
                        task_index=pos,
                        payloads=run.payloads,
                        n_loads=run.n_loads,
                        n_computes=run.n_computes,
                        n_emits=run.n_emits,
                        emitted_nbytes=run.emitted_nbytes,
                        seconds=t1 - t0,
                    )
                )
                payloads.extend(run.payloads)
                n_loads += run.n_loads
                n_computes += run.n_computes
                n_emits += run.n_emits
                emitted_nbytes += run.emitted_nbytes
        finally:
            if pl is not None:
                pl.close()
        t_run1 = time.perf_counter()
        return [
            ShareResult(
                share_index=0,
                payloads=payloads,
                n_loads=n_loads,
                n_computes=n_computes,
                n_emits=n_emits,
                emitted_nbytes=emitted_nbytes,
                t_start=t_run0,
                t_end=t_run1,
                pid=os.getpid(),
                tasks=records,
            )
        ]

    def _run_serial(
        self, cmd: Command, ctx: CommandContext, assignments: Sequence[Any]
    ) -> list[ShareResult]:
        if self._serial_runner is None:
            self._serial_runner = DirectRunner(
                lambda item: self.store.get_block(
                    int(item.param("time")), int(item.param("block"))
                )
            )
        runner = self._serial_runner
        results: list[ShareResult] = []
        for i, assignment in enumerate(assignments):
            sampler = None
            if self.profile_interval is not None:
                from ..obs.profiling import StackSampler

                sampler = StackSampler(interval=self.profile_interval).start()
            t_start = time.perf_counter()
            run: ShareRun = runner.run_share(cmd, ctx, assignment, i)
            t_end = time.perf_counter()
            folded = sampler.stop() if sampler is not None else None
            results.append(
                ShareResult(
                    share_index=i,
                    payloads=run.payloads,
                    n_loads=run.n_loads,
                    n_computes=run.n_computes,
                    n_emits=run.n_emits,
                    emitted_nbytes=run.emitted_nbytes,
                    t_start=t_start,
                    t_end=t_end,
                    pid=os.getpid(),
                    folded=folded,
                )
            )
        return results

    def _run_process(
        self, cmd: Command, ctx: CommandContext, assignments: Sequence[Any]
    ) -> list[ShareResult]:
        return self._ensure_pool().run_shares(cmd, ctx, assignments)

    # --------------------------------------------------------- precompute
    def precompute(
        self, field_name: str = "lambda2", velocity: str = "velocity"
    ) -> int:
        """Derive ``field_name`` once per block into shared memory.

        Returns the number of blocks processed.  Fanned across the pool
        under ``executor="process"`` (the pool is rebuilt afterwards so
        workers attach the new segments), in-process otherwise.
        """
        self._check_open()
        keys = [
            key
            for key in self.store.keys()
            if field_name not in self.store.derived_fields(*key)
        ]
        if not keys:
            return 0
        with self.tracer.span("parallel-precompute", field_name, n_blocks=len(keys)):
            if self.executor == "process":
                # The pool survives: tasks ship the derived manifest and
                # workers sync-attach the new segments on first use.
                self._ensure_pool().derive_field(keys, field_name, velocity)
            else:
                from ..algorithms.lambda2 import lambda2_field

                if field_name != "lambda2":
                    raise ValueError(f"unknown derived field {field_name!r}")
                for t, b in keys:
                    block = self.store.get_block(t, b)
                    self.store.add_derived_field(
                        t, b, field_name, lambda2_field(block, velocity)
                    )
        gauge = self.metrics.gauge(
            "parallel_shm_bytes", help="bytes resident in the shared block store"
        )
        gauge.set(self.store.nbytes)
        return len(keys)

    # -------------------------------------------------------------- obs
    def _record(
        self, command: str, results: Sequence[ShareResult], wall: float, run_span
    ) -> None:
        labels = {"command": command, "executor": self.executor}
        self.metrics.counter(
            "parallel_runs_total", labels, help="extraction runs"
        ).inc()
        shares = self.metrics.counter(
            "parallel_shares_total", labels, help="executed work-group shares"
        )
        loads = self.metrics.counter(
            "parallel_blocks_loaded_total", labels, help="block loads by workers"
        )
        seconds = self.metrics.histogram(
            "parallel_share_seconds", labels=labels, help="per-share wall seconds"
        )
        idle = self.metrics.counter(
            "viracocha_parallel_idle_seconds_total",
            labels,
            help="seconds workers spent idle (claim waits + run tails)",
        )
        steals = self.metrics.counter(
            "viracocha_parallel_steals_total",
            labels,
            help="tasks executed beyond a worker's static fair share",
        )
        t_max = max((r.t_end for r in results), default=0.0)
        for res in results:
            shares.inc()
            loads.inc(res.n_loads)
            seconds.observe(res.seconds)
            idle.inc(res.idle_s)
            steals.inc(res.steals)
            if res.folded:
                from ..obs.profiling import merge_folded

                self.folded = merge_folded([self.folded, res.folded])
            self.tracer.record_interval(
                "parallel-share",
                f"{command}/share{res.share_index}",
                t_start=res.t_start,
                t_end=res.t_end,
                node=res.share_index,
                parent=run_span,
                pid=res.pid,
                n_loads=res.n_loads,
                n_emits=res.n_emits,
            )
            if res.idle_s > 0.0:
                # Anchored at the run tail (duration is what the
                # critical path folds into the queue phase).
                self.tracer.record_interval(
                    "parallel-idle",
                    f"{command}/share{res.share_index}",
                    t_start=max(t_max - res.idle_s, res.t_start),
                    t_end=t_max,
                    node=res.share_index,
                    parent=run_span,
                    idle_s=res.idle_s,
                    steals=res.steals,
                )
        self.metrics.histogram(
            "parallel_run_seconds", labels=labels, help="whole-run wall seconds"
        ).observe(wall)
        self.metrics.gauge(
            "parallel_shm_bytes", help="bytes resident in the shared block store"
        ).set(self.store.nbytes)

    def write_flamegraph(self, path_or_file) -> int:
        """Write the aggregated collapsed-stack profile (all workers).

        Output is ``flamegraph.pl`` / speedscope input; returns the
        number of distinct stacks written.  Requires the extractor to
        have been built with ``profile_interval`` set.
        """
        from ..obs.profiling import write_folded

        if self.profile_interval is None:
            raise RuntimeError(
                "profiling disabled; pass profile_interval to ParallelExtractor"
            )
        return write_folded(path_or_file, self.folded)

    # ---------------------------------------------------------- plumbing
    def _ensure_pool(self) -> ProcessWorkerPool:
        if self._pool is None or self._pool.closed:
            self._pool = ProcessWorkerPool(
                self.store, self.workers, start_method=self.start_method,
                profile_interval=self.profile_interval,
            )
        return self._pool

    def _close_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ParallelExtractor is closed")

    def close(self) -> None:
        """Shut the pool down and release shared memory (if owned)."""
        if self._closed:
            return
        self._closed = True
        self._close_pool()
        if self._owns_store:
            self.store.cleanup()

    def __enter__(self) -> "ParallelExtractor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
