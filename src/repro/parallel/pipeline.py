"""Load/compute pipelining: background block materialization.

The shared-memory store hands out zero-copy ``<f4`` views; the real
"load" cost of the direct path is the float64 upcast each field pays on
first touch (plus any provider-side work such as grafting derived
fields).  :class:`BlockPipeline` overlaps that cost with computation:
a single background thread materializes the *next* block's fields while
the caller extracts the current one — the sliding-window staging idea
of the Mundani et al. HPC work, double-buffered.

The upcast (`astype` on a large array) releases the GIL, so the overlap
is real parallelism, not time slicing.  Determinism is preserved by
construction: the pipeline returns exactly the object the provider
built, with the same float64 arrays the lazy field map would have
materialized on demand — pre-touching fields changes *when* the copy
happens, never its bytes.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Iterable

from ..dms.items import ItemName

__all__ = ["BlockPipeline"]


def _materialize(block: Any) -> Any:
    """Touch every field, forcing the lazy ``<f4`` → float64 upcast."""
    fields = getattr(block, "fields", None)
    if fields is not None:
        for name in list(fields):
            fields[name]
    return block


class BlockPipeline:
    """Double-buffered background prefetch of provider blocks.

    Parameters
    ----------
    provider:
        ``item -> block`` callable (the same signature
        :class:`~repro.parallel.runner.DirectRunner` takes).
    depth:
        Number of materialized blocks held ahead of consumption
        (default 1: classic double buffering — one in flight while one
        is being consumed).
    """

    def __init__(self, provider: Callable[[ItemName], Any], depth: int = 1):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.provider = provider
        self.depth = depth
        self.hits = 0
        self.misses = 0
        self._cv = threading.Condition()
        self._pending: deque[ItemName] = deque()
        self._ready: dict[ItemName, Any] = {}
        self._inflight: ItemName | None = None
        self._error: BaseException | None = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name="block-pipeline", daemon=True
        )
        self._thread.start()

    # ----------------------------------------------------------- frontend
    def schedule(self, items: Iterable[ItemName] | None) -> None:
        """Queue upcoming items for background materialization.

        Items already pending, in flight or ready are skipped, so
        overlapping schedules (e.g. a share's full sequence plus the
        next task's head) are cheap and idempotent.
        """
        if not items:
            return
        with self._cv:
            if self._closed:
                return
            known = set(self._pending)
            known.update(self._ready)
            if self._inflight is not None:
                known.add(self._inflight)
            for item in items:
                if item not in known:
                    self._pending.append(item)
                    known.add(item)
            self._cv.notify_all()

    def get(self, item: ItemName) -> Any:
        """The block for ``item`` — pipelined when available.

        Ready blocks are handed over directly (a *hit*); an in-flight
        item is waited for (still a hit — the wait is the residual load
        time compute did not cover).  Anything else loads inline through
        the provider (a *miss*), including items still queued but not
        started: skipping ahead of the background thread would reorder
        nothing but would serialize behind its current block.
        """
        with self._cv:
            if self._error is not None:
                raise self._error
            while self._inflight == item and item not in self._ready:
                self._cv.wait()
                if self._error is not None:
                    raise self._error
            if item in self._ready:
                self.hits += 1
                block = self._ready.pop(item)
                self._cv.notify_all()
                return block
            try:
                self._pending.remove(item)
            except ValueError:
                pass
            self.misses += 1
        return self.provider(item)

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._pending.clear()
            self._cv.notify_all()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "BlockPipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------- backend
    def _loop(self) -> None:
        while True:
            with self._cv:
                while not self._closed and (
                    not self._pending or len(self._ready) >= self.depth
                ):
                    self._cv.wait()
                if self._closed:
                    return
                item = self._pending.popleft()
                self._inflight = item
            try:
                block = _materialize(self.provider(item))
            except BaseException as exc:  # surfaced on the next get()
                with self._cv:
                    self._error = exc
                    self._inflight = None
                    self._cv.notify_all()
                return
            with self._cv:
                self._ready[item] = block
                self._inflight = None
                self._cv.notify_all()
