"""Dynamic work-stealing scheduling for the multicore executor.

The static model (one pre-baked share per worker) strands cores on
skewed workloads: whichever worker drew the dense blocks grinds while
the rest sit idle.  The dynamic scheduler breaks a command's plan into
fine-grained tasks (:meth:`~repro.core.commands.Command.plan_tasks`),
orders them heaviest-first (LPT over estimated costs — the classic
bound on residual imbalance), and lets workers *drain* them from a
shared ticket counter in worker-local batches.  Stealing is implicit:
a worker that finishes early simply claims the next batch.

Determinism: task execution order varies with OS scheduling, but every
task's payloads are keyed by its canonical index and reassembled in
canonical order before merging (:func:`payload_lists`), so the merged
output is byte-identical to a serial single-share run no matter which
worker ran what, when.

Cost feedback: per-task wall seconds measured by the workers feed a
:class:`CostFeedback` store kept on the extractor instance (the same
lifetime as the DirectRunner's ComputeCached memo), so repeated runs —
interactive parameter sweeps — start their expensive blocks first from
*measured* costs instead of model estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..core.commands import Command, CommandContext, lpt_order

__all__ = [
    "DYNAMIC_SCHEDULES",
    "SCHEDULES",
    "TaskResult",
    "CostFeedback",
    "is_dynamic",
    "default_batch",
    "payload_lists",
]

#: ``schedule`` values that activate the dynamic scheduler; anything
#: else (including other commands' private schedule params, e.g. the
#: progressive command's "level-major") keeps the static path.
DYNAMIC_SCHEDULES = ("dynamic", "dynamic+pipeline")
SCHEDULES = ("static",) + DYNAMIC_SCHEDULES


def is_dynamic(schedule: Any) -> bool:
    return str(schedule) in DYNAMIC_SCHEDULES


def default_batch(n_tasks: int, n_workers: int) -> int:
    """Worker-local batch size bounding ticket-counter synchronization.

    Small enough that the tail of the run still load-balances (each
    worker gets several claim opportunities), large enough that the
    shared counter is touched O(workers) times, not O(tasks).
    """
    return max(1, n_tasks // (max(n_workers, 1) * 8))


@dataclass
class TaskResult:
    """One task's payloads plus its execution record."""

    task_index: int  #: canonical index into ``plan_tasks`` order
    payloads: list[Any]
    n_loads: int = 0
    n_computes: int = 0
    n_emits: int = 0
    emitted_nbytes: int = 0
    seconds: float = 0.0  #: measured wall seconds (feeds CostFeedback)


def payload_lists(results: Sequence[TaskResult], n_tasks: int) -> list[list[Any]]:
    """Per-task payloads reassembled in canonical task order.

    Feeding this to :meth:`Command.merge` yields the same flat payload
    sequence a serial single-share run produces, hence byte-identical
    merged output.  Raises if any task is missing or duplicated — a
    dynamic run must account for every ticket exactly once.
    """
    ordered: list[list[Any] | None] = [None] * n_tasks
    for res in results:
        if not 0 <= res.task_index < n_tasks:
            raise ValueError(f"task index {res.task_index} out of range {n_tasks}")
        if ordered[res.task_index] is not None:
            raise ValueError(f"task {res.task_index} executed twice")
        ordered[res.task_index] = list(res.payloads)
    missing = [i for i, p in enumerate(ordered) if p is None]
    if missing:
        raise ValueError(f"tasks never executed: {missing}")
    return ordered  # type: ignore[return-value]


@dataclass
class CostFeedback:
    """Measured per-task seconds from prior runs, keyed by plan shape.

    Keys are ``(command_name, n_tasks)`` so a recorded profile only
    seeds runs whose task decomposition matches (same dataset slice and
    granularity); parameter changes that keep the block set — threshold
    sweeps, isovalue scrubbing — reuse it, which is exactly the
    interactive re-extraction loop the paper cares about.
    """

    _measured: dict[tuple[str, int], list[float]] = field(default_factory=dict)

    def record(self, command: str, results: Sequence[TaskResult], n_tasks: int) -> None:
        profile = self._measured.setdefault((command, n_tasks), [0.0] * n_tasks)
        for res in results:
            profile[res.task_index] = res.seconds

    def recorded(self, command: str, n_tasks: int) -> list[float] | None:
        return self._measured.get((command, n_tasks))

    def estimates(
        self,
        command: Command,
        ctx: CommandContext,
        tasks: Sequence[Any],
    ) -> list[float]:
        """Per-task cost estimates: measured when available, model else."""
        profile = self.recorded(command.name, len(tasks))
        if profile is not None and any(s > 0.0 for s in profile):
            return list(profile)
        return [command.task_cost(ctx, task) for task in tasks]


def execution_order(costs: Sequence[float]) -> list[int]:
    """LPT execution order with pinned tie-breaks (see ``lpt_order``)."""
    return lpt_order(costs)
