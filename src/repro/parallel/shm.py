"""Shared-memory block store: one copy of the data for every core.

The paper's Viracocha runs its work group as MPI processes on a PC
cluster; the framework here additionally fans extraction out to real
local cores (:mod:`repro.parallel.pool`).  Worker processes must not
each re-read and re-parse the dataset, so this module places every
block's serialized payload — the exact ``<f4`` on-disk layout of
:mod:`repro.io.format` — into :mod:`multiprocessing.shared_memory`
segments.  Workers attach by name and reconstruct zero-copy
:class:`~repro.grids.block.LazyStructuredBlock` views over the shared
pages: no pickling of arrays, no per-worker copies, fields upcast to
float64 only when an algorithm touches them.

Derived fields (a precomputed λ2 scalar, say) are stored in separate
float64 segments and grafted onto the reconstructed blocks, so a
threshold sweep pays the eigenvalue pass once per block instead of once
per sweep point.  float64 matters: results must stay byte-identical to
a serial run that computes λ2 in place.

Ownership: the process that creates the store owns the segments and is
the only one that unlinks them (workers attach/close only).  Under the
default ``fork`` start method all processes share one resource-tracker,
whose registry is a set — duplicate registrations from workers collapse
and the parent's single :meth:`unlink` retires each name cleanly, so
the interpreter exits without leaked ``shared_memory`` warnings.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..grids.block import BlockHandle, LazyStructuredBlock
from ..io.dataset_io import DatasetStore
from ..io.format import block_from_buffer, block_to_bytes

__all__ = ["ShmBlockStore"]


def _new_segment(payload_nbytes: int) -> shared_memory.SharedMemory:
    # Auto-generated names ("psm_...") are unique per boot; sizes may
    # round up to a page, which block_from_buffer tolerates.
    return shared_memory.SharedMemory(create=True, size=max(payload_nbytes, 1))


#: segments that could not unmap because a caller still holds NumPy
#: views into them.  Keeping the wrapper alive parks the mapping until
#: process exit (the OS reclaims it then) instead of letting a later GC
#: run ``SharedMemory.__del__`` against live views, which raises an
#: unraisable ``BufferError``.  The names are already unlinked, so this
#: holds pages, never files.
_PINNED_SEGMENTS: list[shared_memory.SharedMemory] = []


class ShmBlockStore:
    """Block payloads in shared memory, viewable from any process.

    Build with :meth:`from_store` (mmap fast path) or
    :meth:`from_source` (any :class:`~repro.dms.source.BlockSource`),
    ship :meth:`manifest` to workers, :meth:`attach` there, and
    :meth:`get_block` everywhere.  The creator should ``close()`` +
    ``unlink()`` (or use the store as a context manager) when done.
    """

    def __init__(self) -> None:
        self.name: str = ""
        self.times: list[float] = []
        self._segments: dict[tuple[int, int], shared_memory.SharedMemory] = {}
        self._payload_sizes: dict[tuple[int, int], int] = {}
        self._derived: dict[
            tuple[int, int], dict[str, tuple[shared_memory.SharedMemory, tuple]]
        ] = {}
        self._handles: dict[int, list[BlockHandle]] = {}
        self._owner = False
        self._closed = False

    # ------------------------------------------------------ construction
    @classmethod
    def from_store(
        cls, store: DatasetStore, time_indices: Iterable[int] | None = None
    ) -> "ShmBlockStore":
        """Load an on-disk dataset into shared memory.

        Uses the mmap-backed :meth:`~repro.io.DatasetStore.block_buffer`
        fast path: file pages are copied straight into the segment, with
        no ``BytesIO``, no parse and no float64 upcast in the parent.
        """
        self = cls()
        self._owner = True
        self.name = store.name
        self.times = store.times
        indices = list(time_indices) if time_indices is not None else list(
            range(store.n_timesteps)
        )
        for t in indices:
            self._handles[t] = store.handles(t)
            for b in range(store.n_blocks):
                buf = store.block_buffer(t, b)
                try:
                    shm = _new_segment(len(buf))
                    shm.buf[: len(buf)] = buf
                finally:
                    buf.release()
                self._segments[(t, b)] = shm
                self._payload_sizes[(t, b)] = shm.size
        return self

    @classmethod
    def from_source(
        cls, source: Any, time_indices: Iterable[int] | None = None
    ) -> "ShmBlockStore":
        """Load any :class:`~repro.dms.source.BlockSource` into shm.

        Sources that expose ``get_bytes`` (the :class:`StoreSource`
        zero-copy path) feed segments directly from their buffers;
        others (synthetic generators) serialize each block once through
        :func:`~repro.io.format.block_to_bytes` — note that casts
        in-memory float64 fields to the canonical ``<f4`` layout.
        """
        self = cls()
        self._owner = True
        self.name = source.name
        self.times = list(source.times)
        indices = list(time_indices) if time_indices is not None else list(
            range(source.n_timesteps)
        )
        get_bytes = getattr(source, "get_bytes", None)
        for t in indices:
            self._handles[t] = source.handles(t)
            for item in source.item_sequence(t):
                b = int(item.param("block"))
                if get_bytes is not None:
                    buf = memoryview(get_bytes(item))
                    try:
                        shm = _new_segment(len(buf))
                        shm.buf[: len(buf)] = buf
                    finally:
                        buf.release()
                else:
                    payload = block_to_bytes(source.get(item))
                    shm = _new_segment(len(payload))
                    shm.buf[: len(payload)] = payload
                self._segments[(t, b)] = shm
                self._payload_sizes[(t, b)] = shm.size
        return self

    @classmethod
    def attach(cls, manifest: Mapping[str, Any]) -> "ShmBlockStore":
        """Open an existing store from its picklable :meth:`manifest`."""
        self = cls()
        self.name = manifest["name"]
        self.times = list(manifest["times"])
        self._handles = {int(t): list(hs) for t, hs in manifest["handles"].items()}
        for key, (seg_name, nbytes) in manifest["segments"].items():
            self._segments[key] = shared_memory.SharedMemory(name=seg_name)
            self._payload_sizes[key] = nbytes
        for key, fields in manifest["derived"].items():
            per_block = {}
            for fname, (seg_name, shape) in fields.items():
                per_block[fname] = (
                    shared_memory.SharedMemory(name=seg_name),
                    tuple(shape),
                )
            self._derived[key] = per_block
        return self

    def manifest(self) -> dict[str, Any]:
        """Everything a worker needs to :meth:`attach`, plain data."""
        return {
            "name": self.name,
            "times": list(self.times),
            "handles": {t: list(hs) for t, hs in self._handles.items()},
            "segments": {
                key: (shm.name, self._payload_sizes[key])
                for key, shm in self._segments.items()
            },
            "derived": {
                key: {
                    fname: (shm.name, tuple(shape))
                    for fname, (shm, shape) in fields.items()
                }
                for key, fields in self._derived.items()
            },
        }

    # ----------------------------------------------------------- derived
    def add_derived_field(
        self, time_index: int, block_id: int, name: str, data: np.ndarray
    ) -> None:
        """Store a derived float64 field for one block in its own segment.

        float64 (not the on-disk ``<f4``) so that commands consuming the
        field produce bytes identical to computing it in place.
        """
        key = (time_index, block_id)
        if key not in self._segments:
            raise KeyError(f"no block t={time_index} b={block_id} in store")
        data = np.ascontiguousarray(data, dtype=np.float64)
        shm = _new_segment(data.nbytes)
        staged = np.frombuffer(shm.buf, dtype=np.float64, count=data.size)
        staged.reshape(data.shape)[...] = data
        del staged
        self._derived.setdefault(key, {})[name] = (shm, data.shape)

    def derived_fields(self, time_index: int, block_id: int) -> list[str]:
        return sorted(self._derived.get((time_index, block_id), {}))

    def derived_manifest(self) -> dict[tuple[int, int], dict[str, tuple]]:
        """The derived-field entries of :meth:`manifest`, standalone.

        Small and picklable — the pool ships it with every task so
        long-lived workers can :meth:`sync_derived` segments created
        *after* they attached, without rebuilding the pool.
        """
        return {
            key: {
                fname: (shm.name, tuple(shape))
                for fname, (shm, shape) in fields.items()
            }
            for key, fields in self._derived.items()
        }

    def sync_derived(self, derived: Mapping[tuple[int, int], dict]) -> None:
        """Attach any derived segments this process hasn't mapped yet."""
        for key, fields in derived.items():
            per_block = self._derived.setdefault(key, {})
            for fname, (seg_name, shape) in fields.items():
                if fname not in per_block:
                    per_block[fname] = (
                        shared_memory.SharedMemory(name=seg_name),
                        tuple(shape),
                    )

    # ------------------------------------------------------------ access
    def get_block(self, time_index: int, block_id: int) -> LazyStructuredBlock:
        """A zero-copy lazy block viewing the shared pages.

        The views are read-only (``toreadonly`` on the segment buffer):
        a worker scribbling on a field would otherwise corrupt every
        other worker's input.
        """
        key = (time_index, block_id)
        try:
            shm = self._segments[key]
        except KeyError:
            raise KeyError(f"no block t={time_index} b={block_id} in store") from None
        block = block_from_buffer(shm.buf.toreadonly(), lazy=True)
        for fname, (dshm, shape) in self._derived.get(key, {}).items():
            n = 1
            for dim in shape:
                n *= dim
            view = np.frombuffer(dshm.buf.toreadonly(), dtype=np.float64, count=n)
            block.attach_raw_field(fname, view.reshape(shape))
        return block

    def handles(self, time_index: int = 0) -> list[BlockHandle]:
        try:
            return list(self._handles[time_index])
        except KeyError:
            raise IndexError(
                f"time index {time_index} not loaded; have {sorted(self._handles)}"
            ) from None

    def keys(self) -> list[tuple[int, int]]:
        return sorted(self._segments)

    @property
    def time_indices(self) -> list[int]:
        return sorted(self._handles)

    @property
    def n_timesteps(self) -> int:
        return len(self.times)

    @property
    def n_blocks(self) -> int:
        if not self._handles:
            return 0
        return len(next(iter(self._handles.values())))

    @property
    def nbytes(self) -> int:
        """Total shared bytes (block payloads plus derived fields)."""
        total = sum(shm.size for shm in self._segments.values())
        for fields in self._derived.values():
            total += sum(shm.size for shm, _shape in fields.values())
        return total

    @property
    def n_segments(self) -> int:
        return len(self._segments) + sum(len(f) for f in self._derived.values())

    # ----------------------------------------------------------- cleanup
    def _all_segments(self) -> Iterable[shared_memory.SharedMemory]:
        yield from self._segments.values()
        for fields in self._derived.values():
            for shm, _shape in fields.values():
                yield shm

    def close(self) -> None:
        """Unmap this process's views (safe to call repeatedly)."""
        if self._closed:
            return
        for shm in self._all_segments():
            try:
                shm.close()
            except BufferError:
                # A caller still holds a NumPy view into the segment.
                # Pin the wrapper for the rest of the process so the
                # mapping outlives the views; unlink() below retires
                # the name regardless.
                _PINNED_SEGMENTS.append(shm)
        self._closed = True

    def unlink(self) -> None:
        """Retire the segment names (owner only; attached stores no-op)."""
        if not self._owner:
            return
        for shm in self._all_segments():
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._owner = False

    def cleanup(self) -> None:
        self.close()
        self.unlink()

    def __enter__(self) -> "ShmBlockStore":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()

    def __repr__(self) -> str:
        return (
            f"ShmBlockStore(name={self.name!r}, blocks={len(self._segments)}, "
            f"derived={sum(len(f) for f in self._derived.values())}, "
            f"nbytes={self.nbytes})"
        )
