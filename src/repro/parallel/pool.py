"""Process-pool execution of command shares over shared memory.

The pool mirrors the paper's work group on real local cores: the parent
plans shares exactly like the scheduler, each worker process attaches
the :class:`~repro.parallel.shm.ShmBlockStore` once (pool initializer),
interprets its share with a :class:`~repro.parallel.runner.DirectRunner`
and ships back only the extracted payloads — meshes, pathlines — never
block data.  Results are collected in share-index order, so the merged
output is byte-identical to the serial path regardless of which worker
finished first.

Worker wall times are measured with ``time.perf_counter``
(CLOCK_MONOTONIC on Linux, comparable across processes on one host) and
returned with each share so the parent can import them as spans.

A worker process dying mid-share (crash, ``os._exit``, OOM-kill)
surfaces as :class:`WorkerPoolError`; the pool shuts down its remaining
processes first so nothing leaks.  Ordinary exceptions raised by a
command propagate unchanged.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Sequence

from ..core.commands import Command, CommandContext
from ..dms.items import ItemName
from .runner import DirectRunner, ShareRun
from .shm import ShmBlockStore

__all__ = ["ProcessWorkerPool", "ShareResult", "WorkerPoolError", "pick_start_method"]


class WorkerPoolError(RuntimeError):
    """A worker process died before finishing its share."""


@dataclass
class ShareResult:
    """One share's payloads plus the worker-side execution record."""

    share_index: int
    payloads: list[Any]
    n_loads: int
    n_computes: int
    n_emits: int
    emitted_nbytes: int
    #: worker-process wall-clock interval (perf_counter seconds).
    t_start: float
    t_end: float
    pid: int
    #: collapsed-stack sample counts from the worker-side sampling
    #: profiler (None unless the pool was built with profiling on).
    folded: dict | None = None

    @property
    def seconds(self) -> float:
        return self.t_end - self.t_start


def pick_start_method(requested: str | None = None) -> str:
    """``fork`` when the platform has it (workers inherit the attached
    segments and the imported numerics for free), else ``spawn``."""
    if requested is not None:
        return requested
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# Per-worker-process state, set once by the pool initializer.  A module
# global (not a closure) so spawned workers can find it after import.
_WORKER_STORE: ShmBlockStore | None = None
_PROFILE_INTERVAL: float | None = None


def _pool_init(manifest: dict, profile_interval: float | None = None) -> None:
    global _WORKER_STORE, _PROFILE_INTERVAL
    _WORKER_STORE = ShmBlockStore.attach(manifest)
    _PROFILE_INTERVAL = profile_interval


def _worker_store() -> ShmBlockStore:
    if _WORKER_STORE is None:
        raise RuntimeError("worker has no attached ShmBlockStore")
    return _WORKER_STORE


def _provide(item: ItemName) -> Any:
    t = item.param("time")
    b = item.param("block")
    if t is None or b is None:
        raise KeyError(f"item {item} does not name a block")
    return _worker_store().get_block(int(t), int(b))


def _run_share_task(
    command: Command,
    ctx: CommandContext,
    assignment: Any,
    share_index: int,
    derived: dict | None = None,
) -> ShareResult:
    import os

    if derived:
        _worker_store().sync_derived(derived)
    sampler = None
    if _PROFILE_INTERVAL is not None:
        from ..obs.profiling import StackSampler

        sampler = StackSampler(interval=_PROFILE_INTERVAL).start()
    t0 = time.perf_counter()
    run: ShareRun = DirectRunner(_provide).run_share(
        command, ctx, assignment, share_index
    )
    t1 = time.perf_counter()
    folded = sampler.stop() if sampler is not None else None
    return ShareResult(
        share_index=share_index,
        payloads=run.payloads,
        n_loads=run.n_loads,
        n_computes=run.n_computes,
        n_emits=run.n_emits,
        emitted_nbytes=run.emitted_nbytes,
        t_start=t0,
        t_end=t1,
        pid=os.getpid(),
        folded=folded,
    )


def _derive_field_task(
    time_index: int, block_id: int, field_name: str, velocity: str
) -> tuple[int, int, Any]:
    from ..algorithms.lambda2 import lambda2_field

    block = _worker_store().get_block(time_index, block_id)
    if field_name != "lambda2":
        raise ValueError(f"unknown derived field {field_name!r}")
    return time_index, block_id, lambda2_field(block, velocity)


class ProcessWorkerPool:
    """A work group of OS processes attached to one shared-memory store."""

    def __init__(
        self,
        store: ShmBlockStore,
        n_workers: int,
        start_method: str | None = None,
        profile_interval: float | None = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if profile_interval is not None and profile_interval <= 0:
            raise ValueError(
                f"profile_interval must be > 0, got {profile_interval}"
            )
        self.store = store
        self.n_workers = n_workers
        self.start_method = pick_start_method(start_method)
        #: seconds between worker-side stack samples; None = no profiling.
        self.profile_interval = profile_interval
        ctx = multiprocessing.get_context(self.start_method)
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=ctx,
            initializer=_pool_init,
            initargs=(store.manifest(), profile_interval),
        )

    # ------------------------------------------------------------- shares
    def run_shares(
        self, command: Command, ctx: CommandContext, assignments: Sequence[Any]
    ) -> list[ShareResult]:
        """Execute every share; results returned in share-index order."""
        executor = self._require_executor()
        # Workers attached at pool start; ship the current derived-field
        # manifest so they can map segments created since (sync is a
        # no-op when nothing is new).
        derived = self.store.derived_manifest() or None
        futures = [
            executor.submit(_run_share_task, command, ctx, assignment, i, derived)
            for i, assignment in enumerate(assignments)
        ]
        results: list[ShareResult] = []
        try:
            for future in futures:
                results.append(future.result())
        except BrokenProcessPool as exc:
            self.close()
            raise WorkerPoolError(
                "a worker process died before finishing its share; "
                "the pool has been shut down"
            ) from exc
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    def derive_field(
        self,
        keys: Sequence[tuple[int, int]],
        field_name: str = "lambda2",
        velocity: str = "velocity",
    ) -> None:
        """Fan a per-block derived-field computation across the pool.

        Each worker reads its block from shared memory, computes the
        field at float64 and returns it; the parent stores the results
        in new shared segments via
        :meth:`~repro.parallel.shm.ShmBlockStore.add_derived_field`.
        Already-running workers pick the new segments up through the
        derived manifest shipped with each subsequent share (see
        :meth:`run_shares`), so the pool keeps running.
        """
        executor = self._require_executor()
        futures = [
            executor.submit(_derive_field_task, t, b, field_name, velocity)
            for t, b in keys
        ]
        try:
            for future in futures:
                t, b, data = future.result()
                self.store.add_derived_field(t, b, field_name, data)
        except BrokenProcessPool as exc:
            self.close()
            raise WorkerPoolError(
                "a worker process died while deriving fields"
            ) from exc

    # ------------------------------------------------------------ plumbing
    def _require_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            raise WorkerPoolError("pool is closed")
        return self._executor

    @property
    def closed(self) -> bool:
        return self._executor is None

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
