"""Process-pool execution of command shares over shared memory.

The pool mirrors the paper's work group on real local cores: the parent
plans shares exactly like the scheduler, each worker process attaches
the :class:`~repro.parallel.shm.ShmBlockStore` once (pool initializer),
interprets its share with a :class:`~repro.parallel.runner.DirectRunner`
and ships back only the extracted payloads — meshes, pathlines — never
block data.  Results are collected in share-index order, so the merged
output is byte-identical to the serial path regardless of which worker
finished first.

Worker wall times are measured with ``time.perf_counter``
(CLOCK_MONOTONIC on Linux, comparable across processes on one host) and
returned with each share so the parent can import them as spans.

A worker process dying mid-share (crash, ``os._exit``, OOM-kill)
surfaces as :class:`WorkerPoolError`; the pool shuts down its remaining
processes first so nothing leaks.  Ordinary exceptions raised by a
command propagate unchanged.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Sequence

from ..core.commands import Command, CommandContext
from ..dms.items import ItemName
from .dynamic import TaskResult, default_batch
from .pipeline import BlockPipeline
from .runner import DirectRunner, ShareRun
from .shm import ShmBlockStore

__all__ = ["ProcessWorkerPool", "ShareResult", "WorkerPoolError", "pick_start_method"]


class WorkerPoolError(RuntimeError):
    """A worker process died before finishing its share."""


@dataclass
class ShareResult:
    """One share's payloads plus the worker-side execution record."""

    share_index: int
    payloads: list[Any]
    n_loads: int
    n_computes: int
    n_emits: int
    emitted_nbytes: int
    #: worker-process wall-clock interval (perf_counter seconds).
    t_start: float
    t_end: float
    pid: int
    #: collapsed-stack sample counts from the worker-side sampling
    #: profiler (None unless the pool was built with profiling on).
    folded: dict | None = None
    #: seconds spent waiting — claim-lock contention inside the worker
    #: plus the parent-added tail idle after the worker's last task.
    idle_s: float = 0.0
    #: tasks executed beyond this worker's static fair share (work it
    #: would never have seen under the one-share-per-worker split).
    steals: int = 0
    #: per-task records from a dynamic drain, in execution order; the
    #: canonical ``task_index`` on each is the merge key.  None for
    #: static shares.
    tasks: list[TaskResult] | None = None

    @property
    def seconds(self) -> float:
        return self.t_end - self.t_start


def pick_start_method(requested: str | None = None) -> str:
    """``fork`` when the platform has it (workers inherit the attached
    segments and the imported numerics for free), else ``spawn``."""
    if requested is not None:
        return requested
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# Per-worker-process state, set once by the pool initializer.  A module
# global (not a closure) so spawned workers can find it after import.
# The ticket counter rides in through initargs because a shared Value
# only pickles while a process is being spawned, never through
# ``executor.submit`` arguments.
_WORKER_STORE: ShmBlockStore | None = None
_PROFILE_INTERVAL: float | None = None
_TICKET: Any = None


def _pool_init(
    manifest: dict,
    profile_interval: float | None = None,
    ticket: Any = None,
) -> None:
    global _WORKER_STORE, _PROFILE_INTERVAL, _TICKET
    _WORKER_STORE = ShmBlockStore.attach(manifest)
    _PROFILE_INTERVAL = profile_interval
    _TICKET = ticket


def _worker_store() -> ShmBlockStore:
    if _WORKER_STORE is None:
        raise RuntimeError("worker has no attached ShmBlockStore")
    return _WORKER_STORE


def _provide(item: ItemName) -> Any:
    t = item.param("time")
    b = item.param("block")
    if t is None or b is None:
        raise KeyError(f"item {item} does not name a block")
    return _worker_store().get_block(int(t), int(b))


def _run_share_task(
    command: Command,
    ctx: CommandContext,
    assignment: Any,
    share_index: int,
    derived: dict | None = None,
) -> ShareResult:
    import os

    if derived:
        _worker_store().sync_derived(derived)
    sampler = None
    if _PROFILE_INTERVAL is not None:
        from ..obs.profiling import StackSampler

        sampler = StackSampler(interval=_PROFILE_INTERVAL).start()
    t0 = time.perf_counter()
    run: ShareRun = DirectRunner(_provide).run_share(
        command, ctx, assignment, share_index
    )
    t1 = time.perf_counter()
    folded = sampler.stop() if sampler is not None else None
    return ShareResult(
        share_index=share_index,
        payloads=run.payloads,
        n_loads=run.n_loads,
        n_computes=run.n_computes,
        n_emits=run.n_emits,
        emitted_nbytes=run.emitted_nbytes,
        t_start=t0,
        t_end=t1,
        pid=os.getpid(),
        folded=folded,
    )


def _claim(n_tasks: int, batch: int) -> tuple[int, int, float]:
    """Claim the next batch of task tickets: ``[lo, hi)`` plus the
    seconds spent waiting on the counter lock (charged to idle)."""
    if _TICKET is None:
        raise RuntimeError("worker has no shared ticket counter")
    t0 = time.perf_counter()
    with _TICKET.get_lock():
        waited = time.perf_counter() - t0
        lo = int(_TICKET.value)
        hi = min(lo + batch, n_tasks)
        _TICKET.value = hi
    return lo, hi, waited


def _drain_tasks(
    command: Command,
    ctx: CommandContext,
    tasks: list[Any],
    order: list[int],
    worker_index: int,
    n_workers: int,
    batch: int,
    derived: dict | None = None,
    pipeline: bool = False,
) -> ShareResult:
    """One worker's dynamic drain loop: claim batches off the shared
    ticket counter and execute until the tickets run out.

    ``order`` maps ticket position -> canonical task index (LPT by cost
    estimate), so heavy tasks start first while payloads stay keyed by
    canonical index for the order-independent merge.  With ``pipeline``
    the worker runs a :class:`BlockPipeline` and claims its *next*
    batch one task early, so the background thread always knows the
    upcoming block while the current one extracts.
    """
    import os

    if derived:
        _worker_store().sync_derived(derived)
    sampler = None
    if _PROFILE_INTERVAL is not None:
        from ..obs.profiling import StackSampler

        sampler = StackSampler(interval=_PROFILE_INTERVAL).start()
    n_tasks = len(order)
    fair_share = math.ceil(n_tasks / max(n_workers, 1))
    pl = BlockPipeline(_provide) if pipeline else None
    runner = DirectRunner(_provide, pipeline=pl)
    idle_s = 0.0
    steals = 0
    executed = 0
    records: list[TaskResult] = []
    payloads: list[Any] = []
    n_loads = n_computes = n_emits = emitted_nbytes = 0
    queue: deque[int] = deque()
    exhausted = False
    t_run0 = time.perf_counter()
    try:
        while True:
            # Refill — eagerly one task early when pipelining, so the
            # next block is known before the last queued task runs.
            low_water = 1 if pl is not None else 0
            if len(queue) <= low_water and not exhausted:
                lo, hi, waited = _claim(n_tasks, batch)
                idle_s += waited
                queue.extend(range(lo, hi))
                exhausted = hi >= n_tasks
            if not queue:
                break
            task_index = order[queue.popleft()]
            if pl is not None:
                pl.schedule(command.item_sequence_for(ctx, tasks[task_index]))
                if queue:
                    nxt = order[queue[0]]
                    pl.schedule(command.item_sequence_for(ctx, tasks[nxt]))
            t0 = time.perf_counter()
            run: ShareRun = runner.run_share(
                command, ctx, tasks[task_index], worker_index
            )
            t1 = time.perf_counter()
            executed += 1
            if executed > fair_share:
                steals += 1
            records.append(
                TaskResult(
                    task_index=task_index,
                    payloads=run.payloads,
                    n_loads=run.n_loads,
                    n_computes=run.n_computes,
                    n_emits=run.n_emits,
                    emitted_nbytes=run.emitted_nbytes,
                    seconds=t1 - t0,
                )
            )
            payloads.extend(run.payloads)
            n_loads += run.n_loads
            n_computes += run.n_computes
            n_emits += run.n_emits
            emitted_nbytes += run.emitted_nbytes
    finally:
        if pl is not None:
            pl.close()
    t_run1 = time.perf_counter()
    folded = sampler.stop() if sampler is not None else None
    return ShareResult(
        share_index=worker_index,
        payloads=payloads,
        n_loads=n_loads,
        n_computes=n_computes,
        n_emits=n_emits,
        emitted_nbytes=emitted_nbytes,
        t_start=t_run0,
        t_end=t_run1,
        pid=os.getpid(),
        folded=folded,
        idle_s=idle_s,
        steals=steals,
        tasks=records,
    )


def _derive_field_task(
    time_index: int, block_id: int, field_name: str, velocity: str
) -> tuple[int, int, Any]:
    from ..algorithms.lambda2 import lambda2_field

    block = _worker_store().get_block(time_index, block_id)
    if field_name != "lambda2":
        raise ValueError(f"unknown derived field {field_name!r}")
    return time_index, block_id, lambda2_field(block, velocity)


class ProcessWorkerPool:
    """A work group of OS processes attached to one shared-memory store."""

    def __init__(
        self,
        store: ShmBlockStore,
        n_workers: int,
        start_method: str | None = None,
        profile_interval: float | None = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if profile_interval is not None and profile_interval <= 0:
            raise ValueError(
                f"profile_interval must be > 0, got {profile_interval}"
            )
        self.store = store
        self.n_workers = n_workers
        self.start_method = pick_start_method(start_method)
        #: seconds between worker-side stack samples; None = no profiling.
        self.profile_interval = profile_interval
        ctx = multiprocessing.get_context(self.start_method)
        #: shared ticket counter for dynamic drains; created before the
        #: executor so it is inheritable (fork) / spawn-picklable via
        #: initargs — submit() args cannot carry it.
        self._ticket = ctx.Value("q", 0)
        self._executor: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=ctx,
            initializer=_pool_init,
            initargs=(store.manifest(), profile_interval, self._ticket),
        )

    # ------------------------------------------------------------- shares
    def run_shares(
        self, command: Command, ctx: CommandContext, assignments: Sequence[Any]
    ) -> list[ShareResult]:
        """Execute every share; results returned in share-index order."""
        executor = self._require_executor()
        # Workers attached at pool start; ship the current derived-field
        # manifest so they can map segments created since (sync is a
        # no-op when nothing is new).
        derived = self.store.derived_manifest() or None
        futures = [
            executor.submit(_run_share_task, command, ctx, assignment, i, derived)
            for i, assignment in enumerate(assignments)
        ]
        results: list[ShareResult] = []
        try:
            for future in futures:
                results.append(future.result())
        except BrokenProcessPool as exc:
            self.close()
            raise WorkerPoolError(
                "a worker process died before finishing its share; "
                "the pool has been shut down"
            ) from exc
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    def run_tasks(
        self,
        command: Command,
        ctx: CommandContext,
        tasks: Sequence[Any],
        order: Sequence[int],
        batch: int | None = None,
        pipeline: bool = False,
    ) -> list[ShareResult]:
        """Dynamic execution: every worker drains the shared ticket
        counter until the tasks run out (work stealing by omission).

        ``order`` positions tickets in execution order (LPT over cost
        estimates); results keep canonical ``task_index`` keys, so
        :func:`~repro.parallel.dynamic.payload_lists` reassembles the
        serial payload sequence regardless of interleaving.  Returns
        one :class:`ShareResult` per participating worker.
        """
        executor = self._require_executor()
        if sorted(order) != list(range(len(tasks))):
            raise ValueError("order must be a permutation of the task indices")
        derived = self.store.derived_manifest() or None
        # The pool is quiescent between runs, so the parent can reset
        # the counter without racing a drain.
        with self._ticket.get_lock():
            self._ticket.value = 0
        n_active = max(1, min(self.n_workers, len(tasks)))
        if batch is None:
            batch = default_batch(len(tasks), n_active)
        futures = [
            executor.submit(
                _drain_tasks,
                command,
                ctx,
                list(tasks),
                list(order),
                w,
                n_active,
                batch,
                derived,
                pipeline,
            )
            for w in range(n_active)
        ]
        results: list[ShareResult] = []
        try:
            for future in futures:
                results.append(future.result())
        except BrokenProcessPool as exc:
            self.close()
            raise WorkerPoolError(
                "a worker process died before finishing its drain; "
                "the pool has been shut down"
            ) from exc
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    def derive_field(
        self,
        keys: Sequence[tuple[int, int]],
        field_name: str = "lambda2",
        velocity: str = "velocity",
    ) -> None:
        """Fan a per-block derived-field computation across the pool.

        Each worker reads its block from shared memory, computes the
        field at float64 and returns it; the parent stores the results
        in new shared segments via
        :meth:`~repro.parallel.shm.ShmBlockStore.add_derived_field`.
        Already-running workers pick the new segments up through the
        derived manifest shipped with each subsequent share (see
        :meth:`run_shares`), so the pool keeps running.
        """
        executor = self._require_executor()
        futures = [
            executor.submit(_derive_field_task, t, b, field_name, velocity)
            for t, b in keys
        ]
        try:
            for future in futures:
                t, b, data = future.result()
                self.store.add_derived_field(t, b, field_name, data)
        except BrokenProcessPool as exc:
            self.close()
            raise WorkerPoolError(
                "a worker process died while deriving fields"
            ) from exc

    # ------------------------------------------------------------ plumbing
    def _require_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            raise WorkerPoolError("pool is closed")
        return self._executor

    @property
    def closed(self) -> bool:
        return self._executor is None

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
