"""Direct (wall-clock) execution of command shares.

Commands are generators over plain ops (§3's layer split); the DES
worker interprets them under simulated time.  :class:`DirectRunner` is
the other interpreter: it drives the *same* generator against real data
with no simulation at all — ``Load`` pulls the block from a provider,
``Compute`` runs the closure immediately, ``Emit`` collects the payload
in order, ``Prefetch`` is a no-op (the shared-memory store is already
resident).  Because the op stream, the numerics and the emit order are
exactly those of the serial simulated path, results merged in share
order are byte-identical to a serial run by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..core.commands import (
    Command,
    CommandContext,
    Compute,
    ComputeCached,
    Emit,
    Load,
    Prefetch,
)
from ..dms.items import ItemName

__all__ = ["DirectRunner", "ShareRun"]


@dataclass
class ShareRun:
    """What one share produced, plus its data-movement counters."""

    worker_index: int
    payloads: list[Any] = field(default_factory=list)
    n_loads: int = 0
    n_computes: int = 0
    n_emits: int = 0
    #: modeled result bytes as charged by the command's Emit ops.
    emitted_nbytes: int = 0


class DirectRunner:
    """Interpret command op streams against a real block provider.

    With a :class:`~repro.parallel.pipeline.BlockPipeline` attached,
    each share's upcoming block sequence is scheduled for background
    materialization on entry and every ``Load`` drains the pipeline
    first — the next block's lazy ``<f4`` views upcast to float64 while
    the current block extracts (double-buffered load/compute overlap).
    Bytes are unchanged either way: the pipeline returns the provider's
    own object with its fields pre-touched.
    """

    def __init__(self, provider: Callable[[ItemName], Any], pipeline=None):
        self.provider = provider
        #: optional BlockPipeline for load/compute overlap.
        self.pipeline = pipeline
        #: runner-local memo for ComputeCached results; providers only
        #: understand block items, so derived items never hit them.
        self._derived: dict[ItemName, Any] = {}

    def _fetch(self, item: ItemName) -> Any:
        if self.pipeline is not None:
            return self.pipeline.get(item)
        return self.provider(item)

    def run_share(
        self,
        command: Command,
        ctx: CommandContext,
        assignment: Any,
        worker_index: int,
    ) -> ShareRun:
        """Drive one share's generator to exhaustion; payloads in order."""
        run = ShareRun(worker_index=worker_index)
        if self.pipeline is not None:
            self.pipeline.schedule(command.item_sequence_for(ctx, assignment))
        gen = command.run(ctx, assignment, worker_index)
        result: Any = None
        while True:
            try:
                op = gen.send(result) if result is not None else next(gen)
            except StopIteration:
                break
            result = None
            if isinstance(op, Load):
                result = self._fetch(op.item)
                run.n_loads += 1
            elif isinstance(op, Compute):
                run.n_computes += 1
                if op.fn is not None:
                    result = op.fn()
            elif isinstance(op, ComputeCached):
                result = self._derived.get(op.item)
                if result is None and op.fn is not None:
                    result = self._derived[op.item] = op.fn()
                    run.n_computes += 1
            elif isinstance(op, Emit):
                # Payload-free emits (e.g. progressive "approximation"
                # markers) are runtime signals, not results.
                if op.payload is not None:
                    run.payloads.append(op.payload)
                run.n_emits += 1
                run.emitted_nbytes += int(op.nbytes)
            elif isinstance(op, Prefetch):
                # Shared memory is already resident; with a pipeline the
                # hint still buys the background float64 materialization.
                if self.pipeline is not None:
                    self.pipeline.schedule([op.item])
            else:
                raise TypeError(f"command yielded unknown op {op!r}")
        return run

    def run_all(
        self,
        command: Command,
        ctx: CommandContext,
        assignments: Sequence[Any],
    ) -> list[ShareRun]:
        """Serial reference execution: every share, in share order."""
        return [
            self.run_share(command, ctx, assignment, i)
            for i, assignment in enumerate(assignments)
        ]
