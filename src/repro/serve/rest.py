"""A thin HTTP/REST facade over :class:`~repro.serve.server.TenantServer`.

Deliberately framework-free: the container ships no web framework, so
this rides the stdlib ``http.server``.  The facade is a *front end to
the simulator* — each submitted command advances the DES until that
command completes, under one lock (the kernel is single-threaded), and
the response carries the simulated timings.  That makes it an honest
remote API for everything the CLI can do: register tenants, submit
commands, read per-tenant SLO rollups and Prometheus metrics.

Routes (JSON in/out unless noted)::

    GET  /healthz       liveness + basic counters
    GET  /v1/tenants    every tenant's config + live accounting
    POST /v1/tenants    register a tenant
    POST /v1/commands   submit one command (429 on admission reject)
    GET  /v1/slo        per-tenant SLO rollups
    GET  /v1/metrics    Prometheus text exposition
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .server import ServeHandle, TenantServer
from .tenancy import LANE_NAMES

__all__ = ["ServeApp", "make_http_server"]


class _ApiError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class ServeApp:
    """Transport-independent request handling (unit-testable directly).

    Every public ``handle_*`` method returns ``(status, payload)``;
    :class:`_Handler` is just plumbing around them.  All state mutation
    happens under ``self.lock`` because the DES kernel underneath is
    strictly single-threaded.
    """

    def __init__(self, server: TenantServer):
        self.server = server
        self.lock = threading.Lock()

    # ------------------------------------------------------------ routes
    def handle(self, method: str, path: str,
               body: dict[str, Any] | None) -> tuple[int, Any]:
        try:
            if method == "GET" and path == "/healthz":
                return self.handle_health()
            if path == "/v1/tenants":
                if method == "GET":
                    return self.handle_list_tenants()
                if method == "POST":
                    return self.handle_register(body or {})
            if method == "POST" and path == "/v1/commands":
                return self.handle_submit(body or {})
            if method == "GET" and path == "/v1/slo":
                return self.handle_slo()
            if method == "GET" and path == "/v1/metrics":
                return self.handle_metrics()
            raise _ApiError(404, f"no route for {method} {path}")
        except _ApiError as exc:
            return exc.status, {"error": exc.message}
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}

    def handle_health(self) -> tuple[int, Any]:
        with self.lock:
            srv = self.server
            return 200, {
                "status": "ok",
                "tenants": len(srv.tenants),
                "queue_depth": len(srv.queue),
                "submitted": len(srv.handles),
                "sim_now": srv.env.now,
            }

    def handle_list_tenants(self) -> tuple[int, Any]:
        with self.lock:
            return 200, {
                "tenants": [
                    state.snapshot()
                    for _, state in sorted(self.server.tenants.items())
                ]
            }

    def handle_register(self, body: dict[str, Any]) -> tuple[int, Any]:
        name = body.get("name")
        if not name or not isinstance(name, str):
            raise _ApiError(400, "tenant 'name' (string) is required")
        kwargs: dict[str, Any] = {}
        if "weight" in body:
            kwargs["weight"] = int(body["weight"])
        if "lane" in body:
            lane = body["lane"]
            if isinstance(lane, str):
                if lane not in LANE_NAMES:
                    raise _ApiError(
                        400, f"lane must be one of {list(LANE_NAMES)}"
                    )
                lane = LANE_NAMES.index(lane)
            kwargs["lane"] = int(lane)
        if "max_in_flight" in body:
            kwargs["max_in_flight"] = int(body["max_in_flight"])
        if body.get("byte_budget") is not None:
            kwargs["byte_budget"] = int(body["byte_budget"])
        with self.lock:
            if name in self.server.tenants:
                raise _ApiError(409, f"tenant {name!r} already registered")
            state = self.server.register(name, **kwargs)
            return 201, state.snapshot()

    def handle_submit(self, body: dict[str, Any]) -> tuple[int, Any]:
        tenant = body.get("tenant")
        command = body.get("command")
        if not tenant or not command:
            raise _ApiError(400, "'tenant' and 'command' are required")
        params = body.get("params") or {}
        if not isinstance(params, dict):
            raise _ApiError(400, "'params' must be an object")
        service = None
        if body.get("service_s") is not None:
            # Modeled-backend deployments take the service time from the
            # request; session-backed ones ignore it.
            from .server import ServiceProfile

            fb = body.get("first_byte_s")
            service = ServiceProfile(
                total_s=float(body["service_s"]),
                first_byte_s=None if fb is None else float(fb),
            )
        with self.lock:
            srv = self.server
            if tenant not in srv.tenants:
                raise _ApiError(404, f"unknown tenant {tenant!r}")
            handle = srv.submit(
                tenant, command, params,
                cost_bytes=int(body.get("cost_bytes", 0)),
                service=service,
            )
            if handle.state == "rejected":
                return 429, self._handle_payload(handle)
            # Single-threaded DES: drive the simulation until this
            # command reaches a terminal state.
            srv.env.run(until=handle.done)
            status = 200 if handle.state == "done" else 500
            return status, self._handle_payload(handle)

    def handle_slo(self) -> tuple[int, Any]:
        with self.lock:
            tracker = self.server.tracker
            rollups = [
                {
                    "slo": st.slo.name,
                    "tenant": st.key,
                    "total": st.total,
                    "attainment": st.attainment,
                    "target": st.slo.target,
                    "met": st.met,
                    "p50_s": st.p50,
                    "p99_s": st.p99,
                    "burn_rate": st.burn_rate,
                }
                for st in tracker.status("tenant")
            ]
            return 200, {
                "observations": tracker.observations,
                "all_met": tracker.all_met(),
                "rollups": rollups,
            }

    def handle_metrics(self) -> tuple[int, Any]:
        from ..obs import MetricsRegistry

        with self.lock:
            registry = MetricsRegistry()
            self.server.publish_metrics(registry)
            # str payload → served as text/plain by the handler.
            return 200, registry.render_prometheus()

    @staticmethod
    def _handle_payload(handle: ServeHandle) -> dict[str, Any]:
        return {
            "request_id": handle.request_id,
            "tenant": handle.tenant,
            "command": handle.command,
            "state": handle.state,
            "reject_reason": handle.reject_reason,
            "queue_wait_s": handle.queue_wait_s,
            "latency_s": handle.latency_s,
            "runtime_s": handle.runtime_s,
            "degraded": handle.degraded,
        }


class _Handler(BaseHTTPRequestHandler):
    """stdlib plumbing; all logic lives in :class:`ServeApp`."""

    app: ServeApp  #: set by :func:`make_http_server`

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            try:
                body = json.loads(self.rfile.read(length))
            except json.JSONDecodeError:
                self._respond(400, {"error": "request body is not valid JSON"})
                return
        status, payload = self.app.handle(method, self.path, body)
        self._respond(status, payload)

    def _respond(self, status: int, payload: Any) -> None:
        if isinstance(payload, str):
            data = payload.encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload, sort_keys=True).encode()
            ctype = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # quiet by default; the CLI prints its own banner


def make_http_server(app: ServeApp, host: str = "127.0.0.1",
                     port: int = 0) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` HTTP server bound to ``app``."""
    handler = type("BoundHandler", (_Handler,), {"app": app})
    return ThreadingHTTPServer((host, port), handler)
