"""The long-lived multi-tenant front end: admission, dispatch, SLOs.

:class:`TenantServer` is the serving layer proper.  It owns

* the tenant registry (:mod:`repro.serve.tenancy`) and enforces
  admission quotas at submit time,
* the :class:`~repro.serve.queue.FairCommandQueue` (weighted
  round-robin across tenants, strict priority lanes),
* a dispatcher process that marries free backend capacity to the
  fairness policy's next command,
* cooperative cancellation that always returns admission slots, and
* per-tenant SLO rollups streamed into the *existing*
  :class:`repro.obs.slo.SLOTracker` — the serving layer feeds the PR-6
  engine, it does not grow a second one.

Execution is pluggable through a small backend protocol:

* :class:`ModeledBackend` — pure-DES service model (capacity slots,
  per-request :class:`ServiceProfile`).  This is what lets the load
  generator drive *thousands* of tenants in simulated time.
* :class:`SessionBackend` — real commands on a
  :class:`~repro.core.session.ViracochaSession` scheduler: actual
  extraction, DMS traffic, faults and recovery, with first-feedback
  latency taken from the visualization client's packet stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Generator, Iterable

from ..des.kernel import Environment, Event, Interrupt, Process
from ..des.resources import Request, Resource
from .queue import FairCommandQueue
from .tenancy import AdmissionDecision, TenantConfig, TenantState

__all__ = [
    "ModeledBackend",
    "RequestState",
    "ServeHandle",
    "ServiceProfile",
    "SessionBackend",
    "TenantServer",
    "serve_slos",
]


class RequestState:
    """Lifecycle states of a :class:`ServeHandle` (plain constants)."""

    REJECTED = "rejected"
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    FAILED = "failed"

    TERMINAL = (REJECTED, DONE, CANCELLED, FAILED)


@dataclass(frozen=True)
class ServiceProfile:
    """Modeled cost of one command for :class:`ModeledBackend`.

    ``first_byte_s`` is when the first partial result reaches the
    client (the latency the 100 ms criterion judges); ``None`` defaults
    to 25% of ``total_s`` — the streaming head start the paper's
    decoupling buys.
    """

    total_s: float
    first_byte_s: float | None = None
    degraded: bool = False

    def __post_init__(self) -> None:
        if self.total_s < 0:
            raise ValueError(f"total_s must be >= 0, got {self.total_s}")
        fb = self.first_byte_s
        if fb is not None and not 0 <= fb <= self.total_s:
            raise ValueError(
                f"first_byte_s must be in [0, total_s], got {fb}"
            )

    @property
    def first_byte(self) -> float:
        return (
            self.first_byte_s if self.first_byte_s is not None
            else 0.25 * self.total_s
        )


@dataclass
class ServeHandle:
    """One submitted command as the serving layer tracks it."""

    request_id: int
    tenant: str
    command: str
    params: dict[str, Any]
    lane: int
    cost_bytes: int = 0
    service: ServiceProfile | None = None
    state: str = RequestState.QUEUED
    reject_reason: str = ""
    cancel_requested: bool = False
    degraded: bool = False
    failure: str = ""
    t_submit: float = 0.0
    t_start: float | None = None
    t_first: float | None = None
    t_done: float | None = None
    #: fires when the handle reaches a terminal state.
    done: Event | None = None
    #: the execute process (interrupt target for cancellation).
    proc: Process | None = None
    #: backend outcome (RunRecord / modeled outcome) when DONE.
    outcome: Any = None

    @property
    def finished(self) -> bool:
        return self.state in RequestState.TERMINAL

    @property
    def queue_wait_s(self) -> float:
        if self.t_start is None:
            return 0.0
        return self.t_start - self.t_submit

    @property
    def latency_s(self) -> float | None:
        """Submit → first feedback; falls back to runtime when opaque."""
        if self.t_first is not None:
            return self.t_first - self.t_submit
        return self.runtime_s

    @property
    def runtime_s(self) -> float | None:
        if self.t_done is None:
            return None
        return self.t_done - self.t_submit


class _ModeledOutcome:
    __slots__ = ("degraded",)

    def __init__(self, degraded: bool = False):
        self.degraded = degraded


class ModeledBackend:
    """Pure-DES execution: ``slots`` capacity, per-request profiles.

    No geometry, no DMS — just seeded service times charged on the
    virtual clock, which is exactly what a 1 000-tenant soak needs to
    stay deterministic and fast.  Requests must carry a
    :class:`ServiceProfile` (the load generator pre-draws them at
    build time, like :meth:`repro.faults.FaultPlan.random`).
    """

    can_interrupt = True

    def __init__(self, env: Environment, slots: int = 4):
        self.env = env
        self.resource = Resource(env, capacity=slots)
        self.slots = slots
        self.executed = 0

    def acquire(self) -> Request:
        return self.resource.request()

    def release(self, slot: Request) -> None:
        self.resource.release(slot)

    def execute(self, handle: ServeHandle) -> Generator[Event, None, Any]:
        profile = handle.service
        if profile is None:
            raise ValueError(
                f"request {handle.request_id} has no ServiceProfile "
                "(required by ModeledBackend)"
            )
        first = profile.first_byte
        yield self.env.timeout(first)
        handle.t_first = self.env.now
        yield self.env.timeout(max(profile.total_s - first, 0.0))
        self.executed += 1
        return _ModeledOutcome(profile.degraded)


class SessionBackend:
    """Real execution on a :class:`~repro.core.session.ViracochaSession`.

    Commands go through the genuine request path: the
    :class:`~repro.core.channels.ClientUplink` charges the client TCP
    link, the scheduler forms a work group, workers extract and stream,
    and the visualization client's packet log provides first-feedback
    latency.  ``slots`` caps commands in flight *at the serving layer*
    (default 1: the fair queue, not the scheduler's internal worker
    pool, decides ordering under contention).
    """

    can_interrupt = False

    def __init__(self, session: Any, group_size: int | None = None,
                 slots: int = 1):
        self.session = session
        self.env = session.env
        self.group_size = group_size or session.n_workers
        self.resource = Resource(self.env, capacity=slots)
        self.slots = slots
        self.executed = 0

    def acquire(self) -> Request:
        return self.resource.request()

    def release(self, slot: Request) -> None:
        self.resource.release(slot)

    def execute(self, handle: ServeHandle) -> Generator[Event, None, Any]:
        from ..core.messages import CommandRequest, next_request_id

        session = self.session
        request_id = next_request_id()
        done = session.client.expect(request_id)
        request = CommandRequest(
            request_id, handle.command, dict(handle.params),
            tenant=handle.tenant,
        )
        yield from session.uplink.send(request)
        record = yield from session.scheduler.run_command(
            handle.command,
            dict(handle.params),
            self.group_size,
            session.client.mailbox,
            request_id,
            tenant=handle.tenant,
        )
        yield done
        packets = session.client.packets_by_request.get(request_id, [])
        first = next(
            (p.time for p in packets if p.nbytes > 0 or p.n_triangles > 0),
            None,
        )
        handle.t_first = first
        self.executed += 1
        return record

    def request_cancel(self, handle: ServeHandle) -> bool:
        """Cooperative cancellation for a *running* command.

        The session backend cannot interrupt the scheduler mid-command
        (``can_interrupt`` is False), but a progressive command carries
        a :class:`~repro.commands.progressive.RefinementControl` token
        in ``params["control"]``; flipping it makes the command stop
        refining at its next check, so the viewer keeps the coarse
        approximation and the slot frees early.  Returns whether a
        token was found and flipped.
        """
        control = handle.params.get("control")
        cancel = getattr(control, "cancel", None)
        if callable(cancel):
            cancel("serve-cancel")
            return True
        return False


def serve_slos(
    criteria: Any = None,
    queue_wait_threshold: float = 0.05,
    queue_wait_target: float = 0.99,
) -> list:
    """The serving layer's stock objectives.

    The two VR interaction SLOs from :func:`repro.obs.slo.default_slos`
    (100 ms first feedback, complete results) plus a queue-admission
    objective: commands must leave the fair queue within
    ``queue_wait_threshold`` seconds for ``queue_wait_target`` of
    requests — the term a single-client session never had to budget.
    """
    from ..obs.slo import SLODefinition, default_slos

    slos = default_slos(criteria)
    slos.append(
        SLODefinition(
            name="queue-admit",
            metric="queue_wait",
            threshold=queue_wait_threshold,
            target=queue_wait_target,
            command_class="*",
            description="admitted commands start within the queue-wait budget",
        )
    )
    return slos


class TenantServer:
    """Async session multiplexing over one shared cluster backend."""

    def __init__(
        self,
        backend: Any,
        slos: Iterable | None = None,
        tracker: Any = None,
        record_pops: bool = False,
    ):
        self.backend = backend
        self.env: Environment = backend.env
        self.queue = FairCommandQueue(self.env, record_pops=record_pops)
        self.tenants: dict[str, TenantState] = {}
        if tracker is None:
            from ..obs.slo import SLOTracker

            tracker = SLOTracker(list(slos) if slos is not None else serve_slos())
        #: the shared repro.obs.slo engine; per-tenant rollups come from
        #: ``tracker.status("tenant")``.
        self.tracker = tracker
        self.handles: list[ServeHandle] = []
        self._next_id = 1
        self._open = 0  #: admitted but unfinished
        self._drain_waiters: list[Event] = []
        self._dispatcher: Process | None = None
        self._stopped = False

    # ---------------------------------------------------------- tenants
    def register(self, config: TenantConfig | str, **kwargs: Any) -> TenantState:
        """Register a tenant (by config or ``name`` plus keywords)."""
        if isinstance(config, str):
            config = TenantConfig(name=config, **kwargs)
        if config.name in self.tenants:
            raise ValueError(f"tenant {config.name!r} already registered")
        state = TenantState(config)
        self.tenants[config.name] = state
        self.queue.add_tenant(config.name, config.weight)
        return state

    def tenant(self, name: str) -> TenantState:
        return self.tenants[name]

    # ----------------------------------------------------------- submit
    def submit(
        self,
        tenant: str,
        command: str,
        params: dict[str, Any] | None = None,
        cost_bytes: int = 0,
        service: ServiceProfile | None = None,
        lane: int | None = None,
    ) -> ServeHandle:
        """Admission-check and enqueue one command; never blocks.

        Returns a :class:`ServeHandle` in state ``queued`` or
        ``rejected`` — rejected handles are terminal immediately and
        hold no admission slot.
        """
        state = self.tenants.get(tenant)
        handle = ServeHandle(
            request_id=self._next_id,
            tenant=tenant,
            command=command,
            params=dict(params or {}),
            lane=0,
            cost_bytes=cost_bytes,
            service=service,
            t_submit=self.env.now,
            done=Event(self.env),
        )
        self._next_id += 1
        self.handles.append(handle)
        if state is None:
            decision = AdmissionDecision(False, "unknown-tenant")
        else:
            state.submitted += 1
            decision = state.check(cost_bytes)
        if not decision.admitted:
            handle.state = RequestState.REJECTED
            handle.reject_reason = decision.reason
            handle.t_done = self.env.now
            if state is not None:
                state.reject(decision.reason)
            handle.done.succeed(handle)
            return handle
        handle.lane = state.config.lane if lane is None else lane
        state.admit(cost_bytes)
        self._open += 1
        self.start()
        self.queue.put(tenant, handle.lane, handle)
        return handle

    # ----------------------------------------------------------- cancel
    def cancel(self, handle: ServeHandle) -> bool:
        """Cooperatively cancel; the admission slot is always returned.

        A still-queued handle is removed immediately.  A dispatched or
        running handle gets ``cancel_requested`` set; interruptible
        backends are interrupted, others run their current command to
        completion (the slot is released either way through the one
        completion path).  Terminal handles return ``False``.
        """
        if handle.finished:
            return False
        if (handle.state == RequestState.QUEUED
                and not FairCommandQueue.popped(handle)):
            self.queue.discard(handle.tenant, handle.lane, handle)
            state = self.tenants[handle.tenant]
            state.queued -= 1
            state.cancelled += 1
            self._finish(handle, RequestState.CANCELLED)
            return True
        handle.cancel_requested = True
        if (self.backend.can_interrupt and handle.proc is not None
                and handle.proc.is_alive):
            handle.proc.interrupt("cancelled")
        else:
            # Non-interruptible backends may still cancel cooperatively
            # (a progressive command's RefinementControl token).
            request_cancel = getattr(self.backend, "request_cancel", None)
            if callable(request_cancel):
                request_cancel(handle)
        return True

    # --------------------------------------------------------- lifecycle
    def start(self) -> "TenantServer":
        """Spawn the dispatcher (idempotent)."""
        if self._dispatcher is None or not self._dispatcher.is_alive:
            if self._stopped:
                raise RuntimeError("server has been shut down")
            self._dispatcher = self.env.process(
                self._dispatch(), name="serve-dispatch"
            )
        return self

    def shutdown(self) -> None:
        """Stop the dispatcher; queued work stays queued."""
        self._stopped = True
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("shutdown")

    def drained(self) -> Event:
        """Event firing when no admitted command remains unfinished."""
        evt = Event(self.env)
        if self._open == 0:
            evt.succeed(self)
        else:
            self._drain_waiters.append(evt)
        return evt

    # --------------------------------------------------------- dispatch
    def _dispatch(self) -> Generator[Event, None, None]:
        """Process body: free slot first, then the WRR-best command.

        Acquiring capacity *before* consulting the queue means the
        fairness decision is made at the moment a slot frees up — a
        high-priority arrival can still win the slot over earlier
        low-priority backlog.
        """
        while True:
            slot = self.backend.acquire()
            try:
                yield slot
                handle = yield self.queue.get()
            except Interrupt:
                self.backend.release(slot)
                return
            # Accounting happens here, synchronously with the pop, so a
            # cancel landing later in this timestep sees state=running.
            state = self.tenants[handle.tenant]
            handle.state = RequestState.RUNNING
            handle.t_start = self.env.now
            state.queued -= 1
            state.running += 1
            wait = handle.queue_wait_s
            state.total_queue_wait_s += wait
            state.max_queue_wait_s = max(state.max_queue_wait_s, wait)
            handle.proc = self.env.process(
                self._run_one(handle, slot),
                name=f"serve-{handle.tenant}-{handle.request_id}",
            )

    def _run_one(self, handle: ServeHandle, slot: Request):
        """Process body: one command end to end, slot released exactly once."""
        state = self.tenants[handle.tenant]
        final = RequestState.DONE
        try:
            if handle.cancel_requested:
                final = RequestState.CANCELLED
            else:
                try:
                    handle.outcome = yield from self.backend.execute(handle)
                except Interrupt:
                    final = RequestState.CANCELLED
                except Exception as exc:
                    final = RequestState.FAILED
                    handle.failure = repr(exc)
        finally:
            state.running -= 1
            self.backend.release(slot)
            if final == RequestState.CANCELLED:
                state.cancelled += 1
            elif final == RequestState.FAILED:
                state.failed += 1
            self._finish(handle, final)
        if final == RequestState.DONE:
            degraded = bool(getattr(handle.outcome, "degraded", False))
            handle.degraded = degraded
            state.completed += 1
            if degraded:
                state.degraded += 1
            self.tracker.observe(
                handle.command,
                latency=handle.latency_s,
                runtime=handle.runtime_s,
                t=self.env.now,
                degraded=degraded,
                tenant=handle.tenant,
                queue_wait=handle.queue_wait_s,
            )

    def _finish(self, handle: ServeHandle, final: str) -> None:
        """Terminal-state bookkeeping shared by every exit path."""
        handle.state = final
        handle.t_done = self.env.now
        state = self.tenants.get(handle.tenant)
        if state is not None:
            state.release(handle.cost_bytes)
        self._open -= 1
        if handle.done is not None and not handle.done.triggered:
            handle.done.succeed(handle)
        if self._open == 0 and self._drain_waiters:
            waiters, self._drain_waiters = self._drain_waiters, []
            for evt in waiters:
                if not evt.triggered:
                    evt.succeed(self)

    # -------------------------------------------------------- reporting
    def fingerprint(self) -> str:
        """Deterministic digest of every handle's observable lifecycle.

        Request ids are server-local and sequential, timestamps are
        simulated, so two replays of the same workload at the same seed
        must be byte-identical — the soak suite's replay pin.
        """
        h = sha256()
        for hd in self.handles:
            h.update(
                f"{hd.request_id}|{hd.tenant}|{hd.command}|{hd.lane}|"
                f"{hd.state}|{hd.reject_reason}|{hd.cost_bytes}|"
                f"{hd.t_submit!r}|{hd.t_start!r}|{hd.t_first!r}|"
                f"{hd.t_done!r}|{hd.degraded}\n".encode()
            )
        return h.hexdigest()

    def slo_report(self, dim: str = "tenant") -> str:
        return self.tracker.format_report(dim)

    def publish_metrics(self, registry: Any) -> None:
        """Per-tenant serving counters plus the SLO engine's gauges."""
        for name, state in sorted(self.tenants.items()):
            labels = {"tenant": name}
            registry.counter(
                "viracocha_serve_submitted_total", labels,
                help="commands submitted per tenant",
            ).set(state.submitted)
            registry.counter(
                "viracocha_serve_rejected_total", labels,
                help="admission rejections per tenant",
            ).set(state.rejected)
            registry.counter(
                "viracocha_serve_completed_total", labels,
                help="completed commands per tenant",
            ).set(state.completed)
            registry.counter(
                "viracocha_serve_cancelled_total", labels,
                help="cancelled commands per tenant",
            ).set(state.cancelled)
            registry.gauge(
                "viracocha_serve_in_flight", labels,
                help="admitted-but-unfinished commands per tenant",
            ).set(state.in_flight)
        registry.gauge(
            "viracocha_serve_queue_depth",
            help="live items across all lanes of the fair queue",
        ).set(len(self.queue))
        self.tracker.publish_metrics(registry)
