"""CLI verbs for the serving layer: ``repro loadtest`` / ``repro serve``.

``loadtest`` runs the deterministic DES soak (thousands of simulated
tenants, seeded arrivals, entirely in simulated time) and reports
per-tenant SLO rollups through :mod:`repro.obs.slo`; ``--replay`` runs
the workload twice and fails unless the two fingerprints are
byte-identical — the determinism gate CI enforces.

``serve`` boots the HTTP/REST facade over a real
:class:`~repro.core.session.ViracochaSession`.
"""

from __future__ import annotations

from typing import Any

USAGE_LOADTEST = (
    "python -m repro loadtest [--tenants N] [--seed N] [--requests N] "
    "[--rate HZ] [--arrival poisson|bursty] [--slots N] "
    "[--cancel-frac F] [--priority-frac F] [--max-in-flight N] "
    "[--replay] [--json] [--out FILE]"
)
USAGE_SERVE = (
    "python -m repro serve [--host HOST] [--port N] "
    "[--data engine|propfan] [--workers N] [--slots N]"
)


def _flags(args: list[str], booleans: set[str]) -> dict[str, Any] | None:
    flags: dict[str, Any] = {}
    i = 0
    while i < len(args):
        arg = args[i]
        if not arg.startswith("--"):
            print(f"unexpected argument {arg!r}")
            return None
        key = arg[2:]
        if "=" in key:
            key, value = key.split("=", 1)
            flags[key] = value
        elif key in booleans:
            flags[key] = True
        else:
            if i + 1 >= len(args):
                print(f"option --{key} needs a value")
                return None
            flags[key] = args[i + 1]
            i += 1
        i += 1
    return flags


def loadtest_main(args: list[str]) -> int:
    """Deterministic multi-tenant soak in simulated time."""
    from .loadgen import LoadSpec, run_loadtest

    flags = _flags(args, booleans={"replay", "json"})
    if flags is None:
        print(f"usage: {USAGE_LOADTEST}")
        return 2
    try:
        spec = LoadSpec(
            n_tenants=int(flags.get("tenants", 1000)),
            seed=int(flags.get("seed", 0)),
            requests_per_tenant=int(flags.get("requests", 3)),
            rate_hz=float(flags.get("rate", 0.2)),
            arrival=str(flags.get("arrival", "poisson")),
            slots=int(flags.get("slots", 16)),
            cancel_frac=float(flags.get("cancel-frac", 0.05)),
            priority_frac=float(flags.get("priority-frac", 0.1)),
            max_in_flight=int(flags.get("max-in-flight", 2)),
        )
    except ValueError as exc:
        print(f"bad loadtest options: {exc}")
        print(f"usage: {USAGE_LOADTEST}")
        return 2
    report = run_loadtest(spec)
    if flags.get("replay"):
        replay = run_loadtest(spec)
        if replay.fingerprint != report.fingerprint:
            print("REPLAY MISMATCH: the same spec produced two different "
                  "fingerprints")
            print(f"  run 1: {report.fingerprint}")
            print(f"  run 2: {replay.fingerprint}")
            return 1
    out = flags.get("out")
    if out:
        report.write_json(str(out))
    if flags.get("json"):
        import json

        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.format())
        if flags.get("replay"):
            print("\nreplay: fingerprints identical across two runs")
        if out:
            print(f"wrote per-tenant rollup to {out}")
    return 0


def build_serve_app(data: str = "engine", workers: int = 4,
                    slots: int = 1):
    """A :class:`~repro.serve.rest.ServeApp` over a real session."""
    from ..bench.calibration import paper_cluster, paper_costs
    from ..core.session import ViracochaSession
    from ..synth import build_engine, build_propfan
    from .rest import ServeApp
    from .server import SessionBackend, TenantServer, serve_slos

    builders = {"engine": build_engine, "propfan": build_propfan}
    if data not in builders:
        raise KeyError(data)
    dataset = builders[data](base_resolution=4, n_timesteps=2)
    session = ViracochaSession(
        dataset,
        cluster_config=paper_cluster(workers),
        costs=paper_costs(),
    )
    backend = SessionBackend(session, slots=slots)
    server = TenantServer(backend, slos=serve_slos())
    return ServeApp(server)


def serve_main(args: list[str]) -> int:
    """Boot the HTTP facade (blocks until interrupted)."""
    flags = _flags(args, booleans=set())
    if flags is None:
        print(f"usage: {USAGE_SERVE}")
        return 2
    host = str(flags.get("host", "127.0.0.1"))
    try:
        port = int(flags.get("port", 8642))
        workers = int(flags.get("workers", 4))
        slots = int(flags.get("slots", 1))
    except ValueError:
        print("--port, --workers and --slots must be integers")
        return 2
    if workers < 1 or slots < 1:
        print("--workers and --slots must be positive")
        return 2
    data = str(flags.get("data", "engine"))
    try:
        app = build_serve_app(data, workers=workers, slots=slots)
    except KeyError:
        print("--data must be engine or propfan")
        return 2
    from .rest import make_http_server

    httpd = make_http_server(app, host=host, port=port)
    bound = httpd.server_address
    print(f"serving {data} ({workers} workers, {slots} slots) "
          f"on http://{bound[0]}:{bound[1]}")
    print("routes: /healthz /v1/tenants /v1/commands /v1/slo /v1/metrics")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
    return 0
