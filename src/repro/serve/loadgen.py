"""Deterministic DES workload generation: thousands of tenants.

The load generator is to the serving layer what
:class:`repro.faults.FaultPlan` is to the chaos suite: *every* random
draw happens at build time from ``random.Random`` seeded per tenant, so
the simulation itself consumes no entropy and two runs of the same
:class:`LoadSpec` replay byte-identically (pinned via
:meth:`TenantServer.fingerprint`).

A :class:`LoadSpec` describes the fleet statistically — tenant count,
arrival process (Poisson or bursty on/off), service-time distribution,
lane/weight mix, quotas, cancellation rate — and
:func:`build_workloads` expands it into explicit per-tenant schedules.
:func:`run_loadtest` then drives a :class:`TenantServer` over a
:class:`ModeledBackend` entirely in simulated time and returns a
:class:`LoadReport` with per-tenant SLO rollups from the shared
:class:`repro.obs.slo.SLOTracker`.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Any

from ..des.kernel import Environment
from .server import ModeledBackend, ServiceProfile, TenantServer, serve_slos
from .tenancy import LANE_INTERACTIVE, LANE_NORMAL, TenantConfig

__all__ = [
    "LoadReport",
    "LoadSpec",
    "RequestPlan",
    "TenantWorkload",
    "build_workloads",
    "run_loadtest",
]

#: synthetic command mix (name, relative weight, service-time scale).
#: Names are real command classes so SLO ``command_class`` patterns
#: apply; scales mirror the observed runtime ordering (cutplane fastest,
#: vortex heaviest).
COMMAND_MIX = (
    ("cutplane", 4, 0.5),
    ("iso-dataman", 3, 1.0),
    ("pathlines-dataman", 2, 1.4),
    ("vortex-dataman", 1, 2.2),
)


@dataclass(frozen=True)
class RequestPlan:
    """One pre-drawn submission."""

    at: float  #: absolute simulated submit time
    command: str
    service: ServiceProfile
    cost_bytes: int
    cancel_after: float | None = None  #: cancel this long after submit


@dataclass
class TenantWorkload:
    """One tenant's config plus its full submission schedule."""

    config: TenantConfig
    requests: list[RequestPlan] = field(default_factory=list)


@dataclass(frozen=True)
class LoadSpec:
    """Statistical description of a fleet-scale workload."""

    n_tenants: int = 100
    seed: int = 0
    requests_per_tenant: int = 3
    #: "poisson" — exponential inter-arrivals at ``rate_hz`` per tenant;
    #: "bursty" — bursts of ``burst_size`` back-to-back submits
    #: separated by exponential gaps of mean ``burst_gap_s``.
    arrival: str = "poisson"
    rate_hz: float = 0.05
    burst_size: int = 3
    burst_gap_s: float = 60.0
    #: lognormal service times around ``service_mean_s`` (sigma from
    #: ``service_cv``), scaled per command class.
    service_mean_s: float = 0.03
    service_cv: float = 0.4
    first_byte_frac: float = 0.3
    #: fraction of tenants in the interactive lane (weight 4 vs 1).
    priority_frac: float = 0.1
    max_in_flight: int = 2
    byte_budget: int | None = None
    cost_bytes_mean: int = 1 << 20
    cancel_frac: float = 0.0
    #: modeled cluster capacity (concurrent commands).
    slots: int = 8

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {self.n_tenants}")
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError(
                f"arrival must be poisson or bursty, got {self.arrival!r}"
            )
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be > 0, got {self.rate_hz}")
        if not 0.0 <= self.cancel_frac <= 1.0:
            raise ValueError(
                f"cancel_frac must be in [0, 1], got {self.cancel_frac}"
            )


def _tenant_rng(spec: LoadSpec, index: int) -> random.Random:
    """A private RNG per tenant — draws never interleave across tenants."""
    return random.Random((spec.seed << 24) ^ (index * 0x9E3779B1 + 1))


def build_workloads(spec: LoadSpec) -> list[TenantWorkload]:
    """Expand ``spec`` into explicit schedules (all randomness here)."""
    commands = [c for c in COMMAND_MIX for _ in range(c[1])]
    sigma = math.sqrt(math.log(1.0 + spec.service_cv**2))
    mu_base = math.log(spec.service_mean_s) - 0.5 * sigma * sigma
    workloads: list[TenantWorkload] = []
    for idx in range(spec.n_tenants):
        rng = _tenant_rng(spec, idx)
        interactive = rng.random() < spec.priority_frac
        config = TenantConfig(
            name=f"tenant-{idx:04d}",
            weight=4 if interactive else 1,
            lane=LANE_INTERACTIVE if interactive else LANE_NORMAL,
            max_in_flight=spec.max_in_flight,
            byte_budget=spec.byte_budget,
        )
        t = 0.0
        burst_left = 0
        requests: list[RequestPlan] = []
        for _ in range(spec.requests_per_tenant):
            if spec.arrival == "poisson":
                t += rng.expovariate(spec.rate_hz)
            else:
                if burst_left <= 0:
                    t += rng.expovariate(1.0 / spec.burst_gap_s)
                    burst_left = spec.burst_size
                burst_left -= 1
            name, _w, scale = commands[rng.randrange(len(commands))]
            total = rng.lognormvariate(mu_base + math.log(scale), sigma)
            profile = ServiceProfile(
                total_s=total,
                first_byte_s=spec.first_byte_frac * total,
            )
            cancel_after = None
            if spec.cancel_frac and rng.random() < spec.cancel_frac:
                cancel_after = rng.uniform(0.0, total)
            requests.append(
                RequestPlan(
                    at=t,
                    command=name,
                    service=profile,
                    cost_bytes=max(int(rng.expovariate(
                        1.0 / spec.cost_bytes_mean)), 1),
                    cancel_after=cancel_after,
                )
            )
        workloads.append(TenantWorkload(config=config, requests=requests))
    return workloads


@dataclass
class LoadReport:
    """Everything one load/soak run produced."""

    spec: LoadSpec
    server: TenantServer
    fingerprint: str
    sim_duration_s: float
    submitted: int
    admitted: int
    rejected: int
    completed: int
    cancelled: int
    failed: int
    queue_waits: list[float]

    # ---------------------------------------------------------- analysis
    def queue_wait_quantile(self, q: float) -> float:
        """Exact empirical quantile over every started command."""
        if not self.queue_waits:
            return 0.0
        values = sorted(self.queue_waits)
        pos = min(int(q * len(values)), len(values) - 1)
        return values[pos]

    @property
    def tracker(self):
        return self.server.tracker

    def to_json(self) -> dict[str, Any]:
        """The per-tenant SLO rollup artifact (CI uploads this)."""
        tracker = self.tracker
        tenants = {
            name: state.snapshot()
            for name, state in sorted(self.server.tenants.items())
        }
        rollups = [
            {
                "slo": st.slo.name,
                "tenant": st.key,
                "total": st.total,
                "attainment": st.attainment,
                "target": st.slo.target,
                "met": st.met,
                "p50_s": st.p50,
                "p99_s": st.p99,
                "burn_rate": st.burn_rate,
            }
            for st in tracker.status("tenant")
        ]
        return {
            "spec": {
                "n_tenants": self.spec.n_tenants,
                "seed": self.spec.seed,
                "requests_per_tenant": self.spec.requests_per_tenant,
                "arrival": self.spec.arrival,
                "slots": self.spec.slots,
            },
            "fingerprint": self.fingerprint,
            "sim_duration_s": self.sim_duration_s,
            "counts": {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "cancelled": self.cancelled,
                "failed": self.failed,
            },
            "queue_wait_p50_s": self.queue_wait_quantile(0.50),
            "queue_wait_p99_s": self.queue_wait_quantile(0.99),
            "tenants": tenants,
            "slo_rollups": rollups,
        }

    def format(self, worst: int = 8) -> str:
        """Human summary: counts, queue waits, worst tenants by burn."""
        tracker = self.tracker
        lines = [
            f"loadtest: {self.spec.n_tenants} tenants, seed {self.spec.seed}, "
            f"{self.spec.arrival} arrivals, {self.spec.slots} slots",
            f"  simulated duration: {self.sim_duration_s:.3f} s",
            f"  submitted {self.submitted}  admitted {self.admitted}  "
            f"rejected {self.rejected}  completed {self.completed}  "
            f"cancelled {self.cancelled}  failed {self.failed}",
            f"  queue wait p50 {self.queue_wait_quantile(0.5) * 1e3:.2f} ms  "
            f"p99 {self.queue_wait_quantile(0.99) * 1e3:.2f} ms",
            f"  fingerprint: {self.fingerprint}",
            "",
        ]
        overall = tracker.overall("interactive-response")
        if overall is not None:
            lines.append(
                f"  interactive-response (100 ms criterion): "
                f"{overall.attainment:.2%} of {overall.total} "
                f"(p50 {overall.p50 * 1e3:.2f} ms, p99 {overall.p99 * 1e3:.2f} ms)"
            )
        rows = tracker.status("tenant")
        rows.sort(key=lambda st: (-st.burn_rate, st.slo.name, st.key))
        shown = rows[:worst]
        if shown:
            lines.append(f"  worst {len(shown)} tenant rollups by burn rate:")
            for st in shown:
                flag = "" if st.met else " !"
                lines.append(
                    f"    {st.slo.name:22s} {st.key} n={st.total} "
                    f"attain={st.attainment:.1%} p99={st.p99 * 1e3:.2f} ms "
                    f"burn={st.burn_rate:.2f}{flag}"
                )
        return "\n".join(lines)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)


def _tenant_driver(env: Environment, server: TenantServer,
                   workload: TenantWorkload):
    """Process body: one tenant submitting (and cancelling) on schedule."""
    name = workload.config.name
    for plan in workload.requests:
        if plan.at > env.now:
            yield env.timeout(plan.at - env.now)
        handle = server.submit(
            name, plan.command,
            cost_bytes=plan.cost_bytes,
            service=plan.service,
        )
        if handle.state == "rejected":
            continue
        if plan.cancel_after is not None:
            env.process(
                _canceller(env, server, handle, plan.cancel_after),
                name=f"cancel-{name}-{handle.request_id}",
            )


def _canceller(env: Environment, server: TenantServer, handle, delay: float):
    if delay > 0:
        yield env.timeout(delay)
    server.cancel(handle)


def run_loadtest(
    spec: LoadSpec,
    slos: list | None = None,
    record_pops: bool = False,
) -> LoadReport:
    """Drive the whole fleet in simulated time; always terminates."""
    workloads = build_workloads(spec)
    env = Environment()
    backend = ModeledBackend(env, slots=spec.slots)
    server = TenantServer(
        backend,
        slos=slos if slos is not None else serve_slos(),
        record_pops=record_pops,
    )
    for workload in workloads:
        server.register(workload.config)
    server.start()
    for workload in workloads:
        env.process(
            _tenant_driver(env, server, workload),
            name=f"driver-{workload.config.name}",
        )
    env.run()
    counts = {"submitted": 0, "rejected": 0, "completed": 0,
              "cancelled": 0, "failed": 0}
    queue_waits: list[float] = []
    for handle in server.handles:
        counts["submitted"] += 1
        if handle.state == "rejected":
            counts["rejected"] += 1
        elif handle.state == "done":
            counts["completed"] += 1
        elif handle.state == "cancelled":
            counts["cancelled"] += 1
        elif handle.state == "failed":  # pragma: no cover - modeled never fails
            counts["failed"] += 1
        if handle.t_start is not None:
            queue_waits.append(handle.queue_wait_s)
    return LoadReport(
        spec=spec,
        server=server,
        fingerprint=server.fingerprint(),
        sim_duration_s=env.now,
        submitted=counts["submitted"],
        admitted=counts["submitted"] - counts["rejected"],
        rejected=counts["rejected"],
        completed=counts["completed"],
        cancelled=counts["cancelled"],
        failed=counts["failed"],
        queue_waits=queue_waits,
    )
