"""repro.serve — the multi-tenant serving layer.

The paper assumes a single ViSTA client driving one scheduler; this
package is the production answer to *thousands* of concurrent sessions
contending for the same cluster.  It layers, over the existing
``Channel``/``Scheduler``/``Session`` stack:

* :mod:`repro.serve.tenancy` — tenant registry: weights, priority
  lanes, admission quotas (max in-flight commands, block-bytes
  budgets) and per-tenant accounting;
* :mod:`repro.serve.queue` — :class:`FairCommandQueue`, a weighted
  round-robin command queue with strict priority lanes;
* :mod:`repro.serve.server` — :class:`TenantServer`, the long-lived
  front end: admission control, fair dispatch, cooperative
  cancellation, and per-tenant SLO rollups feeding
  :class:`repro.obs.slo.SLOTracker` (one SLO engine, not two);
* :mod:`repro.serve.loadgen` — a deterministic DES workload generator
  that drives thousands of simulated tenants with seeded
  Poisson/bursty arrival processes entirely in simulated time;
* :mod:`repro.serve.rest` — a thin HTTP/REST facade (stdlib
  ``http.server``; no external web framework required) for real
  traffic.

CLI: ``python -m repro loadtest`` (DES soak) and ``python -m repro
serve`` (HTTP facade).  See ``docs/SERVING.md``.
"""

from .loadgen import LoadReport, LoadSpec, build_workloads, run_loadtest
from .queue import FairCommandQueue
from .server import (
    ModeledBackend,
    RequestState,
    ServeHandle,
    ServiceProfile,
    SessionBackend,
    TenantServer,
    serve_slos,
)
from .tenancy import (
    LANE_BACKGROUND,
    LANE_INTERACTIVE,
    LANE_NAMES,
    LANE_NORMAL,
    AdmissionDecision,
    TenantConfig,
    TenantState,
)

__all__ = [
    "AdmissionDecision",
    "FairCommandQueue",
    "LANE_BACKGROUND",
    "LANE_INTERACTIVE",
    "LANE_NAMES",
    "LANE_NORMAL",
    "LoadReport",
    "LoadSpec",
    "ModeledBackend",
    "RequestState",
    "ServeHandle",
    "ServiceProfile",
    "SessionBackend",
    "TenantConfig",
    "TenantServer",
    "TenantState",
    "build_workloads",
    "run_loadtest",
    "serve_slos",
]
