"""Tenant registry: identity, weights, lanes, quotas, accounting.

A *tenant* is one logical client of the serving layer — a VR
workstation, a batch pipeline, a dashboard.  Its :class:`TenantConfig`
declares how the shared cluster treats it:

* ``weight`` — share of the fair queue's weighted round-robin within
  its lane (a weight-4 tenant gets 4× the service of a weight-1 tenant
  under contention);
* ``lane`` — strict priority class: :data:`LANE_INTERACTIVE` always
  dispatches before :data:`LANE_NORMAL`, which always dispatches
  before :data:`LANE_BACKGROUND`;
* ``max_in_flight`` — admission quota: commands admitted (queued or
  running) but not yet finished;
* ``byte_budget`` — admission quota on the summed declared
  ``cost_bytes`` of admitted commands (the block-bytes a command is
  expected to pull through the DMS), ``None`` = unlimited.

Admission is checked at submit time and never afterwards: an admitted
command keeps its slot until it completes, fails, or is cancelled.
:class:`TenantState` carries the live counters the server maintains;
its peak values are what the quota property tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "LANE_INTERACTIVE",
    "LANE_NORMAL",
    "LANE_BACKGROUND",
    "LANE_NAMES",
    "N_LANES",
    "AdmissionDecision",
    "TenantConfig",
    "TenantState",
]

#: strict priority lanes, dispatched in ascending order.
LANE_INTERACTIVE = 0
LANE_NORMAL = 1
LANE_BACKGROUND = 2
N_LANES = 3
LANE_NAMES = ("interactive", "normal", "background")


@dataclass(frozen=True)
class TenantConfig:
    """Declarative per-tenant policy (immutable once registered)."""

    name: str
    weight: int = 1
    lane: int = LANE_NORMAL
    max_in_flight: int = 4
    byte_budget: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight < 1:
            raise ValueError(f"weight must be >= 1, got {self.weight}")
        if not 0 <= self.lane < N_LANES:
            raise ValueError(f"lane must be in 0..{N_LANES - 1}, got {self.lane}")
        if self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.byte_budget is not None and self.byte_budget < 1:
            raise ValueError(f"byte_budget must be >= 1, got {self.byte_budget}")


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check."""

    admitted: bool
    reason: str = "ok"  #: "ok" | "in-flight-quota" | "byte-budget" | "unknown-tenant"

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.admitted


@dataclass
class TenantState:
    """Live accounting for one registered tenant.

    ``in_flight`` counts admitted-but-unfinished commands (queued plus
    running); the ``peak_*`` fields are high-water marks the quota
    properties assert against (peaks may never exceed the config).
    """

    config: TenantConfig
    in_flight: int = 0
    queued: int = 0
    running: int = 0
    bytes_in_use: int = 0
    peak_in_flight: int = 0
    peak_bytes: int = 0
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    degraded: int = 0
    failed: int = 0
    cancelled: int = 0
    total_queue_wait_s: float = 0.0
    max_queue_wait_s: float = 0.0
    reject_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.config.name

    # --------------------------------------------------------- admission
    def check(self, cost_bytes: int) -> AdmissionDecision:
        """Would one more command of ``cost_bytes`` be admitted now?"""
        cfg = self.config
        if self.in_flight >= cfg.max_in_flight:
            return AdmissionDecision(False, "in-flight-quota")
        if cfg.byte_budget is not None and (
            self.bytes_in_use + cost_bytes > cfg.byte_budget
        ):
            return AdmissionDecision(False, "byte-budget")
        return AdmissionDecision(True)

    def admit(self, cost_bytes: int) -> None:
        self.in_flight += 1
        self.queued += 1
        self.bytes_in_use += cost_bytes
        self.admitted += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)

    def release(self, cost_bytes: int) -> None:
        """Return one admission slot (completion, failure or cancel)."""
        self.in_flight -= 1
        self.bytes_in_use -= cost_bytes
        assert self.in_flight >= 0 and self.bytes_in_use >= 0, (
            f"tenant {self.name!r} released more than it admitted"
        )

    def reject(self, reason: str) -> None:
        self.rejected += 1
        self.reject_reasons[reason] = self.reject_reasons.get(reason, 0) + 1

    # ---------------------------------------------------------- reporting
    def snapshot(self) -> dict:
        """JSON-ready state (REST facade and loadtest artifacts)."""
        cfg = self.config
        return {
            "name": cfg.name,
            "weight": cfg.weight,
            "lane": LANE_NAMES[cfg.lane],
            "max_in_flight": cfg.max_in_flight,
            "byte_budget": cfg.byte_budget,
            "in_flight": self.in_flight,
            "queued": self.queued,
            "running": self.running,
            "bytes_in_use": self.bytes_in_use,
            "peak_in_flight": self.peak_in_flight,
            "peak_bytes": self.peak_bytes,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "degraded": self.degraded,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "max_queue_wait_s": self.max_queue_wait_s,
            "reject_reasons": dict(sorted(self.reject_reasons.items())),
        }
