"""The fair command queue: weighted round-robin with priority lanes.

Dispatch order is the serving layer's fairness policy, so it is fully
deterministic and very boring on purpose:

* **lanes** are strict priorities — a queued interactive command always
  dispatches before any queued normal command, which always dispatches
  before background work (the same idea as the DMS giving prefetch I/O
  a lower :class:`~repro.des.resources.Resource` priority);
* **within a lane** tenants are served weighted round-robin: each
  *round*, a tenant with backlog receives up to ``weight`` consecutive
  dispatches; the rotation order is tenant registration order, and a
  round ends when every backlogged tenant has exhausted its credit.

The WRR invariant the property suite pins: while a tenant stays
backlogged, at most ``sum(weights of concurrently backlogged tenants)``
dispatches separate two of its consecutive dispatches — no starvation
within a lane, with service share proportional to weight.

Items are arbitrary objects (the server queues
:class:`~repro.serve.server.ServeHandle`); :meth:`discard` supports
O(1) cancellation of queued items via lazy tombstoning.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..des.kernel import Environment, Event
from .tenancy import N_LANES

__all__ = ["FairCommandQueue"]

#: attribute stamped on discarded items (lazy tombstone).
_DEAD = "_fairq_dead"
#: attribute stamped on items the moment they are popped.  A popped
#: item may not have started executing yet (the dispatcher process gets
#: its first step later in the same timestep); the stamp lets the
#: server distinguish "still cancellable in-queue" from "already
#: dispatched" without a race.
_POPPED = "_fairq_popped"


class _Lane:
    """One priority lane: per-tenant FIFOs under weighted round-robin."""

    __slots__ = ("queues", "order", "weight", "credit", "cursor", "live",
                 "live_by")

    def __init__(self) -> None:
        self.queues: dict[str, deque] = {}
        self.order: list[str] = []
        self.weight: dict[str, int] = {}
        self.credit: dict[str, int] = {}
        self.cursor = 0
        self.live = 0
        self.live_by: dict[str, int] = {}

    def add_tenant(self, name: str, weight: int) -> None:
        if name in self.queues:
            return
        self.queues[name] = deque()
        self.order.append(name)
        self.weight[name] = weight
        self.credit[name] = weight
        self.live_by[name] = 0

    def push(self, name: str, item: Any) -> None:
        self.queues[name].append(item)
        self.live_by[name] += 1
        self.live += 1

    def discard_one(self, name: str) -> None:
        self.live_by[name] -= 1
        self.live -= 1

    def backlogged(self) -> list[str]:
        return [t for t in self.order if self.live_by[t]]

    def pop(self) -> Any:
        """The WRR-next live item; ``None`` when the lane is empty."""
        if self.live == 0:
            return None
        order, queues = self.order, self.queues
        credit, live_by = self.credit, self.live_by
        n = len(order)
        scanned = 0
        while True:
            if scanned >= n:
                # Full rotation with no credit left anywhere: new round.
                weight = self.weight
                for t in order:
                    credit[t] = weight[t]
                scanned = 0
            t = order[self.cursor]
            q = queues[t]
            # Purge tombstoned items at the head (lazy cancellation).
            while q and getattr(q[0], _DEAD, False):
                q.popleft()
            if live_by[t] and credit[t] > 0:
                item = q.popleft()
                live_by[t] -= 1
                self.live -= 1
                credit[t] -= 1
                if credit[t] == 0 or not live_by[t]:
                    self.cursor = (self.cursor + 1) % n
                return item
            self.cursor = (self.cursor + 1) % n
            scanned += 1


class FairCommandQueue:
    """Multi-lane weighted-fair queue with event-based consumption.

    :meth:`get` returns a DES :class:`Event` that fires with the next
    item the fairness policy selects — immediately if backlog exists,
    else when the next :meth:`put` arrives.  The *selection happens at
    fire time*, so a dispatcher that waits for a free worker slot
    first, then calls :meth:`get`, always receives the globally best
    queued command at the moment capacity frees up.
    """

    def __init__(self, env: Environment, n_lanes: int = N_LANES,
                 record_pops: bool = False):
        self.env = env
        self._lanes = [_Lane() for _ in range(n_lanes)]
        self._getters: deque[Event] = deque()
        #: optional dispatch audit log for the fairness property suite:
        #: (lane, tenant, tuple-of-backlogged-tenants-before-this-pop).
        self.record_pops = record_pops
        self.pop_log: list[tuple[int, str, tuple[str, ...]]] = []

    def __len__(self) -> int:
        return sum(lane.live for lane in self._lanes)

    def add_tenant(self, name: str, weight: int = 1) -> None:
        """Register ``name`` in every lane's rotation (idempotent)."""
        for lane in self._lanes:
            lane.add_tenant(name, weight)

    def backlog(self, lane: int | None = None) -> dict[str, int]:
        """Live queued items per tenant (one lane or all lanes summed)."""
        lanes = self._lanes if lane is None else [self._lanes[lane]]
        out: dict[str, int] = {}
        for ln in lanes:
            for t, n in ln.live_by.items():
                if n:
                    out[t] = out.get(t, 0) + n
        return out

    # ------------------------------------------------------------ put/get
    def put(self, tenant: str, lane: int, item: Any) -> None:
        """Enqueue ``item`` for ``tenant`` in ``lane``."""
        self._lanes[lane].push(tenant, item)
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            nxt = self._pop()
            if nxt is None:  # pragma: no cover - defensive
                self._getters.appendleft(getter)
            else:
                getter.succeed(nxt)
            return

    def get(self) -> Event:
        """An event yielding the next item under the fairness policy."""
        evt = Event(self.env)
        item = self._pop()
        if item is not None:
            evt.succeed(item)
        else:
            self._getters.append(evt)
        return evt

    def discard(self, tenant: str, lane: int, item: Any) -> None:
        """Cancel a queued item in O(1) (tombstone; purged on pop)."""
        if getattr(item, _DEAD, False):
            return
        setattr(item, _DEAD, True)
        self._lanes[lane].discard_one(tenant)

    # ------------------------------------------------------------ helpers
    @staticmethod
    def popped(item: Any) -> bool:
        """Has ``item`` already left the queue?"""
        return getattr(item, _POPPED, False)

    def _pop(self) -> Any:
        for idx, lane in enumerate(self._lanes):
            if lane.live:
                if self.record_pops:
                    before = tuple(lane.backlogged())
                    item = lane.pop()
                    self.pop_log.append(
                        (idx, getattr(item, "tenant", "?"), before)
                    )
                else:
                    item = lane.pop()
                setattr(item, _POPPED, True)
                return item
        return None
