"""Direct (framework-free) post-processing API.

One-call wrappers over the algorithm layer for users who have a
:class:`~repro.grids.multiblock.MultiBlockDataset` /
:class:`~repro.grids.multiblock.TimeSeries` in memory and just want
geometry — no simulated cluster, no DMS, no command protocol.  The
framework path (:class:`~repro.core.session.ViracochaSession`) produces
byte-identical geometry; these helpers exist because a post-processing
*library* should also work as a library.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .algorithms.contours import cutplane_contours
from .algorithms.criteria import extract_q_vortices
from .algorithms.cutplane import extract_cutplane
from .algorithms.isosurface import extract_isosurface
from .algorithms.lambda2 import extract_vortices, lambda2_field
from .algorithms.pathlines import Pathline, trace_pathline
from .algorithms.streaklines import Streakline, trace_streakline
from .algorithms.streamlines import trace_streamline
from .grids.multiblock import MultiBlockDataset, TimeSeries
from .viz.mesh import TriangleMesh
from .viz.polyline import PolylineSet

__all__ = [
    "isosurface",
    "isosurface_series",
    "vortex_regions",
    "q_vortex_regions",
    "cut_plane",
    "cut_plane_contours",
    "pathlines",
    "streamlines",
    "streakline",
    "add_lambda2_field",
]


def isosurface(
    dataset: MultiBlockDataset,
    scalar: str,
    isovalue: float,
    attributes: Sequence[str] | None = None,
) -> TriangleMesh:
    """Isosurface of one time level across all blocks."""
    return extract_isosurface(
        dataset, scalar, isovalue, attributes=list(attributes or [])
    )


def isosurface_series(
    series: TimeSeries,
    scalar: str,
    isovalue: float,
    time_indices: Sequence[int] | None = None,
) -> list[TriangleMesh]:
    """One isosurface per time level (feature animation)."""
    indices = list(time_indices) if time_indices is not None else range(len(series))
    return [extract_isosurface(series.level(i), scalar, isovalue) for i in indices]


def q_vortex_regions(
    dataset: MultiBlockDataset,
    threshold: float = 0.0,
    velocity: str = "velocity",
) -> TriangleMesh:
    """Vortex surfaces by the Q criterion (Q = threshold, Q > 0 inside)."""
    return extract_q_vortices(dataset, threshold=threshold, velocity=velocity)


def vortex_regions(
    dataset: MultiBlockDataset,
    threshold: float = 0.0,
    velocity: str = "velocity",
) -> TriangleMesh:
    """λ2 vortex boundary surfaces at ``λ2 = threshold`` (§6.3)."""
    return extract_vortices(dataset, threshold=threshold, velocity=velocity)


def cut_plane(
    dataset: MultiBlockDataset,
    normal: Sequence[float],
    offset: float = 0.0,
    attributes: Sequence[str] | None = None,
) -> TriangleMesh:
    """Plane cut ``normal · x = offset`` with optional field coloring."""
    return extract_cutplane(
        dataset, np.asarray(normal, dtype=float), offset, list(attributes or [])
    )


def cut_plane_contours(
    dataset: MultiBlockDataset,
    normal: Sequence[float],
    offset: float,
    scalar: str,
    values: Sequence[float],
) -> PolylineSet:
    """Contour lines of ``scalar`` on the plane ``normal · x = offset``."""
    return cutplane_contours(
        dataset, np.asarray(normal, dtype=float), offset, scalar, list(values)
    )


def add_lambda2_field(
    dataset: MultiBlockDataset, velocity: str = "velocity", name: str = "lambda2"
) -> MultiBlockDataset:
    """Attach the λ2 scalar field to every block (in place); returns it."""
    for block in dataset:
        block.set_field(name, lambda2_field(block, velocity))
    return dataset


def pathlines(
    series: TimeSeries,
    seeds: Sequence[Sequence[float]],
    t_start: float | None = None,
    t_end: float | None = None,
    as_polylines: bool = False,
    **tracer_kwargs,
) -> list[Pathline] | PolylineSet:
    """Integrate one pathline per seed through the unsteady flow."""
    paths = [
        trace_pathline(series, np.asarray(seed, dtype=float), t_start, t_end,
                       **tracer_kwargs)
        for seed in seeds
    ]
    if as_polylines:
        return PolylineSet.from_pathlines(paths)
    return paths


def streamlines(
    dataset: MultiBlockDataset,
    seeds: Sequence[Sequence[float]],
    duration: float = 1.0,
    as_polylines: bool = False,
    **tracer_kwargs,
) -> list[Pathline] | PolylineSet:
    """Steady-state traces on one frozen time level."""
    paths = [
        trace_streamline(dataset, np.asarray(seed, dtype=float), duration,
                         **tracer_kwargs)
        for seed in seeds
    ]
    if as_polylines:
        return PolylineSet.from_pathlines(paths)
    return paths


def streakline(
    series: TimeSeries,
    seed: Sequence[float],
    t_start: float | None = None,
    t_observe: float | None = None,
    n_particles: int = 20,
    **tracer_kwargs,
) -> Streakline:
    """A dye filament released continuously from ``seed`` (§9)."""
    return trace_streakline(
        series,
        np.asarray(seed, dtype=float),
        t_start,
        t_observe,
        n_particles,
        **tracer_kwargs,
    )
