"""Fault plans: deterministic, seeded schedules of cluster faults.

A :class:`FaultPlan` is a *static* list of :class:`FaultEvent` episodes
built ahead of the simulation — worker crashes, link degradation and
loss, DMS-server stalls.  All randomness is drawn from
``random.Random(seed)`` at plan-build time, never from wall-clock or OS
entropy during the run, so the same seed always yields the same
schedule and (through the DES clock) the same simulated execution.

The plan itself knows nothing about a live cluster; the
:class:`~repro.faults.injector.FaultInjector` binds it to a session.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

__all__ = ["FaultEvent", "FaultPlan"]

#: episode kinds a plan may contain.
FAULT_KINDS = ("worker-crash", "link-degrade", "link-loss", "server-stall")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault episode.

    ``target`` is a worker id for crashes, a link name (see
    :meth:`repro.des.cluster.SimCluster.links`) for link faults, and
    ignored for server stalls.  ``magnitude`` is kind-specific: the
    bandwidth factor kept during ``link-degrade`` (0 < f <= 1) and the
    per-message loss probability during ``link-loss``.
    """

    time: float
    kind: str
    target: str | int | None = None
    duration: float = 0.0
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.duration < 0:
            raise ValueError(f"fault duration must be >= 0, got {self.duration}")

    @property
    def end(self) -> float:
        return self.time + self.duration


@dataclass
class FaultPlan:
    """An ordered, seeded schedule of fault episodes.

    Builder methods append episodes and return ``self`` for chaining::

        plan = (FaultPlan(seed=7)
                .crash_worker(0.002, worker=1, downtime=0.01)
                .stall_server(0.004, duration=0.005))

    ``seed`` only matters for randomness consumed *during* the run —
    the per-message loss draws of ``link-loss`` episodes; the injector
    derives its message RNG from it.  :meth:`random` builds a whole
    schedule from the seed instead.
    """

    seed: int = 0
    events: list[FaultEvent] = field(default_factory=list)

    # ----------------------------------------------------------- builders
    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def crash_worker(
        self, time: float, worker: int, downtime: float = 0.0
    ) -> "FaultPlan":
        """Kill ``worker`` at ``time``; recover after ``downtime`` (0 = never)."""
        return self.add(
            FaultEvent(time=time, kind="worker-crash", target=worker,
                       duration=downtime)
        )

    def degrade_link(
        self, time: float, link: str, factor: float, duration: float
    ) -> "FaultPlan":
        """Run ``link`` at ``factor`` of its bandwidth for ``duration``."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degrade factor must be in (0, 1], got {factor}")
        return self.add(
            FaultEvent(time=time, kind="link-degrade", target=link,
                       duration=duration, magnitude=factor)
        )

    def slow_disk(
        self, time: float, node: int, factor: float, duration: float
    ) -> "FaultPlan":
        """Slow-disk episode: degrade node ``node``'s scratch disk."""
        return self.degrade_link(time, f"disk{node}", factor, duration)

    def lossy_link(
        self, time: float, link: str, loss_prob: float, duration: float
    ) -> "FaultPlan":
        """Drop/retransmit messages on ``link`` with ``loss_prob`` each."""
        if not 0.0 <= loss_prob <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {loss_prob}")
        return self.add(
            FaultEvent(time=time, kind="link-loss", target=link,
                       duration=duration, magnitude=loss_prob)
        )

    def stall_server(self, time: float, duration: float) -> "FaultPlan":
        """Freeze the DMS server's strategy answers for ``duration``."""
        return self.add(
            FaultEvent(time=time, kind="server-stall", duration=duration)
        )

    # ------------------------------------------------------------- random
    @classmethod
    def random(
        cls,
        seed: int,
        horizon: float,
        n_workers: int,
        n_events: int = 4,
        crash_downtime: float | None = None,
        max_episode: float | None = None,
        links: tuple[str, ...] = ("fileserver", "fabric"),
    ) -> "FaultPlan":
        """Draw a whole schedule from ``seed`` (build-time RNG only).

        ``horizon`` bounds episode start times — pick roughly the
        fault-free runtime of the command under test so episodes land
        while work is in flight.  Episode lengths default to fractions
        of the horizon (``crash_downtime`` 25%, ``max_episode`` 20%) so
        faults matter at any simulated time scale.  At most one crash
        per distinct worker is drawn, so a group always keeps at least
        one survivor when ``n_workers > 1``.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if crash_downtime is None:
            crash_downtime = 0.25 * horizon
        if max_episode is None:
            max_episode = 0.20 * horizon
        rng = random.Random(seed)
        plan = cls(seed=seed)
        crashed: set[int] = set()
        for _ in range(n_events):
            t = rng.uniform(0.0, horizon)
            duration = rng.uniform(0.1 * max_episode, max_episode)
            roll = rng.random()
            if roll < 0.35 and len(crashed) < max(n_workers - 1, 1):
                worker = rng.randrange(n_workers)
                if worker in crashed:
                    continue  # keep the draw sequence seed-stable
                crashed.add(worker)
                plan.crash_worker(t, worker=worker, downtime=crash_downtime)
            elif roll < 0.60:
                plan.degrade_link(
                    t, rng.choice(links), factor=rng.uniform(0.05, 0.5),
                    duration=duration,
                )
            elif roll < 0.85:
                plan.lossy_link(
                    t, rng.choice(links), loss_prob=rng.uniform(0.05, 0.4),
                    duration=duration,
                )
            else:
                plan.stall_server(t, duration=duration)
        plan.events.sort(key=lambda e: (e.time, e.kind, str(e.target)))
        return plan

    # -------------------------------------------------------------- query
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: str) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == kind]

    def shifted(self, dt: float) -> "FaultPlan":
        """A copy with every episode moved ``dt`` later (same seed)."""
        return FaultPlan(
            seed=self.seed,
            events=[replace(e, time=e.time + dt) for e in self.events],
        )

    def describe(self) -> str:
        """One line per episode — paste-ready for a bug report."""
        lines = [f"FaultPlan(seed={self.seed}, {len(self.events)} events)"]
        for e in sorted(self.events, key=lambda e: e.time):
            lines.append(
                f"  t={e.time:.6f} {e.kind} target={e.target!r} "
                f"duration={e.duration:.6f} magnitude={e.magnitude:.4f}"
            )
        return "\n".join(lines)
