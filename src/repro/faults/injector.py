"""Binds a :class:`~repro.faults.plan.FaultPlan` to a live session.

Every episode becomes a calendar callback (``Environment.call_at``) so
faults fire through the DES clock in deterministic event order — never
from wall-clock timers.  Firing an episode

* flips the targeted component's fault state (``Worker.crash``,
  ``Link.degrade``, per-message loss hooks, ``DataManagerServer.stall``),
* mirrors a zero-duration ``fault-*`` span / trace record, and
* bumps ``viracocha_faults_injected_total{kind=...}``,

so chaos runs are fully observable through the same repro.obs surface
as normal runs.
"""

from __future__ import annotations

import random
from typing import Any

from ..core.scheduler import RecoveryPolicy
from .plan import FaultEvent, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules a plan's episodes onto one :class:`ViracochaSession`.

    The session's scheduler gets a default :class:`RecoveryPolicy`
    installed when it has none — without supervision an injected crash
    would surface as an unconsumed process failure and abort the whole
    simulation instead of degrading the one command.

    Per-message loss draws come from a private ``random.Random`` derived
    from the plan seed and are consumed in DES event order, so the same
    seed replays byte-identically.
    """

    def __init__(self, plan: FaultPlan, session: Any):
        self.plan = plan
        self.session = session
        self.env = session.env
        self.cluster = session.cluster
        self.scheduler = session.scheduler
        self.server = session.scheduler.server
        self.tracer = getattr(session, "tracer", None)
        self.trace = getattr(session, "trace", None)
        self.metrics = getattr(session, "metrics", None)
        #: episodes fired so far, by kind (recoveries count separately).
        self.injected: dict[str, int] = {}
        #: per-message loss RNG — plan-seed derived, DES-order consumed.
        self._loss_rng = random.Random((plan.seed << 1) ^ 0x9E3779B9)
        #: active loss episodes per link name: list of (start, end, prob).
        self._loss_episodes: dict[str, list[tuple[float, float, float]]] = {}
        self._installed = False

    # ------------------------------------------------------------ install
    def install(self) -> "FaultInjector":
        """Schedule every episode; idempotent per injector instance."""
        if self._installed:
            return self
        self._installed = True
        if self.scheduler.recovery is None:
            self.scheduler.recovery = RecoveryPolicy()
        for event in sorted(
            self.plan.events, key=lambda e: (e.time, e.kind, str(e.target))
        ):
            self._schedule(event)
        return self

    def _schedule(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == "worker-crash":
            worker = self.scheduler.workers[int(event.target)]
            self.env.call_at(event.time, lambda w=worker, e=event: self._fire_crash(w, e))
            if event.duration > 0:
                self.env.call_at(
                    event.end, lambda w=worker, e=event: self._fire_recover(w, e)
                )
        elif kind == "link-degrade":
            link = self.cluster.link(str(event.target))
            self.env.call_at(
                event.time, lambda l=link, e=event: self._fire_degrade(l, e)
            )
            self.env.call_at(
                event.end, lambda l=link, e=event: self._fire_restore(l, e)
            )
        elif kind == "link-loss":
            link = self.cluster.link(str(event.target))
            name = link.name
            self._loss_episodes.setdefault(name, []).append(
                (event.time, event.end, event.magnitude)
            )
            if link.fault_hook is None:
                link.fault_hook = self._make_loss_hook(link)
            self.env.call_at(
                event.time,
                lambda l=link, e=event: self._mark(
                    "fault-link", l, mode="loss", loss_prob=e.magnitude,
                    until=e.end,
                ),
            )
            self.env.call_at(
                event.end,
                lambda l=link, e=event: self._mark(
                    "fault-link-restore", l, mode="loss"
                ),
            )
        elif kind == "server-stall":
            self.env.call_at(event.time, lambda e=event: self._fire_stall(e))
        else:  # pragma: no cover - FaultEvent already validates kinds
            raise ValueError(f"unknown fault kind {kind!r}")

    # -------------------------------------------------------------- fires
    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        if self.metrics is not None:
            self.metrics.counter(
                "viracocha_faults_injected_total", {"kind": kind},
                help="fault episodes fired by the injector",
            ).inc()

    def _emit(self, span_kind: str, node: int, **detail: Any) -> None:
        if self.trace is not None:
            self.trace.record(self.env.now, node, span_kind, **detail)
        if self.tracer is not None:
            span = self.tracer.begin(span_kind, name=span_kind, node=node, **detail)
            self.tracer.end(span)

    def _fire_crash(self, worker: Any, event: FaultEvent) -> None:
        self._count("worker-crash")
        self._emit(
            "fault-crash", worker.node.node_id,
            worker=worker.worker_id, downtime=event.duration,
        )
        worker.crash(reason="injected")

    def _fire_recover(self, worker: Any, event: FaultEvent) -> None:
        self._count("worker-recover")
        self._emit("fault-recover", worker.node.node_id, worker=worker.worker_id)
        worker.recover()

    def _fire_degrade(self, link: Any, event: FaultEvent) -> None:
        # Overlapping degrade episodes on one link do not compose: the
        # latest factor wins and the earliest restore clears it.
        self._count("link-degrade")
        self._emit(
            "fault-link", self.cluster.scheduler_node.node_id,
            link=link.name, factor=event.magnitude, until=event.end,
        )
        link.degrade(event.magnitude)

    def _fire_restore(self, link: Any, event: FaultEvent) -> None:
        self._count("link-restore")
        self._emit(
            "fault-link-restore", self.cluster.scheduler_node.node_id,
            link=link.name,
        )
        link.restore()

    def _mark(self, span_kind: str, link: Any, **detail: Any) -> None:
        kind = "link-loss" if span_kind == "fault-link" else "link-loss-end"
        self._count(kind)
        self._emit(
            span_kind, self.cluster.scheduler_node.node_id,
            link=link.name, **detail,
        )

    def _fire_stall(self, event: FaultEvent) -> None:
        self._count("server-stall")
        self._emit(
            "fault-stall", self.cluster.scheduler_node.node_id,
            duration=event.duration,
        )
        self.server.stall(self.env.now, event.duration)

    # --------------------------------------------------------------- loss
    def _make_loss_hook(self, link: Any):
        episodes = self._loss_episodes[link.name]

        def hook(nbytes: int) -> float:
            now = self.env.now
            prob = max(
                (p for (start, end, p) in episodes if start <= now < end),
                default=0.0,
            )
            if prob <= 0.0 or self._loss_rng.random() >= prob:
                return 0.0
            # One retransmission: the message is resent in full after
            # another protocol round trip.  Loss never drops data for
            # good — messages are delayed, not destroyed, so every
            # command still terminates.
            return link.latency + nbytes / link.effective_bandwidth

        return hook
