"""repro.faults — seeded fault injection for the simulated cluster.

Viracocha runs as a long-lived daemon on shared clusters (§3), so the
reproduction needs an answer to "what happens when a node dies
mid-command?".  This package provides it in three pieces:

* :class:`FaultPlan` / :class:`FaultEvent` — a deterministic, seeded
  schedule of worker crashes, link degradation/loss and DMS-server
  stalls (all randomness drawn at plan-build time);
* :class:`FaultInjector` — binds a plan to a live session through the
  DES calendar, with ``fault-*`` spans and metrics for observability;
* :func:`run_chaos` / :func:`trace_fingerprint` — the chaos-test
  harness: same seed ⇒ byte-identical trace, every run terminates,
  results are complete or flagged degraded.

Recovery itself (timeouts, retries, share reassignment) lives in
:class:`repro.core.scheduler.RecoveryPolicy`; the injector installs a
default policy when the session has none.
"""

from .chaos import (
    ChaosRun,
    chaos_session,
    degraded_share_rate,
    fault_free_runtime,
    open_spans,
    run_chaos,
    track_slos,
    trace_fingerprint,
)
from .injector import FaultInjector
from .plan import FAULT_KINDS, FaultEvent, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "ChaosRun",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "chaos_session",
    "degraded_share_rate",
    "fault_free_runtime",
    "open_spans",
    "run_chaos",
    "track_slos",
    "trace_fingerprint",
]
