"""Chaos-run harness: seeded fault schedules over real commands.

One call — :func:`run_chaos` — builds a fresh session, derives (or
takes) a :class:`FaultPlan`, installs the injector, runs the command,
and returns everything a test needs to assert the robustness
contract:

* same seed ⇒ byte-identical :func:`trace_fingerprint`,
* the command terminates,
* the result is complete or correctly flagged ``degraded``.

To reproduce a failing schedule from a report, re-run with the same
seed and session shape and print ``plan.describe()`` (see
``docs/TESTING.md``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from .injector import FaultInjector
from .plan import FaultPlan

__all__ = ["ChaosRun", "chaos_session", "degraded_share_rate",
           "fault_free_runtime", "open_spans", "run_chaos",
           "track_slos", "trace_fingerprint"]


def chaos_session(
    n_workers: int = 4,
    base_resolution: int = 4,
    n_timesteps: int = 2,
    recovery: Any = None,
    **kwargs: Any,
):
    """A small, fast session shaped like the test-suite sessions."""
    from .. import ViracochaSession, build_engine
    from ..bench import paper_cluster, paper_costs

    return ViracochaSession(
        build_engine(base_resolution=base_resolution, n_timesteps=n_timesteps),
        cluster_config=paper_cluster(n_workers),
        costs=paper_costs(),
        recovery=recovery,
        **kwargs,
    )


def fault_free_runtime(
    command: str, params: dict[str, Any], **session_kwargs: Any
) -> float:
    """Simulated runtime of one clean run — the natural plan horizon."""
    session = chaos_session(**session_kwargs)
    return session.run(command, params=dict(params)).total_runtime


@dataclass
class ChaosRun:
    """Everything one seeded chaos run produced."""

    command: str
    params: dict[str, Any]
    seed: int
    plan: FaultPlan
    session: Any
    result: Any  #: the CommandResult
    injector: FaultInjector
    fingerprint: str


def run_chaos(
    command: str,
    params: dict[str, Any],
    seed: int,
    horizon: float,
    plan: FaultPlan | None = None,
    n_events: int = 4,
    **session_kwargs: Any,
) -> ChaosRun:
    """Run ``command`` under a seeded fault schedule; always terminates.

    ``horizon`` bounds when episodes may start — pass (a fraction of)
    :func:`fault_free_runtime` so faults land mid-flight.  A custom
    ``plan`` overrides the seed-derived one.
    """
    session = chaos_session(**session_kwargs)
    if plan is None:
        plan = FaultPlan.random(
            seed, horizon=horizon,
            n_workers=len(session.scheduler.workers), n_events=n_events,
        )
    injector = FaultInjector(plan, session).install()
    result = session.run(command, params=dict(params))
    return ChaosRun(
        command=command,
        params=dict(params),
        seed=seed,
        plan=plan,
        session=session,
        result=result,
        injector=injector,
        fingerprint=trace_fingerprint(result),
    )


def degraded_share_rate(results: "list[Any]") -> float:
    """Fraction of planned shares lost across runs.

    The raw material for the ``complete-results`` SLO: each command
    plans ``group_size`` shares; unrecoverable ones end up in
    ``failed_shares``.  Accepts :class:`ChaosRun` objects or bare
    ``CommandResult``-shaped results.
    """
    planned = 0
    lost = 0
    for entry in results:
        result = getattr(entry, "result", entry)
        planned += result.group_size
        lost += len(result.failed_shares)
    return lost / planned if planned else 0.0


def track_slos(results: "list[Any]", tracker: Any = None) -> Any:
    """Feed chaos/command results into an SLO tracker.

    Builds a stock :class:`repro.obs.slo.SLOTracker` when none is
    given, so a chaos suite can report attainment and burn rate with
    one call: ``track_slos(runs).format_report("command")``.

    Results submitted through the serving layer carry their tenant, so
    multi-tenant chaos runs roll up per tenant for free:
    ``track_slos(runs).format_report("tenant")``.
    """
    if tracker is None:
        from ..obs.slo import SLOTracker, default_slos

        tracker = SLOTracker(default_slos())
    for entry in results:
        result = getattr(entry, "result", entry)
        tracker.observe_result(result)
    return tracker


def open_spans(result: Any, ignore_background: bool = True) -> list:
    """Spans a run left unfinished — the crash-leak detector.

    The simulation stops when the client receives the final packet, so
    speculative background I/O (a ``dms-prefetch`` and its children)
    may legitimately still be in flight at that instant, especially
    when a fault episode slowed the fileserver.  With
    ``ignore_background`` those chains are excluded; anything else left
    open means an abort path failed to close its span.
    """
    by_id = {s.span_id: s for s in result.spans}

    def background(span) -> bool:
        while span is not None:
            if span.kind == "dms-prefetch":
                return True
            span = by_id.get(span.parent_id)
        return False

    return [
        s for s in result.spans
        if not s.finished and not (ignore_background and background(s))
    ]


def trace_fingerprint(result: Any) -> str:
    """Deterministic digest of one run's observable behavior.

    Covers the span stream (kind, name, node, timestamps, attributes,
    parent linkage), packet arrival times, the degraded flag, and the
    merged geometry size.  Request ids come from a process-global
    counter, so they differ between repeats of the same seed; they are
    renumbered in first-appearance order (span ids likewise) before
    hashing — everything else must match bit-for-bit.
    """
    h = hashlib.sha256()
    request_ids: dict[Any, int] = {}
    span_ids: dict[int, int] = {}

    def norm_request(value: Any) -> int:
        return request_ids.setdefault(value, len(request_ids))

    for span in result.spans:
        span_ids[span.span_id] = len(span_ids)
        attrs = dict(span.attrs)
        if "request" in attrs:
            attrs["request"] = norm_request(attrs["request"])
        parent = span_ids.get(span.parent_id, -1)
        line = (
            f"{span.kind}|{span.name}|{span.node}|parent={parent}|"
            f"{span.t_start!r}|{span.t_end!r}|{sorted(attrs.items())!r}\n"
        )
        h.update(line.encode())
    for t in result.packet_times:
        h.update(f"packet|{t!r}\n".encode())
    h.update(
        f"degraded|{result.degraded}|{sorted(result.failed_shares)}\n".encode()
    )
    n_triangles = getattr(result.geometry, "n_triangles", None)
    h.update(f"geometry|{n_triangles}\n".encode())
    return h.hexdigest()
