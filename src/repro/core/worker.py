"""Layer 2: workers.

A worker executes its share of a command by driving the command's op
generator (layer 3), charging simulated time for loads, computation and
transmission, while producing *real* geometry.

"Whenever the user requires a new CFD feature, a command is sent [...]
As soon as enough processes (called workers) are available, they form a
work group and a new parallel post-processing task is started." (§3)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from ..des.cluster import SimCluster, SimNode
from ..des.kernel import Environment, Event
from ..dms.proxy import DataProxy
from ..dms.source import BlockSource
from .channels import Mailbox, SimMPIChannel, SimTCPChannel
from .commands import (
    Command,
    CommandContext,
    Compute,
    ComputeCached,
    Emit,
    Load,
    Prefetch,
)
from .messages import ProgressUpdate, ResultPacket, WorkerDone

__all__ = ["Worker", "WorkerShare", "WorkerUnavailable"]


class WorkerUnavailable(RuntimeError):
    """Raised when an assignment is started on a crashed worker."""


@dataclass
class WorkerShare:
    """What one worker produced for one command (returned to the master)."""

    worker_index: int
    payloads: list[Any] = field(default_factory=list)
    nbytes: int = 0
    packets_streamed: int = 0
    #: simulated seconds this share spent per op kind — a span-free
    #: phase breakdown that stays available when tracing is disabled.
    load_seconds: float = 0.0
    compute_seconds: float = 0.0
    stream_seconds: float = 0.0


class Worker:
    """One computing process of the cluster."""

    def __init__(
        self,
        env: Environment,
        cluster: SimCluster,
        node: SimNode,
        proxy: DataProxy,
        source: BlockSource,
        worker_id: int,
        trace=None,
        tracer=None,
    ):
        self.env = env
        self.cluster = cluster
        self.node = node
        self.proxy = proxy
        self.source = source
        self.worker_id = worker_id
        self.trace = trace
        self.tracer = tracer  #: optional repro.obs.SpanTracer
        self.mailbox = Mailbox(env, name=f"worker{worker_id}")
        self.tcp = SimTCPChannel(cluster)
        self.mpi = SimMPIChannel(cluster)
        #: fault state: a crashed worker aborts its running assignment
        #: and refuses new ones until :meth:`recover` is called.
        self.crashed = False
        self.crash_count = 0
        #: the Process currently executing this worker's assignment
        #: (set by the scheduler's supervisor; interrupt target).
        self._active_proc = None

    # ------------------------------------------------------------ faults
    def crash(self, reason: str = "fault") -> None:
        """Kill this worker: abort the running assignment, go offline.

        The in-flight assignment process (if any) is interrupted with a
        ``("worker-crash", worker_id, reason)`` cause; the scheduler's
        supervisor observes the failure and retries or reassigns the
        share.  Cached data survives the crash (the node's memory is
        simulated state, not a real process image).
        """
        self.crashed = True
        self.crash_count += 1
        proc = self._active_proc
        if proc is not None and proc.is_alive:
            proc.interrupt(cause=("worker-crash", self.worker_id, reason))

    def recover(self, reason: str = "recovered") -> None:
        """Bring a crashed worker back online (new assignments only)."""
        self.crashed = False

    # ----------------------------------------------------------- loading
    def _load_direct(self, item) -> Generator[Event, None, Any]:
        """Bypass the DMS: read from the fileserver every single time.

        This is what the paper's Simple* baselines do — no cache, no
        prefetch, no cooperative transfers.
        """
        nbytes = self.source.modeled_bytes(item)
        yield from self.cluster.read_fileserver(self.node, nbytes)
        return self.source.get(item)

    # ---------------------------------------------------------- execute
    def execute(
        self,
        command: Command,
        ctx: CommandContext,
        assignment: Any,
        worker_index: int,
        request_id: int,
        client_mailbox: Mailbox,
        parent_span=None,
    ) -> Generator[Event, None, WorkerShare]:
        """Process body: run one assignment to completion.

        Raises :class:`WorkerUnavailable` when started on a crashed
        worker; an injected mid-run crash surfaces as an
        :class:`~repro.des.kernel.Interrupt` failure of the wrapping
        process.  All spans opened by this attempt are closed on any
        exit path so a crashed attempt leaves a well-formed trace.
        """
        if self.crashed:
            raise WorkerUnavailable(f"worker {self.worker_id} is down")
        share = WorkerShare(worker_index=worker_index)
        tracer = self.tracer
        wspan = None
        if tracer is not None:
            wspan = tracer.begin(
                "worker", name=f"{command.name}[{worker_index}]",
                node=self.node.node_id, parent=parent_span,
                request=request_id, worker=worker_index,
            )
        open_leaf = None  #: child span an abort would leave dangling
        gen = command.run(ctx, assignment, worker_index)
        # Optional §9 progress feedback: one tiny packet per block load.
        report_progress = bool(ctx.params.get("progress"))
        try:
            progress_total = len(assignment)
        except TypeError:
            progress_total = 0
        progress_done = 0
        op_result: Any = None
        try:
            while True:
                try:
                    op = gen.send(op_result)
                except StopIteration:
                    break
                op_result = None
                if isinstance(op, Load):
                    lspan = None
                    if tracer is not None:
                        lspan = open_leaf = tracer.begin(
                            "load", name=str(op.item), node=self.node.node_id,
                            parent=wspan, dms=command.use_dms,
                        )
                    t_op = self.env.now
                    if command.use_dms:
                        op_result = yield from self.proxy.request(
                            op.item, parent_span=lspan
                        )
                    else:
                        op_result = yield from self._load_direct(op.item)
                    share.load_seconds += self.env.now - t_op
                    if tracer is not None:
                        tracer.end(lspan)
                        open_leaf = None
                    if report_progress and progress_total:
                        progress_done = min(progress_done + 1, progress_total)
                        update = ProgressUpdate(
                            request_id=request_id,
                            worker_index=worker_index,
                            completed=progress_done,
                            total=progress_total,
                        )
                        yield from self.tcp.send(self.node, update, client_mailbox)
                elif isinstance(op, Compute):
                    cspan = None
                    if tracer is not None:
                        cspan = open_leaf = tracer.begin(
                            "compute", name=command.name, node=self.node.node_id,
                            parent=wspan, cost=op.cost,
                        )
                    t_op = self.env.now
                    op_result = op.fn() if op.fn is not None else None
                    yield from self.node.compute(op.cost)
                    share.compute_seconds += self.env.now - t_op
                    if tracer is not None:
                        tracer.end(cspan)
                        open_leaf = None
                elif isinstance(op, ComputeCached):
                    cspan = None
                    if tracer is not None:
                        cspan = open_leaf = tracer.begin(
                            "compute", name=command.name, node=self.node.node_id,
                            parent=wspan, cost=op.cost, item=str(op.item),
                        )
                    t_op = self.env.now
                    payload, where = (None, None)
                    if command.use_dms:
                        payload, where = self.proxy.lookup_derived(
                            op.item, count_miss=op.fn is not None
                        )
                    if payload is not None:
                        # Derived-cache hit: the work was already paid
                        # for; an L2 hit still costs the local read.
                        if where == "l2":
                            yield from self.node.read_local(op.nbytes)
                        op_result = payload
                    elif op.fn is not None:
                        op_result = op.fn()
                        yield from self.node.compute(op.cost)
                        if command.use_dms:
                            yield from self.proxy.store_derived(
                                op.item, op_result, op.nbytes
                            )
                    # else: a probe (fn=None) missed — the command will
                    # derive the item itself; nothing charged here.
                    share.compute_seconds += self.env.now - t_op
                    if tracer is not None:
                        tracer.end(cspan, cached=payload is not None)
                        open_leaf = None
                elif isinstance(op, Emit):
                    if command.streaming:
                        sspan = None
                        if tracer is not None:
                            sspan = open_leaf = tracer.begin(
                                "stream-packet", name=f"packet{share.packets_streamed}",
                                node=self.node.node_id, parent=wspan,
                                nbytes=op.nbytes, sequence=share.packets_streamed,
                            )
                        t_op = self.env.now
                        if ctx.costs.stream_packet_overhead:
                            yield from self.node.compute(ctx.costs.stream_packet_overhead)
                        packet = ResultPacket(
                            request_id=request_id,
                            worker_index=worker_index,
                            sequence=share.packets_streamed,
                            payload=op.payload,
                            nbytes=op.nbytes,
                            kind=op.kind,
                        )
                        share.packets_streamed += 1
                        yield from self.tcp.send(self.node, packet, client_mailbox)
                        share.stream_seconds += self.env.now - t_op
                        if tracer is not None:
                            tracer.end(sspan)
                            open_leaf = None
                        if self.trace is not None:
                            self.trace.record(
                                self.env.now,
                                self.node.node_id,
                                "stream",
                                request=request_id,
                                nbytes=op.nbytes,
                            )
                    else:
                        share.payloads.append(op.payload)
                        share.nbytes += op.nbytes
                elif isinstance(op, Prefetch):
                    if command.use_dms:
                        self.proxy.prefetch(op.item)
                else:
                    raise TypeError(
                        f"command {command.name!r} yielded unknown op {op!r}"
                    )
        finally:
            if tracer is not None:
                if open_leaf is not None and open_leaf.t_end is None:
                    tracer.end(open_leaf, aborted=True)
                if wspan is not None and wspan.t_end is None:
                    tracer.end(
                        wspan, nbytes=share.nbytes,
                        packets_streamed=share.packets_streamed,
                    )
        return share

    def send_share_to_master(
        self, share: WorkerShare, request_id: int, master_mailbox: Mailbox,
        parent_span=None,
    ) -> Generator[Event, None, None]:
        """Transfer this worker's buffered partial result over the fabric."""
        message = WorkerDone(
            request_id=request_id,
            worker_index=share.worker_index,
            partial_nbytes=share.nbytes,
            payload=share.payloads,
        )
        span = None
        if self.tracer is not None:
            span = self.tracer.begin(
                "stream-packet", name=f"share[{share.worker_index}]",
                node=self.node.node_id, parent=parent_span,
                nbytes=share.nbytes, request=request_id, share=True,
            )
        yield from self.mpi.send(self.node, message, master_mailbox)
        if span is not None:
            self.tracer.end(span)
