"""Layer 2: the scheduler.

The scheduler lives on node 0 of the cluster, receives command requests
from the visualization client over TCP, forms a work group, distributes
assignments over the message-passing fabric, and coordinates result
collection: either the master worker gathers partial results and sends
one merged package (the standard path of §3), or — with streaming —
workers transmit directly and the scheduler only signals completion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Generator

from ..des.cluster import SimCluster
from ..des.kernel import AllOf, AnyOf, Environment, Event, Interrupt
from ..dms.prefetch import BlockMarkovPrefetcher, SequenceOrder, make_prefetcher
from ..dms.proxy import DataProxy, DMSConfig
from ..dms.server import DataManagerServer
from ..dms.source import BlockSource
from .channels import Mailbox, SimMPIChannel, SimTCPChannel
from .commands import Command, CommandContext, CommandRegistry, lpt_order
from .costs import CostModel, DEFAULT_COSTS
from .messages import ResultPacket, WorkAssignment, WorkerDone
from .worker import Worker, WorkerShare, WorkerUnavailable

__all__ = ["RecoveryPolicy", "RunRecord", "Scheduler", "ShareOutcome"]

#: ``params["schedule"]`` values that switch a command to the dynamic
#: work-stealing path.  Mirrors the direct executor's
#: ``repro.parallel.dynamic.DYNAMIC_SCHEDULES`` (kept as a literal here
#: so the simulation core does not import the multiprocessing layer).
#: Anything else — including other commands' private schedule params
#: such as the progressive command's "level-major" — stays static.
_DYNAMIC_SCHEDULES = ("dynamic", "dynamic+pipeline")


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the scheduler reacts to worker failures and stalls.

    With a policy installed, every share runs under a supervisor that
    retries crashed or timed-out attempts (backoff in *simulated* time)
    and reassigns a dead worker's share to a surviving group member.
    ``None`` (the default on :class:`Scheduler`) keeps the fault-free
    fast path: a worker failure propagates and fails the command.
    """

    #: interrupt an attempt running longer than this many simulated
    #: seconds (None disables assignment timeouts).
    assignment_timeout: float | None = None
    #: additional attempts after the first one.
    max_retries: int = 2
    #: backoff before retry k is ``retry_backoff * backoff_factor**(k-1)``.
    retry_backoff: float = 0.05
    backoff_factor: float = 2.0
    #: move a dead worker's share to the lowest-id surviving group
    #: member; False pins shares to their original worker.
    reassign: bool = True


@dataclass
class ShareOutcome:
    """What the supervisor concluded about one share of a command."""

    index: int  #: share index within the work group
    share: WorkerShare | None  #: None when every attempt failed
    executor: Worker | None  #: worker that produced ``share``
    attempts: int = 1
    reassignments: int = 0
    reason: str = "ok"  #: last failure reason when ``share`` is None


@dataclass
class RunRecord:
    """Scheduler-side record of one executed command."""

    request_id: int
    command: str
    group_size: int
    t_start: float
    t_end: float = 0.0
    shares: list[WorkerShare] = field(default_factory=list)
    merged: Any = None
    #: True when the merged result misses at least one share (partial
    #: results served after unrecoverable worker failures).
    degraded: bool = False
    failed_shares: list[int] = field(default_factory=list)
    retries: int = 0
    reassignments: int = 0
    #: seconds between submit and the work group being fully acquired
    #: (setup + waiting on busy workers) — the SLO layer's queue term.
    queue_wait_s: float = 0.0
    #: originating tenant when submitted through the serving layer.
    tenant: str = "default"
    #: simulated seconds workers spent waiting on the run tail (dynamic
    #: runs; always 0.0 on the static path, so fingerprints are stable).
    idle_seconds: float = 0.0
    #: tasks executed beyond static fair shares (dynamic runs only).
    steals: int = 0

    @property
    def runtime(self) -> float:
        return self.t_end - self.t_start


class Scheduler:
    """Owns the worker pool, the DMS server and command dispatch."""

    def __init__(
        self,
        env: Environment,
        cluster: SimCluster,
        source: BlockSource,
        registry: CommandRegistry,
        costs: CostModel = DEFAULT_COSTS,
        dms_config: DMSConfig | None = None,
        server: DataManagerServer | None = None,
        trace=None,
        tracer=None,
        recovery: RecoveryPolicy | None = None,
    ):
        self.env = env
        self.cluster = cluster
        self.source = source
        self.registry = registry
        self.costs = costs
        self.dms_config = dms_config or DMSConfig()
        self.server = server or DataManagerServer()
        self.trace = trace
        self.tracer = tracer  #: optional repro.obs.SpanTracer
        #: None = fault-free fast path; a policy turns on supervision.
        self.recovery = recovery
        #: session-lifetime recovery counters (published as metrics).
        self.recovery_stats = {
            "timeouts": 0,
            "retries": 0,
            "reassignments": 0,
            "lost_shares": 0,
        }
        self.mailbox = Mailbox(env, name="scheduler")
        self.tcp = SimTCPChannel(cluster)
        self.mpi = SimMPIChannel(cluster, account="other")
        self.workers: list[Worker] = []
        for wid, node in enumerate(cluster.worker_nodes):
            proxy = DataProxy(
                env, cluster, node, self.server, source,
                config=self.dms_config, trace=trace, tracer=tracer,
            )
            self.workers.append(
                Worker(env, cluster, node, proxy, source, wid,
                       trace=trace, tracer=tracer)
            )
        self.history: list[RunRecord] = []
        #: shared block -> TransitionTable graph kept across commands
        #: when ``retain_markov`` is set (the paper's learning phase).
        self._retained_markov: dict = {}
        # Work-group formation (§3): a command starts "as soon as enough
        # processes (called workers) are available".  The free pool is a
        # priority store (lowest ids first, keeping cache placement
        # stable across sequential runs); the guard serializes
        # acquisition so two pending commands cannot deadlock by each
        # grabbing part of the pool.
        from ..des.resources import PriorityStore, Resource

        self._free_workers = PriorityStore(env)
        for wid in range(len(self.workers)):
            self._free_workers.put(wid)
        self._acquire_guard = Resource(env, capacity=1)

    # ------------------------------------------------------- work groups
    def acquire_group(self, group_size: int):
        """Process body: wait for and claim ``group_size`` workers."""
        with self._acquire_guard.request() as guard:
            yield guard
            ids = []
            for _ in range(group_size):
                wid = yield self._free_workers.get()
                ids.append(wid)
        return sorted(ids)

    def release_group(self, ids) -> None:
        for wid in ids:
            self._free_workers.put(wid)

    # ----------------------------------------------------------- helpers
    def _context(self, params: dict[str, Any]) -> CommandContext:
        t0, t1 = params.get("time_range", (0, self.source.n_timesteps))
        if not 0 <= t0 < t1 <= self.source.n_timesteps:
            raise ValueError(
                f"invalid time_range ({t0}, {t1}) for {self.source.n_timesteps} steps"
            )
        handles_by_time = [self.source.handles(t) for t in range(t0, t1)]
        return CommandContext(
            dataset=self.source.name,
            handles_by_time=handles_by_time,
            params=dict(params),
            costs=self.costs,
            time_offset=t0,
            times=list(self.source.times[t0:t1]),
        )

    def _install_prefetchers(
        self, command: Command, ctx: CommandContext, assignments: list[Any], group: list[Worker]
    ) -> None:
        spec = ctx.params.get("prefetch", command.prefetcher_spec(ctx))
        # The DMS statistical unit is central (§4.2): Markov observations
        # from all proxies train one shared probability graph.  With
        # ``retain_markov`` the graph survives across commands — the
        # paper's "after a learning phase" condition, under which "a
        # maximum of 95% cache misses could be eliminated".
        if ctx.params.get("retain_markov"):
            shared_markov_table = self._retained_markov
        else:
            shared_markov_table = {}
        for worker, assignment in zip(group, assignments):
            if spec == "none":
                worker.proxy.prefetcher = make_prefetcher("none")
                continue
            if spec == "block-markov":
                block_order = sorted(
                    h.block_id for h in ctx.handles_by_time[0]
                )
                worker.proxy.prefetcher = BlockMarkovPrefetcher(
                    dataset=ctx.dataset,
                    n_timesteps=ctx.n_timesteps,
                    block_order=block_order,
                    width=int(ctx.params.get("prefetch_width", 1)),
                    time_offset=ctx.time_offset,
                    table=shared_markov_table,
                )
                continue
            sequence = command.item_sequence_for(ctx, assignment) or []
            order = SequenceOrder(sequence)
            kwargs = {}
            if spec == "markov+obl":
                kwargs["width"] = int(ctx.params.get("prefetch_width", 1))
            worker.proxy.prefetcher = make_prefetcher(spec, order, **kwargs)

    # -------------------------------------------------------- run command
    def run_command(
        self,
        name: str,
        params: dict[str, Any],
        group_size: int,
        client_mailbox: Mailbox,
        request_id: int,
        command_kwargs: dict[str, Any] | None = None,
        parent_span=None,
        tenant: str = "default",
    ) -> Generator[Event, None, RunRecord]:
        """Process body: execute one command end to end."""
        if not 1 <= group_size <= len(self.workers):
            raise ValueError(
                f"group_size {group_size} out of range 1..{len(self.workers)}"
            )
        command = self.registry.create(name, **(command_kwargs or {}))
        record = RunRecord(
            request_id=request_id,
            command=name,
            group_size=group_size,
            t_start=self.env.now,
            tenant=tenant,
        )
        sched_node = self.cluster.scheduler_node
        # Command setup (group formation, argument handling), then wait
        # until enough workers are free to form the group (§3).
        yield from sched_node.compute(self.costs.command_setup)
        worker_ids = yield from self.acquire_group(group_size)
        record.queue_wait_s = self.env.now - record.t_start
        # Tag the group's proxies with the command's tenant while the
        # group is held (groups are exclusive, so the tag is unambiguous);
        # the DMS uses it to label cluster-dedup flights per tenant.
        for wid in worker_ids:
            self.workers[wid].proxy.current_tenant = tenant
        if self.trace is not None:
            self.trace.record(
                self.env.now, 0, "command-start",
                request=request_id, command=name, workers=list(worker_ids),
            )
        cspan = None
        if self.tracer is not None:
            # The tenant attribute is added only for non-default tenants
            # so single-client traces (and their pinned fingerprints)
            # are byte-identical to the pre-serving-layer ones.
            extra = {"tenant": tenant} if tenant != "default" else {}
            cspan = self.tracer.begin(
                "command", name=name, node=sched_node.node_id,
                parent=parent_span, request=request_id,
                workers=list(worker_ids), group_size=group_size,
                **extra,
            )
        try:
            if str(params.get("schedule", "static")) in _DYNAMIC_SCHEDULES:
                record = yield from self._run_dynamic_on_group(
                    command, name, params, worker_ids, client_mailbox,
                    request_id, record, command_span=cspan,
                )
            else:
                record = yield from self._run_on_group(
                    command, name, params, worker_ids, client_mailbox,
                    request_id, record, command_span=cspan,
                )
        finally:
            if cspan is not None:
                self.tracer.end(cspan)
            for wid in worker_ids:
                self.workers[wid].proxy.current_tenant = "default"
            self.release_group(worker_ids)
        return record

    def _run_on_group(
        self,
        command: Command,
        name: str,
        params: dict[str, Any],
        worker_ids,
        client_mailbox: Mailbox,
        request_id: int,
        record: RunRecord,
        command_span=None,
    ) -> Generator[Event, None, RunRecord]:
        group_size = len(worker_ids)
        sched_node = self.cluster.scheduler_node
        ctx = self._context(params)
        group = [self.workers[wid] for wid in worker_ids]
        assignments = command.plan(ctx, group_size)
        if len(assignments) != group_size:
            raise RuntimeError(
                f"command {name!r} planned {len(assignments)} assignments "
                f"for group of {group_size}"
            )
        self._install_prefetchers(command, ctx, assignments, group)

        # Distribute assignments over the fabric.
        master_mailbox = Mailbox(self.env, name=f"master-{request_id}")
        for idx, (worker, assignment) in enumerate(zip(group, assignments)):
            message = WorkAssignment(
                request_id=request_id,
                command=name,
                params=ctx.params,
                worker_index=idx,
                group_size=group_size,
                assignment=assignment,
            )
            yield from self.mpi.send(sched_node, message, worker.mailbox)

        # Execute all shares concurrently.  With a recovery policy each
        # share runs under a supervisor (timeout/retry/reassignment);
        # without one the fault-free fast path is used unchanged.
        if self.recovery is None:
            procs = [
                self.env.process(
                    worker.execute(
                        command, ctx, assignment, idx, request_id, client_mailbox,
                        parent_span=command_span,
                    ),
                    name=f"worker{idx}-{name}",
                )
                for idx, (worker, assignment) in enumerate(zip(group, assignments))
            ]
            results = yield AllOf(self.env, procs)
            outcomes = [
                ShareOutcome(index=idx, share=results[p], executor=group[idx])
                for idx, p in enumerate(procs)
            ]
        else:
            sups = [
                self.env.process(
                    self._supervise(
                        command, ctx, assignment, idx, request_id,
                        client_mailbox, group, command_span=command_span,
                    ),
                    name=f"supervise{idx}-{name}",
                )
                for idx, assignment in enumerate(assignments)
            ]
            results = yield AllOf(self.env, sups)
            outcomes = [results[p] for p in sups]

        successful = [o for o in outcomes if o.share is not None]
        shares = [o.share for o in successful]
        record.shares = shares
        record.failed_shares = [o.index for o in outcomes if o.share is None]
        record.degraded = bool(record.failed_shares)
        record.retries = sum(max(o.attempts - 1, 0) for o in outcomes)
        record.reassignments = sum(o.reassignments for o in outcomes)
        if record.degraded:
            self._fault_event(
                "fault-degraded", self.cluster.scheduler_node.node_id,
                parent=command_span, request=request_id,
                failed_shares=list(record.failed_shares),
            )

        master = successful[0].executor if successful else group[0]
        if command.streaming:
            # Workers streamed directly; signal completion to the client.
            final = ResultPacket(
                request_id=request_id,
                worker_index=0,
                sequence=sum(s.packets_streamed for s in shares),
                payload=None,
                nbytes=0,
                final=True,
            )
            fspan = None
            if self.tracer is not None:
                fspan = self.tracer.begin(
                    "stream-packet", name="final", node=master.node.node_id,
                    parent=command_span, nbytes=0, final=True,
                )
            yield from self.tcp.send(master.node, final, client_mailbox)
            if fspan is not None:
                self.tracer.end(fspan)
        else:
            # Collect partials at the master worker over the fabric.
            for outcome in successful[1:]:
                yield from outcome.executor.send_share_to_master(
                    outcome.share, request_id, master_mailbox,
                    parent_span=command_span,
                )
            collected = [successful[0].share.payloads] if successful else []
            for _ in successful[1:]:
                message = yield master_mailbox.get()
                assert isinstance(message, WorkerDone)
                collected.append(message.payload)
            total_nbytes = sum(s.nbytes for s in shares)
            mspan = None
            if self.tracer is not None:
                mspan = self.tracer.begin(
                    "merge", name=name, node=master.node.node_id,
                    parent=command_span, nbytes=total_nbytes,
                    n_shares=len(shares),
                )
            yield from master.node.compute(self.costs.merge_per_byte * total_nbytes)
            merged = command.merge(collected)
            if mspan is not None:
                self.tracer.end(mspan)
            record.merged = merged
            final = ResultPacket(
                request_id=request_id,
                worker_index=0,
                sequence=0,
                payload=merged,
                nbytes=total_nbytes,
                final=True,
            )
            fspan = None
            if self.tracer is not None:
                fspan = self.tracer.begin(
                    "stream-packet", name="final", node=master.node.node_id,
                    parent=command_span, nbytes=total_nbytes, final=True,
                )
            yield from self.tcp.send(master.node, final, client_mailbox)
            if fspan is not None:
                self.tracer.end(fspan)

        record.t_end = self.env.now
        self.history.append(record)
        if self.trace is not None:
            self.trace.record(
                self.env.now, 0, "command-end",
                request=request_id, command=name,
            )
        return record

    def _run_dynamic_on_group(
        self,
        command: Command,
        name: str,
        params: dict[str, Any],
        worker_ids,
        client_mailbox: Mailbox,
        request_id: int,
        record: RunRecord,
        command_span=None,
    ) -> Generator[Event, None, RunRecord]:
        """Work-stealing mirror of :meth:`_run_on_group`.

        The command's plan is broken into fine-grained tasks
        (:meth:`Command.plan_tasks`) ordered heaviest-first by the cost
        model; workers *drain* them in batches off a shared position —
        each batch dispatched as its own :class:`WorkAssignment` over
        the fabric — so a worker that finishes early claims what a
        static split would have stranded on a straggler.  Payloads are
        keyed by canonical task index and merged in canonical order, so
        the merged result is byte-identical to the static path.  With
        ``"dynamic+pipeline"`` the next task's blocks are code-prefetched
        through the worker's proxy while the current task computes.
        """
        if self.recovery is not None:
            raise RuntimeError(
                "dynamic scheduling does not compose with a RecoveryPolicy; "
                "use the default static schedule for supervised runs"
            )
        group_size = len(worker_ids)
        sched_node = self.cluster.scheduler_node
        ctx = self._context(params)
        group = [self.workers[wid] for wid in worker_ids]
        pipeline = str(params.get("schedule")) == "dynamic+pipeline"
        tasks = command.plan_tasks(ctx)
        n_tasks = len(tasks)
        estimates = [command.task_cost(ctx, task) for task in tasks]
        order = lpt_order(estimates)
        batch = max(
            1, int(params.get("steal_batch", max(1, n_tasks // (group_size * 4))))
        )
        fair_share = math.ceil(n_tasks / group_size)
        # Sequence-based prefetchers get an empty assignment (the drain
        # order is unknown until runtime); the Markov prefetcher still
        # learns from the observed request stream.  With pipelining each
        # claimed batch becomes the worker's prefetch sequence below.
        self._install_prefetchers(command, ctx, [[] for _ in group], group)
        pf_spec = ctx.params.get("prefetch", command.prefetcher_spec(ctx))
        pf_kwargs = (
            {"width": int(ctx.params.get("prefetch_width", 1))}
            if pf_spec == "markov+obl"
            else {}
        )
        master_mailbox = Mailbox(self.env, name=f"master-{request_id}")
        pos = [0]  # shared ticket position; claim+advance is atomic
        # (no yield between read and update in the cooperative kernel).
        task_payloads: list[list[Any] | None] = [None] * n_tasks
        finish_times = [record.t_start] * group_size
        steal_counts = [0] * group_size

        def drain(worker: Worker, widx: int):
            agg = WorkerShare(worker_index=widx)
            executed = 0
            while pos[0] < n_tasks:
                lo = pos[0]
                hi = min(lo + batch, n_tasks)
                pos[0] = hi
                claimed = [order[p] for p in range(lo, hi)]
                message = WorkAssignment(
                    request_id=request_id,
                    command=name,
                    params=ctx.params,
                    worker_index=widx,
                    group_size=group_size,
                    assignment=[tasks[t] for t in claimed],
                )
                yield from self.mpi.send(sched_node, message, worker.mailbox)
                if pipeline and pf_spec not in ("none", "block-markov"):
                    # Load/compute pipelining: the worker now knows its
                    # claimed batch, so the system prefetcher can stage
                    # upcoming blocks while the current task computes —
                    # the DES mirror of the direct path's BlockPipeline.
                    seq = [
                        item
                        for t in claimed
                        for item in (command.item_sequence_for(ctx, tasks[t]) or [])
                    ]
                    worker.proxy.prefetcher = make_prefetcher(
                        pf_spec, SequenceOrder(seq), **pf_kwargs
                    )
                for tidx in claimed:
                    share = yield from worker.execute(
                        command, ctx, tasks[tidx], widx, request_id,
                        client_mailbox, parent_span=command_span,
                    )
                    task_payloads[tidx] = list(share.payloads)
                    agg.payloads.extend(share.payloads)
                    agg.nbytes += share.nbytes
                    agg.packets_streamed += share.packets_streamed
                    agg.load_seconds += share.load_seconds
                    agg.compute_seconds += share.compute_seconds
                    agg.stream_seconds += share.stream_seconds
                    executed += 1
                    if executed > fair_share:
                        steal_counts[widx] += 1
            finish_times[widx] = self.env.now
            return agg

        procs = [
            self.env.process(drain(worker, widx), name=f"drain{widx}-{name}")
            for widx, worker in enumerate(group)
        ]
        results = yield AllOf(self.env, procs)
        shares = [results[p] for p in procs]
        record.shares = shares
        record.steals = sum(steal_counts)
        t_drained = self.env.now
        record.idle_seconds = sum(t_drained - ft for ft in finish_times)

        master = group[0]
        if command.streaming:
            final = ResultPacket(
                request_id=request_id,
                worker_index=0,
                sequence=sum(s.packets_streamed for s in shares),
                payload=None,
                nbytes=0,
                final=True,
            )
            fspan = None
            if self.tracer is not None:
                fspan = self.tracer.begin(
                    "stream-packet", name="final", node=master.node.node_id,
                    parent=command_span, nbytes=0, final=True,
                )
            yield from self.tcp.send(master.node, final, client_mailbox)
            if fspan is not None:
                self.tracer.end(fspan)
        else:
            # Ship non-master aggregates to the master (charges the
            # fabric for exactly the payloads each worker produced).
            for share, worker in zip(shares[1:], group[1:]):
                yield from worker.send_share_to_master(
                    share, request_id, master_mailbox, parent_span=command_span,
                )
            for _ in shares[1:]:
                message = yield master_mailbox.get()
                assert isinstance(message, WorkerDone)
            missing = [i for i, p in enumerate(task_payloads) if p is None]
            if missing:
                raise RuntimeError(
                    f"dynamic run left tasks unexecuted: {missing}"
                )
            total_nbytes = sum(s.nbytes for s in shares)
            mspan = None
            if self.tracer is not None:
                mspan = self.tracer.begin(
                    "merge", name=name, node=master.node.node_id,
                    parent=command_span, nbytes=total_nbytes,
                    n_shares=len(shares),
                )
            yield from master.node.compute(self.costs.merge_per_byte * total_nbytes)
            merged = command.merge([list(p) for p in task_payloads])
            if mspan is not None:
                self.tracer.end(mspan)
            record.merged = merged
            final = ResultPacket(
                request_id=request_id,
                worker_index=0,
                sequence=0,
                payload=merged,
                nbytes=total_nbytes,
                final=True,
            )
            fspan = None
            if self.tracer is not None:
                fspan = self.tracer.begin(
                    "stream-packet", name="final", node=master.node.node_id,
                    parent=command_span, nbytes=total_nbytes, final=True,
                )
            yield from self.tcp.send(master.node, final, client_mailbox)
            if fspan is not None:
                self.tracer.end(fspan)

        record.t_end = self.env.now
        self.history.append(record)
        if self.trace is not None:
            self.trace.record(
                self.env.now, 0, "command-end",
                request=request_id, command=name,
            )
        return record

    # ---------------------------------------------------------- recovery
    def _fault_event(self, kind: str, node: int, parent=None, **detail: Any) -> None:
        """Emit one instantaneous fault-* record to trace and tracer."""
        if self.trace is not None:
            self.trace.record(self.env.now, node, kind, **detail)
        if self.tracer is not None:
            span = self.tracer.begin(kind, name=kind, node=node, parent=parent, **detail)
            self.tracer.end(span)

    def _pick_survivor(self, group: list[Worker]) -> Worker | None:
        """Deterministic reassignment target: lowest-id live group member."""
        for worker in group:
            if not worker.crashed:
                return worker
        return None

    def _attempt(
        self,
        worker: Worker,
        command: Command,
        ctx: CommandContext,
        assignment: Any,
        idx: int,
        request_id: int,
        client_mailbox: Mailbox,
        command_span=None,
        attempt: int = 1,
    ) -> Generator[Event, None, tuple[WorkerShare | None, str]]:
        """Process body: one execution attempt on ``worker``.

        Returns ``(share, "ok")`` on success, ``(None, reason)`` when
        the attempt crashed or exceeded the assignment timeout.  The
        attempt's process failure is always consumed here, so a fault
        never propagates out of the supervisor.
        """
        policy = self.recovery
        proc = self.env.process(
            worker.execute(
                command, ctx, assignment, idx, request_id, client_mailbox,
                parent_span=command_span,
            ),
            name=f"worker{idx}-{command.name}-try{attempt}",
        )
        worker._active_proc = proc
        try:
            if policy.assignment_timeout is not None:
                deadline = self.env.timeout(policy.assignment_timeout)
                yield AnyOf(self.env, [proc, deadline])
                if not proc.triggered:
                    self.recovery_stats["timeouts"] += 1
                    self._fault_event(
                        "fault-timeout", worker.node.node_id,
                        parent=command_span, request=request_id, share=idx,
                        timeout=policy.assignment_timeout,
                    )
                    proc.interrupt(("assignment-timeout", idx))
                    try:
                        share = yield proc
                        return share, "ok"  # finished right at the deadline
                    except (Interrupt, WorkerUnavailable):
                        return None, "timeout"
                if proc.ok:
                    return proc.value, "ok"
                # Failed in the same timestep the deadline fired; AnyOf
                # already defused the failure, so classify it here.
                cause = getattr(proc.value, "cause", None)
                if isinstance(proc.value, WorkerUnavailable):
                    return None, "worker-down"
                reason = cause[0] if isinstance(cause, tuple) and cause else "interrupt"
                return None, str(reason)
            share = yield proc
            return share, "ok"
        except Interrupt as exc:
            cause = exc.cause
            reason = cause[0] if isinstance(cause, tuple) and cause else "interrupt"
            return None, str(reason)
        except WorkerUnavailable:
            return None, "worker-down"
        finally:
            if worker._active_proc is proc:
                worker._active_proc = None

    def _supervise(
        self,
        command: Command,
        ctx: CommandContext,
        assignment: Any,
        idx: int,
        request_id: int,
        client_mailbox: Mailbox,
        group: list[Worker],
        command_span=None,
    ) -> Generator[Event, None, ShareOutcome]:
        """Process body: drive one share to completion despite faults.

        Bounded retry with exponential backoff in simulated time; a
        crashed primary's share moves to the lowest-id surviving group
        member (when the policy allows reassignment).  Exhausting every
        attempt yields a ``share=None`` outcome — the command then
        serves a partial result flagged ``degraded`` instead of hanging.
        """
        policy = self.recovery
        primary = group[idx]
        reassignments = 0
        reason = "ok"
        total_tries = 1 + max(policy.max_retries, 0)
        for attempt in range(total_tries):
            if attempt:
                self.recovery_stats["retries"] += 1
                self._fault_event(
                    "fault-retry", primary.node.node_id,
                    parent=command_span, request=request_id, share=idx,
                    attempt=attempt + 1, reason=reason,
                )
                delay = policy.retry_backoff * (policy.backoff_factor ** (attempt - 1))
                if delay > 0:
                    yield self.env.timeout(delay)
            worker = primary
            if primary.crashed:
                worker = self._pick_survivor(group) if policy.reassign else None
            if worker is None:
                reason = "no-survivor"
                continue
            if worker is not primary:
                reassignments += 1
                self.recovery_stats["reassignments"] += 1
                self._fault_event(
                    "fault-reassign", worker.node.node_id,
                    parent=command_span, request=request_id, share=idx,
                    from_worker=primary.worker_id, to_worker=worker.worker_id,
                )
            share, reason = yield from self._attempt(
                worker, command, ctx, assignment, idx, request_id,
                client_mailbox, command_span=command_span, attempt=attempt + 1,
            )
            if share is not None:
                return ShareOutcome(
                    index=idx, share=share, executor=worker,
                    attempts=attempt + 1, reassignments=reassignments,
                )
        self.recovery_stats["lost_shares"] += 1
        self._fault_event(
            "fault-giveup", primary.node.node_id,
            parent=command_span, request=request_id, share=idx,
            attempts=total_tries, reason=reason,
        )
        return ShareOutcome(
            index=idx, share=None, executor=None,
            attempts=total_tries, reassignments=reassignments, reason=reason,
        )

    # --------------------------------------------------------- serve loop
    def serve(self, client_mailbox: Mailbox) -> Generator[Event, None, int]:
        """Persistent dispatch loop (daemon operation, §3).

        Consumes :class:`CommandRequest` messages from the scheduler
        mailbox — the way ViSTA FlowLib drives the real system — and
        spawns one command process per request; commands queue on the
        worker pool, not on each other.  A :class:`Shutdown` message
        ends the loop.  Returns the number of commands dispatched.
        """
        from .messages import CommandRequest, Shutdown

        dispatched = 0
        while True:
            message = yield self.mailbox.get()
            if isinstance(message, Shutdown):
                return dispatched
            if not isinstance(message, CommandRequest):
                continue
            group_size = message.group_size or len(self.workers)
            self.env.process(
                self.run_command(
                    message.command,
                    dict(message.params),
                    group_size,
                    client_mailbox,
                    message.request_id,
                    tenant=message.tenant,
                ),
                name=f"serve-{message.command}-{message.request_id}",
            )
            dispatched += 1

    # ---------------------------------------------------------- warm-ups
    def clear_caches(self) -> None:
        """Cold-start state: drop every proxy's cache tiers."""
        for worker in self.workers:
            for key in list(worker.proxy.cache.l1.keys()):
                self.server.unregister_holder(key, worker.node.node_id)
            if worker.proxy.cache.l2 is not None:
                for key in list(worker.proxy.cache.l2.keys()):
                    self.server.unregister_holder(key, worker.node.node_id)
            worker.proxy.cache.clear()

    def aggregate_dms_stats(self):
        from ..dms.stats import DMSStatistics

        agg = DMSStatistics()
        for worker in self.workers:
            agg.merge(worker.proxy.stats)
        return agg
