"""Layer 2: the scheduler.

The scheduler lives on node 0 of the cluster, receives command requests
from the visualization client over TCP, forms a work group, distributes
assignments over the message-passing fabric, and coordinates result
collection: either the master worker gathers partial results and sends
one merged package (the standard path of §3), or — with streaming —
workers transmit directly and the scheduler only signals completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from ..des.cluster import SimCluster
from ..des.kernel import AllOf, Environment, Event
from ..dms.prefetch import BlockMarkovPrefetcher, SequenceOrder, make_prefetcher
from ..dms.proxy import DataProxy, DMSConfig
from ..dms.server import DataManagerServer
from ..dms.source import BlockSource
from .channels import Mailbox, SimMPIChannel, SimTCPChannel
from .commands import Command, CommandContext, CommandRegistry
from .costs import CostModel, DEFAULT_COSTS
from .messages import ResultPacket, WorkAssignment, WorkerDone
from .worker import Worker, WorkerShare

__all__ = ["RunRecord", "Scheduler"]


@dataclass
class RunRecord:
    """Scheduler-side record of one executed command."""

    request_id: int
    command: str
    group_size: int
    t_start: float
    t_end: float = 0.0
    shares: list[WorkerShare] = field(default_factory=list)
    merged: Any = None

    @property
    def runtime(self) -> float:
        return self.t_end - self.t_start


class Scheduler:
    """Owns the worker pool, the DMS server and command dispatch."""

    def __init__(
        self,
        env: Environment,
        cluster: SimCluster,
        source: BlockSource,
        registry: CommandRegistry,
        costs: CostModel = DEFAULT_COSTS,
        dms_config: DMSConfig | None = None,
        server: DataManagerServer | None = None,
        trace=None,
        tracer=None,
    ):
        self.env = env
        self.cluster = cluster
        self.source = source
        self.registry = registry
        self.costs = costs
        self.dms_config = dms_config or DMSConfig()
        self.server = server or DataManagerServer()
        self.trace = trace
        self.tracer = tracer  #: optional repro.obs.SpanTracer
        self.mailbox = Mailbox(env, name="scheduler")
        self.tcp = SimTCPChannel(cluster)
        self.mpi = SimMPIChannel(cluster, account="other")
        self.workers: list[Worker] = []
        for wid, node in enumerate(cluster.worker_nodes):
            proxy = DataProxy(
                env, cluster, node, self.server, source,
                config=self.dms_config, trace=trace, tracer=tracer,
            )
            self.workers.append(
                Worker(env, cluster, node, proxy, source, wid,
                       trace=trace, tracer=tracer)
            )
        self.history: list[RunRecord] = []
        from collections import Counter, defaultdict

        self._retained_markov: dict = defaultdict(Counter)
        # Work-group formation (§3): a command starts "as soon as enough
        # processes (called workers) are available".  The free pool is a
        # priority store (lowest ids first, keeping cache placement
        # stable across sequential runs); the guard serializes
        # acquisition so two pending commands cannot deadlock by each
        # grabbing part of the pool.
        from ..des.resources import PriorityStore, Resource

        self._free_workers = PriorityStore(env)
        for wid in range(len(self.workers)):
            self._free_workers.put(wid)
        self._acquire_guard = Resource(env, capacity=1)

    # ------------------------------------------------------- work groups
    def acquire_group(self, group_size: int):
        """Process body: wait for and claim ``group_size`` workers."""
        with self._acquire_guard.request() as guard:
            yield guard
            ids = []
            for _ in range(group_size):
                wid = yield self._free_workers.get()
                ids.append(wid)
        return sorted(ids)

    def release_group(self, ids) -> None:
        for wid in ids:
            self._free_workers.put(wid)

    # ----------------------------------------------------------- helpers
    def _context(self, params: dict[str, Any]) -> CommandContext:
        t0, t1 = params.get("time_range", (0, self.source.n_timesteps))
        if not 0 <= t0 < t1 <= self.source.n_timesteps:
            raise ValueError(
                f"invalid time_range ({t0}, {t1}) for {self.source.n_timesteps} steps"
            )
        handles_by_time = [self.source.handles(t) for t in range(t0, t1)]
        return CommandContext(
            dataset=self.source.name,
            handles_by_time=handles_by_time,
            params=dict(params),
            costs=self.costs,
            time_offset=t0,
            times=list(self.source.times[t0:t1]),
        )

    def _install_prefetchers(
        self, command: Command, ctx: CommandContext, assignments: list[Any], group: list[Worker]
    ) -> None:
        spec = ctx.params.get("prefetch", command.prefetcher_spec(ctx))
        # The DMS statistical unit is central (§4.2): Markov observations
        # from all proxies train one shared probability graph.  With
        # ``retain_markov`` the graph survives across commands — the
        # paper's "after a learning phase" condition, under which "a
        # maximum of 95% cache misses could be eliminated".
        from collections import Counter, defaultdict

        if ctx.params.get("retain_markov"):
            shared_markov_table = self._retained_markov
        else:
            shared_markov_table = defaultdict(Counter)
        for worker, assignment in zip(group, assignments):
            if spec == "none":
                worker.proxy.prefetcher = make_prefetcher("none")
                continue
            if spec == "block-markov":
                block_order = sorted(
                    h.block_id for h in ctx.handles_by_time[0]
                )
                worker.proxy.prefetcher = BlockMarkovPrefetcher(
                    dataset=ctx.dataset,
                    n_timesteps=ctx.n_timesteps,
                    block_order=block_order,
                    width=int(ctx.params.get("prefetch_width", 1)),
                    time_offset=ctx.time_offset,
                    table=shared_markov_table,
                )
                continue
            sequence = command.item_sequence_for(ctx, assignment) or []
            order = SequenceOrder(sequence)
            kwargs = {}
            if spec == "markov+obl":
                kwargs["width"] = int(ctx.params.get("prefetch_width", 1))
            worker.proxy.prefetcher = make_prefetcher(spec, order, **kwargs)

    # -------------------------------------------------------- run command
    def run_command(
        self,
        name: str,
        params: dict[str, Any],
        group_size: int,
        client_mailbox: Mailbox,
        request_id: int,
        command_kwargs: dict[str, Any] | None = None,
        parent_span=None,
    ) -> Generator[Event, None, RunRecord]:
        """Process body: execute one command end to end."""
        if not 1 <= group_size <= len(self.workers):
            raise ValueError(
                f"group_size {group_size} out of range 1..{len(self.workers)}"
            )
        command = self.registry.create(name, **(command_kwargs or {}))
        record = RunRecord(
            request_id=request_id,
            command=name,
            group_size=group_size,
            t_start=self.env.now,
        )
        sched_node = self.cluster.scheduler_node
        # Command setup (group formation, argument handling), then wait
        # until enough workers are free to form the group (§3).
        yield from sched_node.compute(self.costs.command_setup)
        worker_ids = yield from self.acquire_group(group_size)
        if self.trace is not None:
            self.trace.record(
                self.env.now, 0, "command-start",
                request=request_id, command=name, workers=list(worker_ids),
            )
        cspan = None
        if self.tracer is not None:
            cspan = self.tracer.begin(
                "command", name=name, node=sched_node.node_id,
                parent=parent_span, request=request_id,
                workers=list(worker_ids), group_size=group_size,
            )
        try:
            record = yield from self._run_on_group(
                command, name, params, worker_ids, client_mailbox, request_id,
                record, command_span=cspan,
            )
        finally:
            if cspan is not None:
                self.tracer.end(cspan)
            self.release_group(worker_ids)
        return record

    def _run_on_group(
        self,
        command: Command,
        name: str,
        params: dict[str, Any],
        worker_ids,
        client_mailbox: Mailbox,
        request_id: int,
        record: RunRecord,
        command_span=None,
    ) -> Generator[Event, None, RunRecord]:
        group_size = len(worker_ids)
        sched_node = self.cluster.scheduler_node
        ctx = self._context(params)
        group = [self.workers[wid] for wid in worker_ids]
        assignments = command.plan(ctx, group_size)
        if len(assignments) != group_size:
            raise RuntimeError(
                f"command {name!r} planned {len(assignments)} assignments "
                f"for group of {group_size}"
            )
        self._install_prefetchers(command, ctx, assignments, group)

        # Distribute assignments over the fabric.
        master_mailbox = Mailbox(self.env, name=f"master-{request_id}")
        for idx, (worker, assignment) in enumerate(zip(group, assignments)):
            message = WorkAssignment(
                request_id=request_id,
                command=name,
                params=ctx.params,
                worker_index=idx,
                group_size=group_size,
                assignment=assignment,
            )
            yield from self.mpi.send(sched_node, message, worker.mailbox)

        # Execute all shares concurrently.
        procs = [
            self.env.process(
                worker.execute(
                    command, ctx, assignment, idx, request_id, client_mailbox,
                    parent_span=command_span,
                ),
                name=f"worker{idx}-{name}",
            )
            for idx, (worker, assignment) in enumerate(zip(group, assignments))
        ]
        results = yield AllOf(self.env, procs)
        shares = [results[p] for p in procs]
        record.shares = shares

        master = group[0]
        if command.streaming:
            # Workers streamed directly; signal completion to the client.
            final = ResultPacket(
                request_id=request_id,
                worker_index=0,
                sequence=sum(s.packets_streamed for s in shares),
                payload=None,
                nbytes=0,
                final=True,
            )
            fspan = None
            if self.tracer is not None:
                fspan = self.tracer.begin(
                    "stream-packet", name="final", node=master.node.node_id,
                    parent=command_span, nbytes=0, final=True,
                )
            yield from self.tcp.send(master.node, final, client_mailbox)
            if fspan is not None:
                self.tracer.end(fspan)
        else:
            # Collect partials at the master worker over the fabric.
            for share in shares[1:]:
                yield from group[share.worker_index].send_share_to_master(
                    share, request_id, master_mailbox, parent_span=command_span
                )
            collected = [shares[0].payloads]
            for _ in shares[1:]:
                message = yield master_mailbox.get()
                assert isinstance(message, WorkerDone)
                collected.append(message.payload)
            total_nbytes = sum(s.nbytes for s in shares)
            mspan = None
            if self.tracer is not None:
                mspan = self.tracer.begin(
                    "merge", name=name, node=master.node.node_id,
                    parent=command_span, nbytes=total_nbytes,
                    n_shares=len(shares),
                )
            yield from master.node.compute(self.costs.merge_per_byte * total_nbytes)
            merged = command.merge(collected)
            if mspan is not None:
                self.tracer.end(mspan)
            record.merged = merged
            final = ResultPacket(
                request_id=request_id,
                worker_index=0,
                sequence=0,
                payload=merged,
                nbytes=total_nbytes,
                final=True,
            )
            fspan = None
            if self.tracer is not None:
                fspan = self.tracer.begin(
                    "stream-packet", name="final", node=master.node.node_id,
                    parent=command_span, nbytes=total_nbytes, final=True,
                )
            yield from self.tcp.send(master.node, final, client_mailbox)
            if fspan is not None:
                self.tracer.end(fspan)

        record.t_end = self.env.now
        self.history.append(record)
        if self.trace is not None:
            self.trace.record(
                self.env.now, 0, "command-end",
                request=request_id, command=name,
            )
        return record

    # --------------------------------------------------------- serve loop
    def serve(self, client_mailbox: Mailbox) -> Generator[Event, None, int]:
        """Persistent dispatch loop (daemon operation, §3).

        Consumes :class:`CommandRequest` messages from the scheduler
        mailbox — the way ViSTA FlowLib drives the real system — and
        spawns one command process per request; commands queue on the
        worker pool, not on each other.  A :class:`Shutdown` message
        ends the loop.  Returns the number of commands dispatched.
        """
        from .messages import CommandRequest, Shutdown

        dispatched = 0
        while True:
            message = yield self.mailbox.get()
            if isinstance(message, Shutdown):
                return dispatched
            if not isinstance(message, CommandRequest):
                continue
            group_size = message.group_size or len(self.workers)
            self.env.process(
                self.run_command(
                    message.command,
                    dict(message.params),
                    group_size,
                    client_mailbox,
                    message.request_id,
                ),
                name=f"serve-{message.command}-{message.request_id}",
            )
            dispatched += 1

    # ---------------------------------------------------------- warm-ups
    def clear_caches(self) -> None:
        """Cold-start state: drop every proxy's cache tiers."""
        for worker in self.workers:
            for key in list(worker.proxy.cache.l1.keys()):
                self.server.unregister_holder(key, worker.node.node_id)
            if worker.proxy.cache.l2 is not None:
                for key in list(worker.proxy.cache.l2.keys()):
                    self.server.unregister_holder(key, worker.node.node_id)
            worker.proxy.cache.clear()

    def aggregate_dms_stats(self):
        from ..dms.stats import DMSStatistics

        agg = DMSStatistics()
        for worker in self.workers:
            agg.merge(worker.proxy.stats)
        return agg
