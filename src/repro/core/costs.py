"""Calibrated cost model for the simulated runtime.

The simulated cluster charges compute time as ``work_units / cpu_rate``
(``cpu_rate`` defaults to 1e8 units/s, so one unit ≈ 10 ns on one
UltraSPARC-class CPU).  Commands compute their work in units of
*modeled* cells — the paper-scale resolution carried by every
:class:`~repro.grids.block.BlockHandle` — so runtimes reflect the
1.12 GB / 19.5 GB datasets even though the actual arrays are small.

Calibration (see EXPERIMENTS.md): the per-cell constants were chosen so
the **one-worker Engine** numbers land near the paper's Figures 6/9/13
(SimpleIso ≈ 35 s, SimpleVortex ≈ 90 s, SimplePathlines ≈ 170 s); every
other point — other worker counts, the Propfan dataset, latencies,
breakdowns — is *predicted* by the model, not fitted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..grids.block import BlockHandle

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Work-unit constants, all per *modeled* quantity."""

    #: isosurface: per-cell active test + traversal.
    iso_scan_per_cell: float = 30.0
    #: isosurface: per active cell triangulated.
    iso_triangulate_per_cell: float = 400.0
    #: ViewerIso: BSP build + view-dependent traversal per cell.
    bsp_per_cell: float = 25.0
    #: λ2: gradient tensor + eigenvalues per cell.
    lambda2_per_cell: float = 140.0
    #: pathlines: one velocity sample (locate + invert + interpolate).
    pathline_sample: float = 12000.0
    #: merging partial results at the master, per modeled byte.
    merge_per_byte: float = 0.4
    #: fixed per-command setup cost (argument parsing, group formation).
    command_setup: float = 1.0e6
    #: wire bytes per in-memory geometry byte: the client protocol ships
    #: indexed float32 geometry, not float64 triangle soup.
    result_wire_factor: float = 0.2
    #: packet assembly/serialization work per streamed Emit ("streaming
    #: generally introduces a slight overhead", §5).
    stream_packet_overhead: float = 0.0
    #: inefficiency of cell-wise streamed processing relative to the
    #: whole-field batch sweep (§6.3's cell-by-cell λ2 scheme).
    streaming_compute_factor: float = 1.0

    # ------------------------------------------------------ conveniences
    def iso_block_cost(self, handle: BlockHandle, active_fraction: float) -> float:
        """Scan a whole block and triangulate its active cells."""
        cells = handle.modeled_cells
        return cells * self.iso_scan_per_cell + (
            cells * active_fraction * self.iso_triangulate_per_cell
        )

    def viewer_iso_block_cost(self, handle: BlockHandle, active_fraction: float) -> float:
        return handle.modeled_cells * self.bsp_per_cell + self.iso_block_cost(
            handle, active_fraction
        )

    def lambda2_block_cost(self, handle: BlockHandle, active_fraction: float) -> float:
        cells = handle.modeled_cells
        return cells * self.lambda2_per_cell + (
            cells * active_fraction * self.iso_triangulate_per_cell
        )

    def result_bytes(self, actual_nbytes: int, handle: BlockHandle) -> int:
        """Modeled size of extracted geometry.

        Surfaces scale with resolution like area, i.e. with the 2/3
        power of the cell-count ratio.
        """
        return int(
            actual_nbytes
            * self.result_wire_factor
            * handle.scale_factor ** (2.0 / 3.0)
        )


DEFAULT_COSTS = CostModel()
