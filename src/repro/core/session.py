"""The client-facing session facade.

:class:`ViracochaSession` wires a synthetic (or on-disk) dataset, the
simulated cluster, the DMS and the scheduler together and exposes one
call — :meth:`run` — that submits a command exactly the way ViSTA
FlowLib would: a TCP request to the scheduler, parallel extraction on
the workers, packets back to the visualization client.

All results carry both the *real* extracted geometry and the *simulated*
timing record (total runtime, latency, per-component breakdown), which
is what the benchmark harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..des.cluster import ClusterConfig, NodeBreakdown, SimCluster
from ..des.kernel import Environment
from ..dms.loading import AdaptiveSelector
from ..dms.proxy import DMSConfig
from ..dms.server import DataManagerServer
from ..dms.source import BlockSource, SyntheticSource
from ..synth.base import SyntheticDataset
from ..viz.client import VisualizationClient
from .channels import ClientUplink, SimTCPChannel
from .commands import CommandRegistry
from .costs import CostModel, DEFAULT_COSTS
from .messages import CommandRequest, next_request_id
from .scheduler import RecoveryPolicy, Scheduler

__all__ = ["CommandResult", "ViracochaSession"]


@dataclass
class CommandResult:
    """Everything one command run produced and measured."""

    command: str
    params: dict[str, Any]
    group_size: int
    total_runtime: float  #: submit → final package at the client [sim s]
    latency: float  #: submit → first data at the client [sim s]
    n_packets: int
    packet_times: list[float]
    geometry: Any  #: merged TriangleMesh (or command-specific payload)
    payloads: list[Any]
    breakdown: dict[str, float]  #: compute/read/send/other seconds (workers)
    dms: dict[str, Any]
    strategy_decisions: dict[str, int]
    #: spans recorded during this run (repro.obs.Span), in begin order.
    spans: list[Any] = field(default_factory=list)
    #: session metrics snapshot taken right after this run.
    metrics: dict[str, Any] = field(default_factory=dict)
    #: the session's SpanTracer (shared across runs; None if disabled).
    tracer: Any = None
    #: True when the merged result is partial: at least one worker share
    #: was unrecoverable and the scheduler served what it had.
    degraded: bool = False
    #: share indices missing from the merge (empty unless degraded).
    failed_shares: list[int] = field(default_factory=list)
    #: recovery actions taken for this run (retries, reassignments).
    recovery: dict[str, int] = field(default_factory=dict)
    #: submit → work group fully acquired [sim s]; the queue term the
    #: SLO/critical-path layer reports separately from execution.
    queue_wait_s: float = 0.0
    #: originating tenant when submitted through the serving layer.
    tenant: str = "default"
    #: submit → first *complete* approximation at the client (TTFA)
    #: [sim s].  Progressive commands mark it with per-worker
    #: "approximation" packets; for everything else it equals
    #: ``latency`` (the first data is the only approximation).
    ttfa_s: float = 0.0

    @property
    def complete(self) -> bool:
        """Every planned share made it into the merged result."""
        return not self.degraded

    def span_kinds(self) -> set:
        return {s.kind for s in self.spans}

    def spans_of_kind(self, kind: str) -> list:
        return [s for s in self.spans if s.kind == kind]

    @property
    def breakdown_fractions(self) -> dict[str, float]:
        total = sum(self.breakdown.values())
        if total == 0:
            return {k: 0.0 for k in self.breakdown}
        return {k: v / total for k, v in self.breakdown.items()}

    def interaction_report(self, criteria=None, renderer=None) -> dict[str, object]:
        """Check this result against the §1.1 VR interaction criteria.

        The response-time criterion applies to the first feedback the
        user perceives — with streaming, the first partial result.
        """
        from ..viz.client import FrameRateModel, InteractionCriteria
        from ..viz.mesh import TriangleMesh

        criteria = criteria or InteractionCriteria()
        renderer = renderer or FrameRateModel()
        n_triangles = (
            self.geometry.n_triangles
            if isinstance(self.geometry, TriangleMesh)
            else 0
        )
        frame_rate = renderer.frame_rate(n_triangles)
        return {
            "frame_rate_hz": frame_rate,
            "frame_rate_ok": criteria.frame_rate_ok(frame_rate),
            "first_feedback_s": self.latency,
            "response_time_ok": criteria.response_time_ok(self.latency),
            "first_approximation_s": self.ttfa_s,
            "ttfa_ok": criteria.response_time_ok(self.ttfa_s),
        }


class ViracochaSession:
    """One client ↔ cluster session over a fixed dataset."""

    def __init__(
        self,
        dataset: SyntheticDataset | BlockSource,
        n_workers: int = 4,
        cluster_config: ClusterConfig | None = None,
        dms_config: DMSConfig | None = None,
        costs: CostModel = DEFAULT_COSTS,
        registry: CommandRegistry | None = None,
        adaptive_loading: bool = True,
        trace: bool = False,
        observe: bool = True,
        recovery: RecoveryPolicy | None = None,
        max_spans: int | None = None,
    ):
        self.source: BlockSource = (
            SyntheticSource(dataset)
            if isinstance(dataset, SyntheticDataset)
            else dataset
        )
        self.env = Environment()
        config = cluster_config or ClusterConfig(n_workers=n_workers)
        if config.n_workers != n_workers and cluster_config is None:
            config = ClusterConfig(n_workers=n_workers)
        self.cluster = SimCluster(self.env, config)
        if registry is None:
            from ..commands import default_registry

            registry = default_registry()
        server = DataManagerServer(AdaptiveSelector(adaptive=adaptive_loading))
        from ..des.trace import TraceRecorder
        from ..obs import MetricsRegistry, SpanTracer

        self.trace = TraceRecorder(enabled=True) if trace else None
        #: hierarchical span tracer (repro.obs); on by default, layered
        #: over the flat recorder when ``trace=True``.
        self.tracer = SpanTracer(
            recorder=self.trace,
            clock=lambda: self.env.now,
            enabled=observe,
            max_spans=max_spans,
        )
        #: unified metrics registry; DMS statistics publish into it.
        self.metrics = MetricsRegistry()
        self.scheduler = Scheduler(
            self.env,
            self.cluster,
            self.source,
            registry,
            costs=costs,
            dms_config=dms_config,
            server=server,
            trace=self.trace,
            tracer=self.tracer,
            recovery=recovery,
        )
        self.client = VisualizationClient(self.env)
        #: client → scheduler direction of the TCP link; the serving
        #: layer submits through the same uplink as :meth:`run`.
        self.uplink = ClientUplink(self.cluster)
        self.n_workers = config.n_workers

    # ---------------------------------------------------------------- run
    def run(
        self,
        command: str,
        params: dict[str, Any] | None = None,
        group_size: int | None = None,
        *,
        tenant: str = "default",
        **command_kwargs: Any,
    ) -> CommandResult:
        """Submit one command and simulate it to completion."""
        params = dict(params or {})
        group_size = group_size if group_size is not None else self.n_workers
        request_id = next_request_id()

        self.client.reset()
        done = self.client.start_listening()
        breakdown_before = self._worker_breakdown()
        stats_before = self._dms_snapshot()
        t_submit = self.env.now
        span_mark = self.tracer.mark()
        session_span = self.tracer.begin(
            "session", name=f"run-{command}",
            node=self.cluster.scheduler_node.node_id,
            request=request_id, command=command,
        )

        def submit():
            # Client → scheduler request over TCP (charged on the link,
            # not attributed to any worker node).
            request = CommandRequest(request_id, command, params, tenant=tenant)
            yield from self.uplink.send(request)
            record = yield from self.scheduler.run_command(
                command,
                params,
                group_size,
                self.client.mailbox,
                request_id,
                command_kwargs=command_kwargs,
                parent_span=session_span,
                tenant=tenant,
            )
            return record

        proc = self.env.process(submit(), name=f"run-{command}")
        record = self.env.run(until=proc)
        self.env.run(until=done)

        breakdown_after = self._worker_breakdown()
        stats_after = self._dms_snapshot()
        first = self.client.first_data_time
        final = self.client.final_time
        if final is None:  # pragma: no cover - defensive
            raise RuntimeError(f"command {command!r} produced no final packet")
        total_runtime = final - t_submit
        latency = (first - t_submit) if first is not None else total_runtime
        approx = self.client.first_approximation_time(group_size)
        ttfa_s = (approx - t_submit) if approx is not None else latency
        # Only progressive runs stamp the span: non-progressive traces
        # (and their committed golden fingerprints) must not change.
        if approx is not None:
            self.tracer.end(session_span, ttfa_s=ttfa_s)
        else:
            self.tracer.end(session_span)
        packet_times = [p.time - t_submit for p in self.client.packets]
        self._record_run_metrics(
            command, total_runtime, latency, packet_times,
            degraded=record.degraded, ttfa=ttfa_s,
        )
        return CommandResult(
            command=command,
            params=params,
            group_size=group_size,
            total_runtime=total_runtime,
            latency=latency,
            n_packets=len(self.client.packets),
            packet_times=packet_times,
            geometry=self.client.merged_geometry(),
            payloads=list(self.client.payloads),
            breakdown={
                k: breakdown_after[k] - breakdown_before[k] for k in breakdown_after
            },
            dms=self._diff_stats(stats_before, stats_after),
            strategy_decisions=dict(self.scheduler.server.selector.decisions),
            spans=self.tracer.since(span_mark),
            metrics=self.metrics.snapshot(),
            tracer=self.tracer if self.tracer.enabled else None,
            degraded=record.degraded,
            failed_shares=list(record.failed_shares),
            recovery={
                "retries": record.retries,
                "reassignments": record.reassignments,
            },
            queue_wait_s=record.queue_wait_s,
            tenant=tenant,
            ttfa_s=ttfa_s,
        )

    # ------------------------------------------------------------ helpers
    #: packet inter-arrival buckets [sim s] — streaming cadences sit in
    #: the millisecond range, well below command latencies.
    _INTERARRIVAL_BUCKETS = (
        0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
        0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    )

    def _record_run_metrics(
        self,
        command: str,
        total_runtime: float,
        latency: float,
        packet_times: list[float],
        degraded: bool = False,
        ttfa: float | None = None,
    ) -> None:
        """Feed one finished run into the unified metrics registry."""
        m = self.metrics
        m.counter(
            "viracocha_commands_total", {"command": command},
            help="commands executed by this session",
        ).inc()
        if degraded:
            m.counter(
                "viracocha_commands_degraded_total", {"command": command},
                help="commands that served a partial (degraded) result",
            ).inc()
        for action, count in sorted(self.scheduler.recovery_stats.items()):
            m.counter(
                "viracocha_recovery_actions_total", {"action": action},
                help="scheduler recovery actions (session totals)",
            ).set(count)
        m.histogram(
            "viracocha_command_runtime_seconds",
            help="submit-to-final-package runtime [sim s]",
        ).observe(total_runtime)
        m.histogram(
            "viracocha_command_latency_seconds",
            help="submit-to-first-data latency [sim s]",
        ).observe(latency)
        m.histogram(
            "viracocha_command_ttfa_seconds",
            help="submit-to-first-complete-approximation (TTFA) [sim s]; "
                 "equals latency for non-progressive commands",
        ).observe(latency if ttfa is None else ttfa)
        interarrival = m.histogram(
            "viracocha_packet_interarrival_seconds",
            buckets=self._INTERARRIVAL_BUCKETS,
            help="gaps between result packets at the client [sim s]",
        )
        for earlier, later in zip(packet_times, packet_times[1:]):
            interarrival.observe(later - earlier)
        for worker in self.scheduler.workers:
            worker.proxy.stats.publish(m, node=str(worker.node.node_id))
        self.scheduler.aggregate_dms_stats().publish(m, node="all")
        self.scheduler.server.publish_metrics(m)
        self.scheduler.server.selector.publish_metrics(m)
        m.counter(
            "viracocha_spans_dropped_total",
            help="spans evicted by the tracer ring buffer (max_spans cap)",
        ).set(self.tracer.dropped)
        m.gauge(
            "viracocha_span_ring_high_water",
            help="most spans ever resident in the tracer ring at once",
        ).set(self.tracer.high_water)

    def _worker_breakdown(self) -> dict[str, float]:
        agg = NodeBreakdown()
        for node in self.cluster.worker_nodes:
            agg.add(node.breakdown)
        return {
            "compute": agg.compute,
            "read": agg.read,
            "send": agg.send,
            "other": agg.other,
        }

    def _dms_snapshot(self) -> dict[str, float]:
        agg = self.scheduler.aggregate_dms_stats()
        return {
            "requests": agg.requests,
            "hits": agg.hits,
            "misses": agg.misses,
            "prefetches_issued": agg.prefetches_issued,
            "prefetches_useful": agg.prefetches_useful,
            "misses_covered": agg.misses_covered,
            "bytes_loaded": agg.bytes_loaded,
        }

    @staticmethod
    def _diff_stats(before: dict, after: dict) -> dict:
        return {k: after[k] - before[k] for k in after}

    # ------------------------------------------------------- concurrency
    def run_concurrent(self, requests: list[dict[str, Any]]) -> list[CommandResult]:
        """Submit several commands at once; work groups form as workers
        free up (§3: "as soon as enough processes are available").

        Each request dict takes the :meth:`run` arguments: ``command``
        (required), ``params``, ``group_size``.  Commands whose combined
        group sizes exceed the worker pool queue behind each other.
        Per-node breakdowns cannot be attributed to a single command in
        this mode, so results carry empty ``breakdown``/``dms`` fields.
        """
        if not requests:
            return []
        self.client.reset()
        t_submit = self.env.now
        span_mark = self.tracer.mark()
        batch_span = self.tracer.begin(
            "session", name=f"run-concurrent[{len(requests)}]",
            node=self.cluster.scheduler_node.node_id,
            n_requests=len(requests),
        )
        submissions = []
        for spec in requests:
            command = spec["command"]
            params = dict(spec.get("params") or {})
            group_size = spec.get("group_size") or self.n_workers
            tenant = spec.get("tenant") or "default"
            request_id = next_request_id()
            done = self.client.expect(request_id)

            def submit(command=command, params=params, group_size=group_size,
                       request_id=request_id, tenant=tenant):
                request = CommandRequest(
                    request_id, command, params, tenant=tenant
                )
                yield from self.uplink.send(request)
                record = yield from self.scheduler.run_command(
                    command, params, group_size, self.client.mailbox, request_id,
                    parent_span=batch_span, tenant=tenant,
                )
                return record

            proc = self.env.process(submit(), name=f"run-{command}-{request_id}")
            submissions.append(
                (command, params, group_size, tenant, request_id, done, proc)
            )

        results = []
        for command, params, group_size, tenant, request_id, done, proc in submissions:
            record = self.env.run(until=proc)
            self.env.run(until=done)
            packets = self.client.packets_by_request.get(request_id, [])
            payloads = self.client.payloads_by_request.get(request_id, [])
            # Per-request accounting: interleaved tenants must not
            # report each other's first packet as their own latency.
            first = self.client.first_data_time_of(request_id)
            final = next((p.time for p in packets if p.final), self.env.now)
            approx = self.client.first_approximation_time(
                group_size, request_id=request_id
            )
            latency = (first if first is not None else final) - t_submit
            ttfa_s = (approx - t_submit) if approx is not None else latency
            from ..viz.mesh import TriangleMesh

            meshes = [p for p in payloads if isinstance(p, TriangleMesh)]
            self._record_run_metrics(
                command,
                final - t_submit,
                latency,
                [p.time - t_submit for p in packets],
                degraded=record.degraded,
                ttfa=ttfa_s,
            )
            results.append(
                CommandResult(
                    command=command,
                    params=params,
                    group_size=group_size,
                    total_runtime=final - t_submit,
                    latency=latency,
                    n_packets=len(packets),
                    packet_times=[p.time - t_submit for p in packets],
                    geometry=TriangleMesh.merge(meshes),
                    payloads=list(payloads),
                    breakdown={},
                    dms={},
                    strategy_decisions=dict(
                        self.scheduler.server.selector.decisions
                    ),
                    tracer=self.tracer if self.tracer.enabled else None,
                    degraded=record.degraded,
                    failed_shares=list(record.failed_shares),
                    recovery={
                        "retries": record.retries,
                        "reassignments": record.reassignments,
                    },
                    queue_wait_s=record.queue_wait_s,
                    tenant=tenant,
                    ttfa_s=ttfa_s,
                )
            )
        self.tracer.end(batch_span)
        # Spans are shared by the whole batch (per-command attribution
        # is ambiguous under concurrency); every result sees the slice.
        batch_spans = self.tracer.since(span_mark)
        batch_metrics = self.metrics.snapshot()
        for result in results:
            result.spans = batch_spans
            result.metrics = batch_metrics
        return results

    def clear_caches(self) -> None:
        """Return every proxy to a cold-cache state."""
        self.scheduler.clear_caches()

    def warm_cache(self, command: str, params: dict[str, Any] | None = None,
                   group_size: int | None = None, **command_kwargs) -> None:
        """Issue one call in advance so measurements run on cached data,
        exactly as the paper's methodology prescribes (§7)."""
        self.run(command, params, group_size, **command_kwargs)
