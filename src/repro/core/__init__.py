"""The Viracocha framework core (layers 1 and 2) and the session facade."""

from .costs import CostModel, DEFAULT_COSTS
from .messages import (
    CommandComplete,
    CommandRequest,
    HEADER_BYTES,
    ProgressUpdate,
    ResultPacket,
    WorkAssignment,
    WorkerDone,
)
from .channels import InstantChannel, Mailbox, SimMPIChannel, SimTCPChannel
from .commands import (
    Command,
    CommandContext,
    CommandRegistry,
    Compute,
    Emit,
    Load,
    Prefetch,
    lpt_order,
    plan_block_assignments,
    plan_block_tasks,
    split_balanced,
    split_round_robin,
)
from .worker import Worker, WorkerShare
from .scheduler import RunRecord, Scheduler
from .session import CommandResult, ViracochaSession

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "CommandComplete",
    "CommandRequest",
    "HEADER_BYTES",
    "ProgressUpdate",
    "ResultPacket",
    "WorkAssignment",
    "WorkerDone",
    "InstantChannel",
    "Mailbox",
    "SimMPIChannel",
    "SimTCPChannel",
    "Command",
    "CommandContext",
    "CommandRegistry",
    "Compute",
    "Emit",
    "Load",
    "Prefetch",
    "lpt_order",
    "plan_block_assignments",
    "plan_block_tasks",
    "split_balanced",
    "split_round_robin",
    "Worker",
    "WorkerShare",
    "RunRecord",
    "Scheduler",
    "CommandResult",
    "ViracochaSession",
]
