"""The paper's classification scheme for post-processing approaches (§1.3).

Figure 1 organizes assessment into four main categories, each with two
criteria; "the four main categories can heavily depend on each other".
This module reproduces that taxonomy as data and provides the
assessment of every built-in command along it — the scheme the authors
"use to assess both standard extraction algorithms and versions
extended by streaming capabilities".
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Criterion",
    "Category",
    "TAXONOMY",
    "CommandAssessment",
    "assess_command",
    "format_taxonomy",
]


@dataclass(frozen=True)
class Criterion:
    name: str
    #: concrete techniques the paper lists under this criterion.
    techniques: tuple[str, ...] = ()


@dataclass(frozen=True)
class Category:
    name: str
    criteria: tuple[Criterion, ...]


#: Figure 1: "General classification and assessment of post-processing
#: approaches".
TAXONOMY: tuple[Category, ...] = (
    Category(
        "Speed-Up",
        (
            Criterion(
                "Reducing Total Run-Time",
                (
                    "Renunciation of Accuracy",
                    "Advanced Data Structures",
                    "Pre-Processing",
                ),
            ),
            Criterion(
                "Reducing Latency Time",
                ("Streaming", "Progressive Computation"),
            ),
        ),
    ),
    Category(
        "Space Requirement",
        (
            Criterion(
                "Reducing Main Memory Consumption",
                ("Out of Core Schemes",),
            ),
            Criterion(
                "Reducing Offline Storage Consumption",
                ("Compression", "Avoiding Meta Data"),
            ),
        ),
    ),
    Category(
        "User Acceptance",
        (
            Criterion(
                "Subjective Criteria",
                ("Subjective Speed-Up Sensation",),
            ),
            Criterion(
                "Intuitive Utilization",
                ("Steering by Simple Parameters",),
            ),
        ),
    ),
    Category(
        "General Feasibility",
        (
            Criterion("Computability Criteria"),
            Criterion("Task Complexity"),
        ),
    ),
)


@dataclass(frozen=True)
class CommandAssessment:
    """Where one command sits in the Figure 1 scheme."""

    command: str
    #: does it attack total runtime (DMS, parallelization)?
    reduces_total_runtime: bool
    #: does it attack latency (streaming / progressive)?
    reduces_latency: bool
    #: techniques employed, by Figure 1 names.
    techniques: tuple[str, ...]
    #: steering parameters the user adjusts (intuitive utilization).
    parameters: tuple[str, ...]
    notes: str = ""


_ASSESSMENTS: dict[str, CommandAssessment] = {}


def _register(assessment: CommandAssessment) -> None:
    _ASSESSMENTS[assessment.command] = assessment


_register(CommandAssessment(
    "iso-simple", False, False, (),
    ("isovalue", "scalar"),
    "baseline: no data management, single final package",
))
_register(CommandAssessment(
    "iso-dataman", True, False,
    ("Advanced Data Structures",),
    ("isovalue", "scalar"),
    "DMS caching/prefetching attacks the total runtime",
))
_register(CommandAssessment(
    "iso-viewer", True, True,
    ("Advanced Data Structures", "Streaming"),
    ("isovalue", "scalar", "viewpoint", "max_triangles"),
    "BSP front-to-back traversal + triangle-batch streaming",
))
_register(CommandAssessment(
    "iso-progressive", True, True,
    ("Advanced Data Structures", "Streaming", "Progressive Computation",
     "Renunciation of Accuracy"),
    ("isovalue", "scalar", "max_levels"),
    "coarse levels trade accuracy for immediate feedback (§5.3)",
))
_register(CommandAssessment(
    "vortex-simple", False, False, (),
    ("threshold",),
    "baseline λ2 extraction",
))
_register(CommandAssessment(
    "vortex-dataman", True, False,
    ("Advanced Data Structures",),
    ("threshold",),
    "DMS-backed batch λ2",
))
_register(CommandAssessment(
    "vortex-streamed", True, True,
    ("Advanced Data Structures", "Streaming"),
    ("threshold", "batch_cells"),
    "slab-wise λ2 with active-cell batch streaming",
))
_register(CommandAssessment(
    "pathlines-simple", False, False, (),
    ("seeds", "rtol"),
    "baseline particle tracing",
))
_register(CommandAssessment(
    "pathlines-dataman", True, False,
    ("Advanced Data Structures",),
    ("seeds", "rtol"),
    "Markov prefetching overlaps I/O with integration; progressive "
    "computation is infeasible for traces (§5.3)",
))
_register(CommandAssessment(
    "streaklines", True, False,
    ("Advanced Data Structures",),
    ("seeds", "n_particles", "t_observe"),
    "same feasibility limits as pathlines",
))
_register(CommandAssessment(
    "cutplane", True, False,
    ("Advanced Data Structures",),
    ("normal", "offset"),
    "reuses the isosurface machinery on a distance field",
))
_register(CommandAssessment(
    "cutplane-streamed", True, True,
    ("Advanced Data Structures", "Streaming"),
    ("normal", "offset"),
    "block-by-block data-reorganization streaming (§5.1)",
))


def assess_command(name: str) -> CommandAssessment:
    """The Figure 1 assessment of a built-in command."""
    try:
        return _ASSESSMENTS[name]
    except KeyError:
        raise KeyError(
            f"no assessment for command {name!r}; known: {sorted(_ASSESSMENTS)}"
        ) from None


def all_assessments() -> list[CommandAssessment]:
    return [_ASSESSMENTS[k] for k in sorted(_ASSESSMENTS)]


def format_taxonomy() -> str:
    """Render Figure 1's tree as text."""
    lines = ["General classification of post-processing approaches (Fig. 1)"]
    for cat in TAXONOMY:
        lines.append(f"+- {cat.name}")
        for crit in cat.criteria:
            lines.append(f"|  +- {crit.name}")
            for tech in crit.techniques:
                lines.append(f"|  |  - {tech}")
    return "\n".join(lines)
