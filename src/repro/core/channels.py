"""Layer 1: the generic communication interface.

"The lowest layer hides implementation details about used communication
protocols. [...] subsequent layers will only operate on a generic
communication interface without knowing whether the data will be
transferred using TCP/IP or MPI calls.  This facilitates an easy
adoption of new transport protocols." (§3)

A :class:`Channel` delivers messages into a destination
:class:`Mailbox`, charging the appropriate simulated link:
:class:`SimMPIChannel` rides the cluster fabric (worker ↔ scheduler),
:class:`SimTCPChannel` rides the serialized client link (cluster ↔
visualization host).  Layers 2 and 3 hold ``Channel`` references only.
"""

from __future__ import annotations

from typing import Generator, Protocol

from ..des.cluster import SimCluster, SimNode
from ..des.kernel import Environment, Event
from ..des.resources import Store

__all__ = [
    "Mailbox",
    "Channel",
    "ClientUplink",
    "SimMPIChannel",
    "SimTCPChannel",
    "InstantChannel",
]


class Mailbox:
    """A named message queue owned by one endpoint."""

    def __init__(self, env: Environment, name: str = "mailbox"):
        self.env = env
        self.name = name
        self._store = Store(env)
        self.received = 0

    def put(self, message) -> None:
        self.received += 1
        self._store.put(message)

    def get(self) -> Event:
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)


class Channel(Protocol):
    """What layers 2/3 see: send a message from a node to a mailbox."""

    def send(
        self, sender: SimNode, message, dest: Mailbox
    ) -> Generator[Event, None, None]: ...


class SimMPIChannel:
    """Intra-cluster transport over the message-passing fabric."""

    def __init__(self, cluster: SimCluster, account: str = "send"):
        self.cluster = cluster
        self.account = account

    def send(self, sender: SimNode, message, dest: Mailbox):
        yield from self.cluster.fabric_transfer(
            sender, _wire_bytes(message), account=self.account
        )
        dest.put(message)


class SimTCPChannel:
    """Cluster ↔ visualization-client transport (serialized TCP link)."""

    def __init__(self, cluster: SimCluster):
        self.cluster = cluster

    def send(self, sender: SimNode, message, dest: Mailbox):
        yield from self.cluster.send_to_client(sender, _wire_bytes(message))
        dest.put(message)


class ClientUplink:
    """The client → scheduler direction of the serialized TCP link.

    Command submissions travel *up* the same client link result packets
    travel down; this wrapper charges that link for a request's wire
    size and (optionally) delivers it to a scheduler mailbox.  Both the
    single-client session and the multi-tenant serving layer submit
    through it, so submission cost is modeled in exactly one place.
    """

    def __init__(self, cluster: SimCluster):
        self.cluster = cluster
        self.sent = 0

    def send(self, message, dest: Mailbox | None = None):
        yield from self.cluster.client_link.transfer(_wire_bytes(message))
        self.sent += 1
        if dest is not None:
            dest.put(message)


class InstantChannel:
    """Zero-cost delivery — unit-test doubles and client-side loopback."""

    def send(self, sender: SimNode, message, dest: Mailbox):
        dest.put(message)
        return
        yield  # pragma: no cover - makes this a generator function


def _wire_bytes(message) -> int:
    for attr in ("wire_bytes", "nbytes"):
        size = getattr(message, attr, None)
        if size is not None:
            return int(size)
    return 256
