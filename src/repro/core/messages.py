"""Message types exchanged between client, scheduler and workers.

Every message knows its wire size so channels can charge transfer time.
Header overhead is deliberately modeled: streamed results are many small
messages, and their per-message cost is precisely the streaming overhead
the paper discusses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "HEADER_BYTES",
    "CommandRequest",
    "WorkAssignment",
    "ResultPacket",
    "WorkerDone",
    "CommandComplete",
]

#: fixed framing overhead per message (type tag, ids, lengths).
HEADER_BYTES = 128

_request_counter = itertools.count(1)


def next_request_id() -> int:
    return next(_request_counter)


@dataclass(frozen=True)
class CommandRequest:
    """Client → scheduler: start a post-processing command."""

    request_id: int
    command: str
    params: dict[str, Any] = field(default_factory=dict)
    group_size: int | None = None  #: None = whole worker pool
    tenant: str = "default"  #: originating tenant (serving layer)

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES + 64 * max(len(self.params), 1)


@dataclass(frozen=True)
class Shutdown:
    """Client → scheduler: stop the serve loop."""

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES


@dataclass(frozen=True)
class WorkAssignment:
    """Scheduler → worker: the worker's share of a command."""

    request_id: int
    command: str
    params: dict[str, Any]
    worker_index: int  #: index within the work group
    group_size: int
    assignment: Any  #: command-specific (block list, seed list, ...)

    @property
    def nbytes(self) -> int:
        try:
            n_items = len(self.assignment)
        except TypeError:
            n_items = 1
        return HEADER_BYTES + 16 * max(n_items, 1)


@dataclass(frozen=True)
class ResultPacket:
    """A (partial or final) result travelling to the client.

    ``payload`` carries the real geometry; ``nbytes`` is the *modeled*
    wire size used for transfer-time charging.
    """

    request_id: int
    worker_index: int
    sequence: int
    payload: Any
    nbytes: int
    final: bool = False
    #: payload class: "geometry" for surface fragments, "approximation"
    #: for the zero-byte marker a progressive worker sends once the
    #: coarsest level of *all* its blocks is out (the client's TTFA
    #: measurement point).
    kind: str = "geometry"

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES + self.nbytes


@dataclass(frozen=True)
class ProgressUpdate:
    """Worker → client: fraction of this worker's share completed.

    The paper's §9 names exactly this: "methods have to be developed
    supporting the user to realize that a computation is still in
    progress.  A straightforward approach could be a kind of progress
    bar visible in the virtual environment."
    """

    request_id: int
    worker_index: int
    completed: int
    total: int

    @property
    def fraction(self) -> float:
        return self.completed / self.total if self.total else 1.0

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES


@dataclass(frozen=True)
class WorkerDone:
    """Worker → master/scheduler: my share is finished."""

    request_id: int
    worker_index: int
    partial_nbytes: int  #: modeled size of the buffered partial result
    payload: Any = None

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES + self.partial_nbytes


@dataclass(frozen=True)
class CommandComplete:
    """Scheduler → client bookkeeping record (end of command)."""

    request_id: int

    @property
    def nbytes(self) -> int:
        return HEADER_BYTES
