"""Layer 3: the command protocol.

"Actually applied computing algorithms are merely implemented on the
uppermost layer.  This design allows the reuse of the Viracocha
framework for purposes different from CFD post-processing by simply
exchanging this topmost layer." (§3)

A command is a generator over *ops*; the worker (layer 2) interprets
them:

* ``Load(item)``     → fetch a block (through the DMS or directly);
  the op evaluates to the :class:`~repro.grids.block.StructuredBlock`.
* ``Compute(cost, fn)`` → run ``fn`` now (real numerics) and charge
  ``cost`` modeled work units; evaluates to ``fn()``.
* ``Emit(payload, nbytes, kind)`` → hand a partial result to the
  runtime: streamed straight to the client, or buffered for the final
  collective package, depending on the command's ``streaming`` flag.
* ``Prefetch(item)`` → non-blocking code-prefetch hint (§4.2).

Because the ops are plain data, the same command code runs under any
runtime and is trivially unit-testable by driving the generator by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Sequence

from ..dms.items import ItemName
from ..grids.block import BlockHandle
from .costs import CostModel

__all__ = [
    "Load",
    "Compute",
    "ComputeCached",
    "Emit",
    "Prefetch",
    "CommandContext",
    "Command",
    "CommandRegistry",
    "split_round_robin",
    "split_balanced",
    "plan_block_assignments",
    "plan_block_tasks",
    "lpt_order",
]


@dataclass(frozen=True)
class Load:
    item: ItemName


@dataclass(frozen=True)
class Compute:
    cost: float
    fn: Callable[[], Any] | None = None


@dataclass(frozen=True)
class ComputeCached:
    """Derive-once compute: the result is a cacheable data item (§4).

    On a DMS cache hit the op evaluates to the cached payload without
    running ``fn`` or charging ``cost`` (an L2 hit pays the local read
    of ``nbytes``); on a miss ``fn`` runs, ``cost`` is charged, and the
    payload is admitted to the cache under ``item`` so later commands —
    or later refinement passes of the same command — skip the work.

    ``fn=None`` turns the op into a *probe*: a hit evaluates to the
    cached payload as usual, a miss evaluates to ``None`` with nothing
    charged or recorded.  Commands use probes to skip upstream work a
    hit makes redundant — e.g. the progressive command only ``Load``\\ s
    the full-resolution block when its pyramid is not already cached.
    """

    item: ItemName
    cost: float
    fn: Callable[[], Any] | None
    nbytes: int = 0


@dataclass(frozen=True)
class Emit:
    payload: Any
    nbytes: int
    kind: str = "geometry"


@dataclass(frozen=True)
class Prefetch:
    item: ItemName


@dataclass
class CommandContext:
    """Everything a command needs to plan and run.

    ``handles_by_time[i]`` lists the block handles of absolute time
    level ``time_offset + i``; ``times`` are the matching physical
    times.  Commands derive item names, cost estimates and orderings
    from these without touching payload data.
    """

    dataset: str
    handles_by_time: Sequence[Sequence[BlockHandle]]
    params: dict[str, Any]
    costs: CostModel
    time_offset: int = 0
    times: Sequence[float] = ()

    @property
    def n_timesteps(self) -> int:
        return len(self.handles_by_time)

    @property
    def time_indices(self) -> range:
        """Absolute time indices covered by this command."""
        return range(self.time_offset, self.time_offset + len(self.handles_by_time))

    def handle(self, time_index: int, block_id: int) -> BlockHandle:
        """Handle lookup by *absolute* time index."""
        rel = time_index - self.time_offset
        if not 0 <= rel < len(self.handles_by_time):
            raise KeyError(f"time index {time_index} outside command range")
        for h in self.handles_by_time[rel]:
            if h.block_id == block_id:
                return h
        raise KeyError(f"no handle for block {block_id} at t={time_index}")


CommandGen = Generator["Load | Compute | ComputeCached | Emit | Prefetch", Any, None]


class Command:
    """Base class for post-processing commands."""

    #: registry name, e.g. "iso-dataman".
    name: str = "command"
    #: whether partial results stream directly to the client (§5).
    streaming: bool = False
    #: whether block loads go through the DMS (§4) or hit the
    #: fileserver directly every time (the paper's "Simple*" baselines).
    use_dms: bool = True

    def plan(self, ctx: CommandContext, group_size: int) -> list[Any]:
        """Split the work into one assignment per worker."""
        raise NotImplementedError

    def run(self, ctx: CommandContext, assignment: Any, worker_index: int) -> CommandGen:
        """The worker-side op generator for one assignment."""
        raise NotImplementedError

    def prefetcher_spec(self, ctx: CommandContext) -> str:
        """System prefetcher to install for this command ('none', 'obl',
        'on-miss', 'markov+obl').  Commands may honor a ``prefetch``
        param override (the ablation figures switch prefetching off)."""
        return "none"

    def item_sequence_for(self, ctx: CommandContext, assignment: Any) -> list[ItemName] | None:
        """The block-item order this worker will process (drives the
        sequential prefetchers' "next block" relation).  ``None`` means
        no meaningful sequential order exists."""
        return None

    def plan_tasks(self, ctx: CommandContext) -> list[Any]:
        """Split the work into fine-grained tasks for dynamic scheduling.

        Each task is a minimal assignment (drivable by :meth:`run`
        unchanged) in *canonical* order: the order a single-worker
        :meth:`plan` would visit the same work.  Dynamic schedulers may
        execute tasks in any order but must reassemble payloads in this
        order, which keeps merged output byte-identical to a serial run.

        The default is one coarse task — the whole single-worker share —
        so commands without a finer split (e.g. the progressive command,
        whose refinement loop is stateful across blocks) still run under
        ``schedule="dynamic"``, just without stealing.
        """
        return self.plan(ctx, 1)

    def task_cost(self, ctx: CommandContext, task: Any) -> float:
        """Estimated relative cost of one :meth:`plan_tasks` task.

        Drives LPT (longest-processing-time-first) initial ordering;
        only relative magnitudes matter.  The default recognizes
        ``(time_index, block_id)`` block work and sums modeled cell
        counts; anything else is uniform.
        """
        total = 0.0
        recognized = False
        try:
            entries = list(task)
        except TypeError:
            return 1.0
        for entry in entries:
            try:
                t, bid = entry
                total += float(ctx.handle(int(t), int(bid)).modeled_cells)
                recognized = True
            except (TypeError, ValueError, KeyError):
                continue
        return total if recognized else 1.0

    def merge(self, payload_lists: Sequence[Sequence[Any]]) -> Any:
        """Combine the workers' buffered partials into the final result.

        The default merges triangle meshes; commands with other payload
        types (pathlines) override this.
        """
        from ..viz.mesh import TriangleMesh

        flat = [p for payloads in payload_lists for p in payloads]
        meshes = [p for p in flat if isinstance(p, TriangleMesh)]
        if len(meshes) == len(flat):
            return TriangleMesh.merge(meshes)
        return flat


def split_round_robin(items: Sequence[Any], group_size: int) -> list[list[Any]]:
    """Deal items to workers in turn (the default static distribution)."""
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    shares: list[list[Any]] = [[] for _ in range(group_size)]
    for i, item in enumerate(items):
        shares[i % group_size].append(item)
    return shares


def split_balanced(
    items: Sequence[Any], weights: Sequence[float], group_size: int
) -> list[list[Any]]:
    """Cost-aware static distribution (longest-processing-time greedy).

    The paper observes that "unless one has a highly elaborated
    scheduling algorithm that balances workload in an almost optimum
    manner, there will always be work nodes that finish their part of
    the job earlier" (§5.2).  LPT is the classic 4/3-approximate
    balancer: items are assigned heaviest-first to the currently
    lightest worker.  Each share preserves the items' original relative
    order (so sequential prefetching stays meaningful).

    Tie-breaks are pinned so the partition is identical across runs and
    platforms: equal-weight items are taken in ascending input index
    (``lpt_order``), and among equally loaded workers the lowest index
    wins (``list.index`` returns the first minimum).  Both rules are
    regression-tested; simulated fingerprints and the parallel
    equivalence suite depend on them.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if len(items) != len(weights):
        raise ValueError(
            f"{len(items)} items but {len(weights)} weights"
        )
    order = lpt_order(weights)
    loads = [0.0] * group_size
    picked: list[list[int]] = [[] for _ in range(group_size)]
    for idx in order:
        target = loads.index(min(loads))
        picked[target].append(idx)
        loads[target] += float(weights[idx])
    return [[items[i] for i in sorted(share)] for share in picked]


def lpt_order(weights: Sequence[float]) -> list[int]:
    """Indices sorted heaviest-first, ties broken by ascending index.

    The shared ordering primitive of the static LPT partition
    (:func:`split_balanced`) and both dynamic schedulers (DES and
    :mod:`repro.parallel`): expensive work starts first, and the
    explicit index tie-break makes the order deterministic for
    equal-cost items regardless of sort implementation details.
    """
    return sorted(range(len(weights)), key=lambda i: (-float(weights[i]), i))


def plan_block_assignments(ctx: CommandContext, group_size: int) -> list[list[Any]]:
    """Standard block-work planning for per-block commands.

    Emits ``(time_index, block_id)`` pairs, time-major.  The default
    distribution is round-robin; ``params["distribution"] = "balanced"``
    switches to cost-aware LPT using each block's modeled cell count —
    the lever for heterogeneous multi-block meshes like the Engine's.
    """
    work = [
        (t, h.block_id)
        for t in ctx.time_indices
        for h in ctx.handles_by_time[t - ctx.time_offset]
    ]
    if ctx.params.get("distribution", "round-robin") == "balanced":
        weights = [ctx.handle(t, b).modeled_cells for t, b in work]
        return split_balanced(work, weights, group_size)
    return split_round_robin(work, group_size)


def plan_block_tasks(ctx: CommandContext) -> list[list[Any]]:
    """One dynamic-scheduling task per ``(time_index, block_id)``.

    Canonical order is time-major block order — exactly the order a
    single :func:`plan_block_assignments` share visits, so payloads
    reassembled in task order merge byte-identically to a serial run.
    """
    return [
        [(t, h.block_id)]
        for t in ctx.time_indices
        for h in ctx.handles_by_time[t - ctx.time_offset]
    ]


class CommandRegistry:
    """Name → command-class lookup (the extension point of layer 3)."""

    def __init__(self) -> None:
        self._commands: dict[str, type[Command]] = {}

    def register(self, cls: type[Command]) -> type[Command]:
        if not issubclass(cls, Command):
            raise TypeError(f"{cls!r} is not a Command subclass")
        if cls.name in self._commands:
            raise ValueError(f"command {cls.name!r} already registered")
        self._commands[cls.name] = cls
        return cls

    def create(self, name: str, **kwargs) -> Command:
        try:
            cls = self._commands[name]
        except KeyError:
            raise KeyError(
                f"unknown command {name!r}; available: {sorted(self._commands)}"
            ) from None
        return cls(**kwargs)

    def names(self) -> list[str]:
        return sorted(self._commands)

    def __contains__(self, name: str) -> bool:
        return name in self._commands
