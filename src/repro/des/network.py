"""Network links with bandwidth and latency for the simulated cluster.

A :class:`Link` is a serialized channel: concurrent transfers queue and
each occupies the wire for ``nbytes / bandwidth`` after a fixed
per-message ``latency``.  This is intentionally simple — it is exactly
enough to reproduce the effect the paper reports at 16 workers, where
many workers "literally firing data at the visualization system"
saturate the client connection and communication overhead exceeds the
parallelization profit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from .kernel import AnyOf, Environment, Event
from .resources import Resource

__all__ = ["Link", "LinkStats", "TransferToken"]


class TransferToken:
    """Escalation handle for a background transfer.

    A speculative (prefetch) transfer queues at low priority; if a
    demand consumer starts waiting on its result, calling
    :meth:`boost` re-queues the pending wire request at demand
    priority, avoiding priority inversion.  Boosting a transfer that
    already holds the wire (or already finished) is a no-op.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._event = env.event()

    @property
    def boosted(self) -> bool:
        return self._event.triggered

    def boost(self) -> None:
        if not self._event.triggered:
            self._event.succeed()


@dataclass
class LinkStats:
    """Aggregate accounting for one link."""

    transfers: int = 0
    bytes_sent: int = 0
    busy_time: float = 0.0
    wait_time: float = 0.0


class Link:
    """A point-to-point (or shared-medium) serialized network link.

    Parameters
    ----------
    bandwidth:
        Sustained throughput in bytes per simulated second.
    latency:
        Fixed per-message overhead in simulated seconds (protocol and
        propagation cost; the paper's MPI vs TCP/IP distinction lives
        here).
    streams:
        Number of transfers that may occupy the wire concurrently; each
        concurrent stream gets the full ``bandwidth`` (a simplification
        used only where the paper's setup implies independent paths,
        e.g. node-local disks).
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "link",
        streams: int = 1,
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name
        self._wire = Resource(env, capacity=streams)
        self.stats = LinkStats()

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded duration of a transfer of ``nbytes``."""
        return self.latency + nbytes / self.bandwidth

    def transfer(
        self, nbytes: int, priority: int = 0, token: TransferToken | None = None
    ) -> Generator[Event, None, None]:
        """Process body: occupy the wire for one message of ``nbytes``.

        ``priority > 0`` marks background traffic (speculative prefetch
        reads) that must never delay queued demand transfers.  A
        ``token`` lets a later demand consumer :meth:`~TransferToken.boost`
        this transfer back to demand priority while it still queues.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        t_req = self.env.now
        req = self._wire.request(priority=priority)
        if token is not None and not req.triggered:
            escalated = yield AnyOf(self.env, [req, token._event])
            if not req.triggered:
                # Boost: abandon the queued slot, re-request at demand
                # priority, and wait normally.
                self._wire.cancel(req)
                req = self._wire.request(priority=0)
        if not req.processed:
            yield req
        try:
            self.stats.wait_time += self.env.now - t_req
            duration = self.transfer_time(nbytes)
            yield self.env.timeout(duration)
            self.stats.transfers += 1
            self.stats.bytes_sent += nbytes
            self.stats.busy_time += duration
        finally:
            self._wire.release(req)
