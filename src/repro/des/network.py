"""Network links with bandwidth and latency for the simulated cluster.

A :class:`Link` is a serialized channel: concurrent transfers queue and
each occupies the wire for ``nbytes / bandwidth`` after a fixed
per-message ``latency``.  This is intentionally simple — it is exactly
enough to reproduce the effect the paper reports at 16 workers, where
many workers "literally firing data at the visualization system"
saturate the client connection and communication overhead exceeds the
parallelization profit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from .kernel import AnyOf, Environment, Event
from .resources import Resource

__all__ = ["Link", "LinkStats", "TransferToken"]


class TransferToken:
    """Escalation handle for a background transfer.

    A speculative (prefetch) transfer queues at low priority; if a
    demand consumer starts waiting on its result, calling
    :meth:`boost` re-queues the pending wire request at demand
    priority, avoiding priority inversion.  Boosting a transfer that
    already holds the wire (or already finished) is a no-op.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._event = env.event()

    @property
    def boosted(self) -> bool:
        return self._event.triggered

    def boost(self) -> None:
        if not self._event.triggered:
            self._event.succeed()


@dataclass
class LinkStats:
    """Aggregate accounting for one link."""

    transfers: int = 0
    bytes_sent: int = 0
    busy_time: float = 0.0
    wait_time: float = 0.0
    #: transfers that hit an injected fault (drop/delay episode).
    faulted: int = 0
    #: extra seconds charged by injected faults (retransmits, jitter).
    fault_delay: float = 0.0


class Link:
    """A point-to-point (or shared-medium) serialized network link.

    Parameters
    ----------
    bandwidth:
        Sustained throughput in bytes per simulated second.
    latency:
        Fixed per-message overhead in simulated seconds (protocol and
        propagation cost; the paper's MPI vs TCP/IP distinction lives
        here).
    streams:
        Number of transfers that may occupy the wire concurrently; each
        concurrent stream gets the full ``bandwidth`` (a simplification
        used only where the paper's setup implies independent paths,
        e.g. node-local disks).
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "link",
        streams: int = 1,
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name
        self._wire = Resource(env, capacity=streams)
        self.stats = LinkStats()
        #: bandwidth multiplier in (0, 1]; fault episodes lower it.
        self._degradation = 1.0
        #: optional fault hook ``fn(nbytes) -> extra_delay_seconds``;
        #: installed by :mod:`repro.faults` during lossy-link episodes.
        self.fault_hook = None

    # ----------------------------------------------------- fault hooks
    @property
    def effective_bandwidth(self) -> float:
        """Current throughput after any injected degradation."""
        return self.bandwidth * self._degradation

    @property
    def degradation(self) -> float:
        return self._degradation

    def degrade(self, factor: float) -> None:
        """Throttle the link to ``factor`` of nominal bandwidth.

        Models a slow-disk / congested-WAN episode; ``factor`` is
        clamped away from zero so a degraded link still drains and the
        simulation always terminates.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degradation factor must be in (0, 1], got {factor}")
        self._degradation = max(factor, 1e-3)

    def restore(self) -> None:
        """End a degradation episode (back to nominal bandwidth)."""
        self._degradation = 1.0

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded duration of a transfer of ``nbytes`` right now."""
        return self.latency + nbytes / self.effective_bandwidth

    def transfer(
        self, nbytes: int, priority: int = 0, token: TransferToken | None = None
    ) -> Generator[Event, None, None]:
        """Process body: occupy the wire for one message of ``nbytes``.

        ``priority > 0`` marks background traffic (speculative prefetch
        reads) that must never delay queued demand transfers.  A
        ``token`` lets a later demand consumer :meth:`~TransferToken.boost`
        this transfer back to demand priority while it still queues.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        wire = self._wire
        if not wire._waiting and len(wire._users) < wire.capacity:
            # Uncontended fast path: the wire is idle and nobody queues,
            # so the request would be granted at this instant anyway.
            # Claim the slot synchronously and charge the one timeout
            # that models the occupancy — the request/grant event pair
            # per packet is coalesced away while the packet's arrival
            # timestamp (now + duration) and all stats stay identical.
            req = wire.grab()
            try:
                duration = self.transfer_time(nbytes)
                if self.fault_hook is not None:
                    extra = float(self.fault_hook(nbytes))
                    if extra > 0.0:
                        self.stats.faulted += 1
                        self.stats.fault_delay += extra
                        duration += extra
                yield self.env.timeout(duration)
                self.stats.transfers += 1
                self.stats.bytes_sent += nbytes
                self.stats.busy_time += duration
            finally:
                wire.release(req)
            return
        t_req = self.env.now
        req = self._wire.request(priority=priority)
        # The wire slot is released on every exit path, including an
        # Interrupt thrown while queued (worker crash / assignment
        # timeout): a leaked slot would wedge every later transfer.
        try:
            if token is not None and not req.triggered:
                escalated = yield AnyOf(self.env, [req, token._event])
                if not req.triggered:
                    # Boost: abandon the queued slot, re-request at demand
                    # priority, and wait normally.
                    self._wire.cancel(req)
                    req = self._wire.request(priority=0)
            if not req.processed:
                yield req
            self.stats.wait_time += self.env.now - t_req
            duration = self.transfer_time(nbytes)
            if self.fault_hook is not None:
                extra = float(self.fault_hook(nbytes))
                if extra > 0.0:
                    self.stats.faulted += 1
                    self.stats.fault_delay += extra
                    duration += extra
            yield self.env.timeout(duration)
            self.stats.transfers += 1
            self.stats.bytes_sent += nbytes
            self.stats.busy_time += duration
        finally:
            self._wire.release(req)
