"""The simulated HPC cluster Viracocha runs on.

This stands in for the paper's testbed (a SUN Fire 6800 SMP node with 24
UltraSPARC III CPUs and a network fileserver, plus a PC workstation as
the visualization client).  The model has exactly the pieces whose
interaction the paper measures:

* one CPU per worker (:class:`SimNode`), charging compute time as
  ``cost / flops``;
* a shared, serialized **fileserver** link — I/O contention grows with
  the number of workers reading at once;
* optional node-local **disks** (the DMS secondary cache tier);
* a shared message-passing **fabric** for worker↔worker and
  worker↔scheduler traffic (cheap: shared-memory MPI);
* a single serialized **client link** (TCP/IP to the visualization
  host) — the contention point that makes streaming overhead visible.

Every node keeps a compute/read/send time breakdown, which is what
Figure 15 of the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from .kernel import Environment, Event
from .network import Link
from .resources import Resource

__all__ = ["ClusterConfig", "SimNode", "SimCluster"]

MB = 1024 * 1024


@dataclass(frozen=True)
class ClusterConfig:
    """Hardware parameters of the simulated testbed.

    Defaults approximate the paper's setup at the granularity the model
    needs; :mod:`repro.bench.calibration` documents how they were chosen.
    """

    n_workers: int = 4
    #: abstract work units per second per CPU (calibrated, see bench).
    cpu_rate: float = 1.0e8
    #: shared network fileserver (all cold reads go through it).
    fileserver_bandwidth: float = 60.0 * MB
    fileserver_latency: float = 5e-3
    #: how many reads the fileserver can serve concurrently at full rate.
    fileserver_streams: int = 2
    #: node-local scratch disk (secondary cache tier).
    local_disk_bandwidth: float = 40.0 * MB
    local_disk_latency: float = 8e-3
    #: shared-memory MPI fabric between cluster processes.
    fabric_bandwidth: float = 800.0 * MB
    fabric_latency: float = 30e-6
    fabric_streams: int = 8
    #: TCP/IP connection to the visualization client.
    client_bandwidth: float = 10.0 * MB
    client_latency: float = 2e-3

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.cpu_rate <= 0:
            raise ValueError(f"cpu_rate must be positive, got {self.cpu_rate}")


@dataclass
class NodeBreakdown:
    """Per-node time-in-component accounting (paper Fig. 15)."""

    compute: float = 0.0
    read: float = 0.0
    send: float = 0.0
    other: float = 0.0

    @property
    def total(self) -> float:
        return self.compute + self.read + self.send + self.other

    def fractions(self) -> dict[str, float]:
        t = self.total
        if t == 0:
            return {"compute": 0.0, "read": 0.0, "send": 0.0, "other": 0.0}
        return {
            "compute": self.compute / t,
            "read": self.read / t,
            "send": self.send / t,
            "other": self.other / t,
        }

    def add(self, other: "NodeBreakdown") -> None:
        self.compute += other.compute
        self.read += other.read
        self.send += other.send
        self.other += other.other


class SimNode:
    """One cluster process slot: a CPU plus a local scratch disk."""

    def __init__(self, env: Environment, node_id: int, config: ClusterConfig):
        self.env = env
        self.node_id = node_id
        self.config = config
        self.cpu = Resource(env, capacity=1)
        self.local_disk = Link(
            env,
            bandwidth=config.local_disk_bandwidth,
            latency=config.local_disk_latency,
            name=f"disk{node_id}",
        )
        self.breakdown = NodeBreakdown()

    def compute(self, cost: float) -> Generator[Event, None, None]:
        """Process body: occupy this node's CPU for ``cost`` work units."""
        if cost < 0:
            raise ValueError(f"cost must be >= 0, got {cost}")
        with self.cpu.request() as req:
            yield req
            duration = cost / self.config.cpu_rate
            yield self.env.timeout(duration)
            self.breakdown.compute += duration

    def read_local(self, nbytes: int) -> Generator[Event, None, None]:
        """Process body: read ``nbytes`` from the node-local disk."""
        t0 = self.env.now
        yield from self.local_disk.transfer(nbytes)
        self.breakdown.read += self.env.now - t0

    def write_local(self, nbytes: int) -> Generator[Event, None, None]:
        """Process body: write ``nbytes`` to the node-local disk."""
        t0 = self.env.now
        yield from self.local_disk.transfer(nbytes)
        self.breakdown.other += self.env.now - t0


class SimCluster:
    """Wires nodes, fileserver, fabric and client link together."""

    def __init__(self, env: Environment, config: ClusterConfig):
        self.env = env
        self.config = config
        # Node 0 hosts the scheduler; nodes 1..n host workers.
        self.nodes = [SimNode(env, i, config) for i in range(config.n_workers + 1)]
        self.fileserver = Link(
            env,
            bandwidth=config.fileserver_bandwidth,
            latency=config.fileserver_latency,
            name="fileserver",
            streams=config.fileserver_streams,
        )
        self.fabric = Link(
            env,
            bandwidth=config.fabric_bandwidth,
            latency=config.fabric_latency,
            name="fabric",
            streams=config.fabric_streams,
        )
        self.client_link = Link(
            env,
            bandwidth=config.client_bandwidth,
            latency=config.client_latency,
            name="client",
        )

    @property
    def scheduler_node(self) -> SimNode:
        return self.nodes[0]

    @property
    def worker_nodes(self) -> list[SimNode]:
        return self.nodes[1:]

    def links(self) -> dict[str, Link]:
        """Every link by name: shared media plus per-node scratch disks.

        The lookup table :mod:`repro.faults` uses to target degradation
        and loss episodes ("fileserver", "fabric", "client", "disk<N>").
        """
        table = {
            "fileserver": self.fileserver,
            "fabric": self.fabric,
            "client": self.client_link,
        }
        for node in self.nodes:
            table[node.local_disk.name] = node.local_disk
        return table

    def link(self, name: str) -> Link:
        """Look up one link by its :meth:`links` name."""
        try:
            return self.links()[name]
        except KeyError:
            raise KeyError(
                f"unknown link {name!r}; known: {sorted(self.links())}"
            ) from None

    def read_fileserver(
        self, node: SimNode, nbytes: int, priority: int = 0, token=None
    ) -> Generator[Event, None, None]:
        """Process body: ``node`` reads ``nbytes`` from the fileserver.

        ``priority > 0`` marks background (prefetch) reads that yield to
        queued demand reads; ``token`` allows later escalation.
        """
        t0 = self.env.now
        yield from self.fileserver.transfer(nbytes, priority=priority, token=token)
        node.breakdown.read += self.env.now - t0

    def fabric_transfer(
        self, node: SimNode, nbytes: int, account: str = "other"
    ) -> Generator[Event, None, None]:
        """Process body: intra-cluster message of ``nbytes`` from ``node``."""
        t0 = self.env.now
        yield from self.fabric.transfer(nbytes)
        elapsed = self.env.now - t0
        if account == "read":
            node.breakdown.read += elapsed
        elif account == "send":
            node.breakdown.send += elapsed
        else:
            node.breakdown.other += elapsed

    def send_to_client(
        self, node: SimNode, nbytes: int
    ) -> Generator[Event, None, None]:
        """Process body: ``node`` sends ``nbytes`` to the viz client."""
        t0 = self.env.now
        yield from self.client_link.transfer(nbytes)
        node.breakdown.send += self.env.now - t0

    def total_breakdown(self, workers_only: bool = True) -> NodeBreakdown:
        """Summed compute/read/send across nodes (Fig. 15 input)."""
        agg = NodeBreakdown()
        nodes = self.worker_nodes if workers_only else self.nodes
        for node in nodes:
            agg.add(node.breakdown)
        return agg
