"""Shared-resource primitives for the DES kernel.

Implements the minimum set of coordination objects the cluster model
needs: a counted :class:`Resource` (CPU slots, disk channels), a
:class:`Store` (unbounded FIFO message queues) and a
:class:`PriorityStore` (scheduler run queues).
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any

from .kernel import Environment, Event

__all__ = ["Request", "Resource", "Store", "PriorityStore"]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ...  # holding the slot
    """

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with priority queueing (FIFO within a priority).

    Lower ``priority`` values are served first; the default ``0`` for
    every request yields plain FIFO behavior.  Background work (e.g.
    speculative prefetch I/O) requests with a higher value so it only
    consumes otherwise-idle capacity.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: list[tuple[int, int, Request]] = []
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        return sum(1 for (_p, _s, r) in self._waiting if not r.triggered)

    def request(self, priority: int = 0) -> Request:
        req = Request(self, priority=priority)
        if len(self._users) < self.capacity and not self._waiting:
            self._users.add(req)
            req.succeed()
        else:
            heappush(self._waiting, (priority, self._seq, req))
            self._seq += 1
            self._grant_next()
        return req

    def grab(self) -> Request:
        """Synchronously claim a free slot (uncontended fast path).

        The caller must have checked ``count < capacity`` with an empty
        wait queue.  The returned request is already triggered *and*
        processed: no grant event enters the calendar, so the acquiring
        process never suspends.  :meth:`release` works on it as usual.
        :class:`~repro.des.network.Link` uses this to coalesce the
        per-packet request/grant event pair on an idle wire.
        """
        req = Request(self, priority=0)
        req._triggered = True
        req._ok = True
        req.callbacks = None
        self._users.add(req)
        return req

    def release(self, req: Request) -> None:
        if req in self._users:
            self._users.discard(req)
            self._grant_next()
        elif not req.triggered:
            # Cancelling a queued (never-granted) request is legal.
            self.cancel(req)

    def cancel(self, req: Request) -> None:
        """Remove a queued request without granting it."""
        before = len(self._waiting)
        self._waiting = [(p, s, r) for (p, s, r) in self._waiting if r is not req]
        if len(self._waiting) != before:
            heapify(self._waiting)

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            _prio, _seq, nxt = heappop(self._waiting)
            if nxt.triggered:  # already granted or cancelled
                continue
            self._users.add(nxt)
            nxt.succeed()


class Store:
    """Unbounded FIFO store of Python objects (message queue)."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item (never blocks)."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that yields the next item."""
        evt = Event(self.env)
        if self._items:
            evt.succeed(self._items.popleft())
        else:
            self._getters.append(evt)
        return evt


class PriorityStore(Store):
    """A store whose :meth:`get` yields the smallest item first.

    Items must be comparable; ``(priority, seq, payload)`` tuples are the
    conventional shape.  Ties are impossible because callers include a
    sequence number.
    """

    def __init__(self, env: Environment):
        super().__init__(env)
        self._heap: list[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> tuple[Any, ...]:
        return tuple(sorted(self._heap))

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            if self._heap and self._heap[0] < item:
                heappush(self._heap, item)
                getter.succeed(heappop(self._heap))
            else:
                getter.succeed(item)
            return
        heappush(self._heap, item)

    def get(self) -> Event:
        evt = Event(self.env)
        if self._heap:
            evt.succeed(heappop(self._heap))
        else:
            self._getters.append(evt)
        return evt
