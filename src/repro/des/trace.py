"""Event tracing for simulated runs.

A :class:`TraceRecorder` collects timestamped records (command started,
block loaded, packet streamed, ...) so benchmarks and tests can assert
on *when* things happened, not only on final results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    time: float
    node: int
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent(t={self.time:.4f}, node={self.node}, {self.kind}, {self.detail})"


class TraceRecorder:
    """Append-only log of :class:`TraceEvent` records."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(self, time: float, node: int, kind: str, **detail: Any) -> None:
        if self.enabled:
            self.events.append(TraceEvent(time, node, kind, detail))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def first(self, kind: str) -> TraceEvent | None:
        for e in self.events:
            if e.kind == kind:
                return e
        return None

    def last(self, kind: str) -> TraceEvent | None:
        found = None
        for e in self.events:
            if e.kind == kind:
                found = e
        return found

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def clear(self) -> None:
        self.events.clear()
