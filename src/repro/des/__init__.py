"""Deterministic discrete-event simulation of the Viracocha testbed.

Substitutes for the paper's SUN Fire 6800 + MPI hardware: a simpy-like
kernel (:mod:`.kernel`, :mod:`.resources`), bandwidth/latency links
(:mod:`.network`), and the cluster wiring (:mod:`.cluster`).
"""

from .kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import PriorityStore, Request, Resource, Store
from .network import Link, LinkStats
from .cluster import ClusterConfig, NodeBreakdown, SimCluster, SimNode
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "PriorityStore",
    "Request",
    "Resource",
    "Store",
    "Link",
    "LinkStats",
    "ClusterConfig",
    "NodeBreakdown",
    "SimCluster",
    "SimNode",
    "TraceEvent",
    "TraceRecorder",
]
