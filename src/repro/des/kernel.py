"""Discrete-event simulation kernel.

A small, deterministic, simpy-like engine.  Simulation *processes* are
Python generators that ``yield`` :class:`Event` objects; the
:class:`Environment` owns the event calendar and advances simulated time.

This kernel is the execution substrate for the simulated Viracocha
cluster (:mod:`repro.des.cluster`): everything the paper measured on a
24-CPU SUN Fire 6800 runs here as coroutines over a virtual clock, which
makes runtimes for 1..16 workers reproducible on a single host core.

Determinism rules:

* events scheduled at the same time fire in FIFO order of scheduling
  (a monotonically increasing sequence number breaks heap ties);
* no wall-clock or OS randomness is consulted anywhere.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable
from typing import Any, Callable

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, after which its callbacks run at the
    current simulation time.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool | None = None
        self._triggered = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        self._count = 0
        if any(e.env is not env for e in self.events):
            raise SimulationError("events from different environments")
        if not self.events:
            self.succeed(self._collect())
            return
        for e in self.events:
            if e.processed:
                self._check(e)
            elif e.callbacks is not None:
                e.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        if self._triggered:
            # The condition already fired, but later component failures
            # must still be marked handled or they would crash the run.
            if event._triggered and not event._ok:
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every component event has triggered."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self.events)


class AnyOf(_Condition):
    """Triggers when the first component event triggers."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class Process(Event):
    """Wraps a generator; itself an event that triggers on completion.

    The generator yields :class:`Event` instances (including other
    processes).  When a yielded event fails and the failure is not
    handled by the generator, the process fails with the same exception.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        init = Event(env)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        env = self.env

        def _do(_evt: Event) -> None:
            if self._triggered:
                return
            if self._target is not None and self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            self._target = None
            self._step(Interrupt(cause))

        hook = Event(env)
        hook.callbacks.append(_do)
        hook.succeed()

    # -- driving ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step_send(event._value)
        else:
            event.defuse()
            self._step(event._value)

    def _step_send(self, value: Any) -> None:
        self.env._active = self
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.env._active = None
        self._wait(target)

    def _step(self, exc: BaseException) -> None:
        self.env._active = self
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            if err is exc and not isinstance(err, Interrupt):
                # Unhandled failure propagated out of the generator.
                self.fail(err)
            elif isinstance(err, StopIteration):  # pragma: no cover
                self.succeed(err.value)
            else:
                self.fail(err)
            return
        finally:
            self.env._active = None
        self._wait(target)

    def _wait(self, target: Any) -> None:
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            self._step(exc)
            return
        if target.env is not self.env:
            self._step(SimulationError("yielded event from another environment"))
            return
        if target.processed:
            # Already fired; resume immediately (next scheduling slot).
            resume = Event(self.env)
            resume.callbacks.append(lambda _e: self._resume_processed(target))
            resume.succeed()
            self._target = target
        else:
            target.callbacks.append(self._resume)
            self._target = target

    def _resume_processed(self, target: Event) -> None:
        self._target = None
        if target._ok:
            self._step_send(target._value)
        else:
            target.defuse()
            self._step(target._value)


class Environment:
    """Owns the simulation clock and the event calendar."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active: Process | None = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active

    # -- factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- external hooks ------------------------------------------------
    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn()`` at absolute simulated time ``time``.

        The injection hook used by :mod:`repro.faults`: fault episodes
        are applied from inside the event calendar, so they interleave
        deterministically with regular simulation events (FIFO seq
        order at equal timestamps, like every other event).
        """
        if time < self._now:
            raise ValueError(f"call_at({time}) is in the past (now={self._now})")
        evt = Event(self)
        evt._triggered = True
        evt._ok = True
        evt.callbacks.append(lambda _e: fn())
        self._schedule(evt, delay=time - self._now)
        return evt

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn()`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn)

    # -- scheduling ----------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks or ():
            cb(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the calendar empties, a deadline, or an event fires.

        Returns the event's value when ``until`` is an :class:`Event`.
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before target event fired"
                    )
                self.step()
            if stop._ok:
                return stop._value
            stop.defuse()
            raise stop._value
        deadline = float("inf") if until is None else float(until)
        if deadline != float("inf") and deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        if deadline != float("inf"):
            self._now = deadline
        return None
