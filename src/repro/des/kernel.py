"""Discrete-event simulation kernel.

A small, deterministic, simpy-like engine.  Simulation *processes* are
Python generators that ``yield`` :class:`Event` objects; the
:class:`Environment` owns the event calendar and advances simulated time.

This kernel is the execution substrate for the simulated Viracocha
cluster (:mod:`repro.des.cluster`): everything the paper measured on a
24-CPU SUN Fire 6800 runs here as coroutines over a virtual clock, which
makes runtimes for 1..16 workers reproducible on a single host core.

Determinism rules:

* events scheduled at the same time fire in FIFO order of scheduling
  (a monotonically increasing sequence number breaks calendar ties);
* no wall-clock or OS randomness is consulted anywhere.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from sys import getrefcount
from collections.abc import Generator, Iterable
from typing import Any, Callable

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. triggering an event twice)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`, after which its callbacks run at the
    current simulation time.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool | None = None
        self._triggered = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        env = self.env
        env._imm.append(self)
        env._seq += 1
        return self

    def fail(self, exc: BaseException) -> "Event":
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = False
        self._value = exc
        env = self.env
        env._imm.append(self)
        env._seq += 1
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True


# Shared "pending, nobody listens yet" marker for Timeout.callbacks: an
# immutable stand-in for a fresh empty list.  ``None`` still means
# processed; appenders that find the marker swap in a real list first.
_NO_CALLBACKS: tuple = ()


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation.

    ``_proc`` is the lightweight fast path: when a process yields a
    fresh Timeout that nobody else listens to, the waiting process is
    stored here instead of appending a ``_resume`` bound method to
    ``callbacks``.  The run loop dispatches ``_proc`` directly — same
    FIFO position (the slot stands in for what would have been the
    first callback), no list iteration, no bound-method allocation.

    A Timeout is born triggered and can never fail, so ``_triggered``,
    ``_ok`` and ``_defused`` are class-level constants (they shadow the
    parent's slots; nothing ever writes them on a Timeout), saving
    three per-instance stores on the hottest allocation in the engine.
    """

    __slots__ = ("delay", "_proc")

    _triggered = True
    _ok = True
    _defused = False

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self.delay = delay
        self._proc = None
        env._schedule(self, delay=delay)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        self._count = 0
        if any(e.env is not env for e in self.events):
            raise SimulationError("events from different environments")
        if not self.events:
            self.succeed(self._collect())
            return
        for e in self.events:
            cbs = e.callbacks
            if cbs is None:  # already processed
                self._check(e)
            elif cbs.__class__ is tuple:  # shared _NO_CALLBACKS marker
                e.callbacks = [self._check]
            else:
                cbs.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {
            e: e._value for e in self.events if e.callbacks is None and e._ok
        }

    def _check(self, event: Event) -> None:
        if self._triggered:
            # The condition already fired, but later component failures
            # must still be marked handled or they would crash the run.
            if event._triggered and not event._ok:
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every component event has triggered."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self.events)


class AnyOf(_Condition):
    """Triggers when the first component event triggers."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class _Resume(Event):
    """Pre-triggered shim that resumes a process after a processed target.

    Replaces the closure-per-wait pattern: the callback is a shared
    module-level trampoline reading two slots, so waiting on an
    already-processed event allocates no closure cell.
    """

    __slots__ = ("process", "target")


def _resume_trampoline(event: "_Resume") -> None:
    event.process._resume_processed(event.target)


class _Hook(Event):
    """Pre-triggered shim carrying a zero-argument function for call_at.

    The shared trampoline replaces the lambda closure that used to be
    allocated per :meth:`Environment.call_at`.
    """

    __slots__ = ("fn",)


def _hook_trampoline(event: "_Hook") -> None:
    event.fn()


class Process(Event):
    """Wraps a generator; itself an event that triggers on completion.

    The generator yields :class:`Event` instances (including other
    processes).  When a yielded event fails and the failure is not
    handled by the generator, the process fails with the same exception.
    """

    __slots__ = ("_generator", "_send", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        # Bound once so each resume costs one slot load, not two
        # attribute lookups (``_generator`` then ``send``).
        self._send = generator.send
        self._target: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Inlined ``Event(env).succeed()`` minus the already-triggered
        # check: schedules the first _resume at the current time.
        init = Event(env)
        init._triggered = True
        init._ok = True
        init.callbacks.append(self._resume)
        env._imm.append(init)
        env._seq += 1

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        env = self.env

        def _do(_evt: Event) -> None:
            if self._triggered:
                return
            target = self._target
            if target is not None:
                if type(target) is Timeout and target._proc is self:
                    target._proc = None
                elif target.callbacks.__class__ is list:
                    try:
                        target.callbacks.remove(self._resume)
                    except ValueError:
                        pass
            self._target = None
            self._step(Interrupt(cause))

        hook = Event(env)
        hook.callbacks.append(_do)
        hook.succeed()

    # -- driving ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step_send(event._value)
        else:
            event.defuse()
            self._step(event._value)

    def _step_send(self, value: Any) -> None:
        env = self.env
        env._active = self
        try:
            target = self._send(value)
        except StopIteration as stop:
            env._active = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active = None
            self.fail(exc)
            return
        env._active = None
        self._wait(target)

    def _step(self, exc: BaseException) -> None:
        self.env._active = self
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            if err is exc and not isinstance(err, Interrupt):
                # Unhandled failure propagated out of the generator.
                self.fail(err)
            elif isinstance(err, StopIteration):  # pragma: no cover
                self.succeed(err.value)
            else:
                self.fail(err)
            return
        finally:
            self.env._active = None
        self._wait(target)

    def _wait(self, target: Any) -> None:
        if isinstance(target, Event) and target.env is self.env:
            cbs = target.callbacks
            if cbs is not None:
                # Fast path: a fresh Timeout nobody else listens to is
                # dispatched via its _proc slot (see Timeout docstring).
                if type(target) is Timeout and not cbs and target._proc is None:
                    target._proc = self
                elif cbs.__class__ is tuple:  # shared _NO_CALLBACKS marker
                    target.callbacks = [self._resume]
                else:
                    cbs.append(self._resume)
                self._target = target
            else:
                # Already fired; resume immediately (next scheduling slot)
                # via the shared trampoline instead of a per-wait closure.
                env = self.env
                resume = _Resume.__new__(_Resume)
                resume.env = env
                resume._value = None
                resume._ok = True
                resume._triggered = True
                resume._defused = False
                resume.process = self
                resume.target = target
                resume.callbacks = [_resume_trampoline]
                env._imm.append(resume)
                env._seq += 1
                self._target = target
            return
        if not isinstance(target, Event):
            self._step(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            ))
        else:
            self._step(SimulationError("yielded event from another environment"))

    def _resume_processed(self, target: Event) -> None:
        self._target = None
        if target._ok:
            self._step_send(target._value)
        else:
            target.defuse()
            self._step(target._value)


class Environment:
    """Owns the simulation clock and the event calendar."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        # The calendar: a list of ``(-time, -seq, event)`` kept sorted
        # (ascending), so the *next* event is at the tail.  Pops are
        # O(1) ``list.pop()``; pushes are a C-level ``bisect.insort``
        # whose memmove is short because most events are scheduled near
        # the current time (tail of the list).  The negated key gives
        # exactly the binary heap's total order — earliest time first,
        # FIFO by sequence number at equal times — so replacing the
        # heap cannot reorder any two events.
        self._queue: list[tuple[float, int, Event]] = []
        # The immediate lane: events scheduled with zero delay (succeed
        # chains, process inits, resumes — the bulk of real traffic).
        # Entries are bare events — no timestamp and no sequence
        # number.  Every immediate event fires at the *current*
        # ``_now``: appends happen at the append-time clock, and the
        # clock only advances from the far lane when this deque is
        # empty.  That same invariant settles equal-time ties without
        # comparing sequence numbers: a far event at exactly ``_now``
        # was necessarily scheduled before the clock reached ``_now``
        # (far inserts never land at the current time), hence before
        # every entry in this deque, so at equal times the far lane
        # always wins.  The deque is FIFO by construction, pops are
        # comparison-free O(1), and the merged order reproduces the
        # single-queue (time, seq) total order exactly.
        self._imm: deque[Event] = deque()
        self._seq = 0
        self._active: Process | None = None
        # Free list of processed Timeout shells for :meth:`timeout` to
        # recycle.  The run loop returns a just-dispatched Timeout here
        # only when ``getrefcount`` proves nothing else references it,
        # so user code that keeps a Timeout around is never affected.
        self._free: list[Timeout] = []

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active

    # -- factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # The single hottest allocation in a run: build the pre-triggered
        # Timeout directly (no chained __init__, no _schedule call).
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        free = self._free
        if free:
            t = free.pop()
        else:
            t = Timeout.__new__(Timeout)
            t.env = self
        t.callbacks = _NO_CALLBACKS
        t._value = value
        t.delay = delay
        t._proc = None
        seq = self._seq
        if delay == 0.0:
            self._imm.append(t)
        else:
            when = self._now + delay
            if when > self._now:
                insort(self._queue, (-when, -seq, t))
            else:
                # Tiny delay rounded away (now + delay == now): fires
                # immediately at the same (time, seq) slot the single
                # queue would have given it.  Keeping such events out of
                # the far lane also guarantees far inserts never land at
                # the current time, which the run loops rely on to cache
                # their equal-time tie check.
                self._imm.append(t)
        self._seq = seq + 1
        return t

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- external hooks ------------------------------------------------
    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn()`` at absolute simulated time ``time``.

        The injection hook used by :mod:`repro.faults`: fault episodes
        are applied from inside the event calendar, so they interleave
        deterministically with regular simulation events (FIFO seq
        order at equal timestamps, like every other event).
        """
        if time < self._now:
            raise ValueError(f"call_at({time}) is in the past (now={self._now})")
        evt = _Hook.__new__(_Hook)
        evt.env = self
        evt._value = None
        evt._ok = True
        evt._triggered = True
        evt._defused = False
        evt.fn = fn
        evt.callbacks = [_hook_trampoline]
        # ``now + (time - now)`` is not always bit-equal to ``time``;
        # keep the historical arithmetic so injection timestamps stay
        # byte-identical with the pre-fast-path kernel.
        when = self._now + (time - self._now)
        if when == self._now:
            self._imm.append(evt)
        else:
            insort(self._queue, (-when, -self._seq, evt))
        self._seq += 1
        return evt

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn()`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn)

    # -- scheduling ----------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay == 0.0:
            self._imm.append(event)
        else:
            when = self._now + delay
            if when > self._now:
                insort(self._queue, (-when, -self._seq, event))
            else:  # delay rounded away; see Environment.timeout
                self._imm.append(event)
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._imm:
            return self._now  # immediate events fire at the current time
        if self._queue:
            return -self._queue[-1][0]
        return float("inf")

    def _pop_next(self) -> tuple[float, Event]:
        """Remove and return the globally next ``(time, event)`` pair."""
        imm = self._imm
        queue = self._queue
        if imm:
            # A far event at exactly the current time always wins: it
            # was scheduled before the clock reached the current time
            # (see the ``_imm`` comment in ``__init__``).
            if queue and -queue[-1][0] == self._now:
                _nt, _ns, event = queue.pop()
                return self._now, event
            return self._now, imm.popleft()
        if queue:
            neg_ft, _neg_fs, event = queue.pop()
            return -neg_ft, event
        raise SimulationError("no more events")

    def step(self) -> None:
        """Process the single next event."""
        when, event = self._pop_next()
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if type(event) is Timeout:
            proc = event._proc
            if proc is not None:
                event._proc = None
                proc._target = None
                proc._step_send(event._value)
        for cb in callbacks or ():
            cb(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the calendar empties, a deadline, or an event fires.

        Returns the event's value when ``until`` is an :class:`Event`.

        The loop bodies inline :meth:`step` with the calendar localized,
        and fuse the Timeout fast path (pop → resume the
        waiting generator → re-wait on its next yield) into a single
        iteration: identical pop order, timestamps, and callback
        sequencing, minus several function calls and attribute lookups
        per event.
        """
        queue = self._queue
        imm = self._imm
        imm_popleft = imm.popleft
        free = self._free
        # Localize the names the dispatch body touches per event.
        timeout_cls = Timeout
        no_callbacks = _NO_CALLBACKS
        refcount = getrefcount
        if isinstance(until, Event):
            stop = until
            neg_now = -self._now
            # Far inserts never land at the current time (see
            # Environment.timeout), so the equal-time far-vs-imm tie
            # check only needs recomputing after a far pop.
            tie = bool(queue) and queue[-1][0] == neg_now
            while stop.callbacks is not None:  # not yet processed
                if imm:
                    # A far event at exactly the current time was
                    # scheduled before the clock reached it, so it
                    # precedes every immediate entry (rare tie).
                    if tie:
                        _nt, _ns, event = queue.pop()
                        tie = bool(queue) and queue[-1][0] == neg_now
                    else:
                        event = imm_popleft()
                elif queue:
                    neg_when, _ns, event = queue.pop()
                    self._now = -neg_when
                    neg_now = neg_when
                    tie = bool(queue) and queue[-1][0] == neg_now
                else:
                    self._active = None
                    raise SimulationError(
                        "simulation ran out of events before target event fired"
                    )
                callbacks = event.callbacks
                event.callbacks = None
                if type(event) is timeout_cls:
                    proc = event._proc
                    if proc is not None:
                        event._proc = None
                        proc._target = None
                        # ``_active`` is reset lazily: the next store
                        # (here, a callback site, or a loop exit)
                        # overwrites it before any non-process code
                        # can observe the value.
                        self._active = proc
                        try:
                            target = proc._send(event._value)
                        except StopIteration as result:
                            self._active = None
                            proc.succeed(result.value)
                        except BaseException as exc:
                            self._active = None
                            proc.fail(exc)
                        else:
                            if (type(target) is timeout_cls
                                    and target.callbacks is no_callbacks
                                    and target._proc is None
                                    and target.env is self):
                                target._proc = proc
                                proc._target = target
                            else:
                                self._active = None
                                proc._wait(target)
                    if callbacks:
                        self._active = None
                        for cb in callbacks:
                            cb(event)
                    elif len(free) < 256 and refcount(event) == 2:
                        # Only this frame references the shell: recycle.
                        free.append(event)
                    continue
                self._active = None
                if callbacks:
                    for cb in callbacks:
                        cb(event)
                if not event._ok and not event._defused:
                    raise event._value
            self._active = None
            if stop._ok:
                return stop._value
            stop.defuse()
            raise stop._value
        deadline = float("inf") if until is None else float(until)
        if deadline != float("inf") and deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        # The far lane is sorted by ascending (-time, -seq): the tail is
        # the next event, so ``time > deadline`` is ``key < -deadline``.
        # Immediate events fire at the current time, which the entry
        # check and the far-pop guard keep <= deadline, so only
        # time-advancing far pops need a deadline test.
        neg_deadline = -deadline
        neg_now = -self._now
        # See the until-Event loop for the tie-flag and lazy ``_active``
        # reset rationale; the two loops differ only in the stop test.
        tie = bool(queue) and queue[-1][0] == neg_now
        while True:
            if imm:
                # Far event at exactly the current time precedes every
                # immediate entry (rare tie; see the until-Event loop).
                if tie:
                    _nt, _ns, event = queue.pop()
                    tie = bool(queue) and queue[-1][0] == neg_now
                else:
                    event = imm_popleft()
            elif queue:
                neg_when = queue[-1][0]
                if neg_when < neg_deadline:
                    break
                _nt, _ns, event = queue.pop()
                self._now = -neg_when
                neg_now = neg_when
                tie = bool(queue) and queue[-1][0] == neg_now
            else:
                break
            callbacks = event.callbacks
            event.callbacks = None
            if type(event) is timeout_cls:
                proc = event._proc
                if proc is not None:
                    event._proc = None
                    proc._target = None
                    self._active = proc
                    try:
                        target = proc._send(event._value)
                    except StopIteration as result:
                        self._active = None
                        proc.succeed(result.value)
                    except BaseException as exc:
                        self._active = None
                        proc.fail(exc)
                    else:
                        if (type(target) is timeout_cls
                                and target.callbacks is no_callbacks
                                and target._proc is None
                                and target.env is self):
                            target._proc = proc
                            proc._target = target
                        else:
                            self._active = None
                            proc._wait(target)
                if callbacks:
                    self._active = None
                    for cb in callbacks:
                        cb(event)
                elif len(free) < 256 and refcount(event) == 2:
                    # Only this frame references the shell: recycle.
                    free.append(event)
                continue
            self._active = None
            if callbacks:
                for cb in callbacks:
                    cb(event)
            if not event._ok and not event._defused:
                raise event._value
        self._active = None
        if deadline != float("inf"):
            self._now = deadline
        return None
