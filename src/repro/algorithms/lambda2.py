"""λ2 vortex-region extraction (Jeong & Hussain).

"[The λ2 approach] determines the symmetric part S and anti-symmetric
part Q of the velocity gradient tensor at each grid location.
Thereafter, it computes the three eigenvalues of S² + Q², sorts them in
increasing order, and finally uses the second largest eigenvalue λ2 to
construct the scalar field for isosurface extraction.  Since vortex
regions are assumed where two eigenvalues are negative, λ2 about zero
is considered as vortex boundary." (§6.3)

Two operating modes mirror the paper's commands:

* :func:`lambda2_field` + isosurface — the batch VortexDataMan path,
  computing the whole scalar field first;
* :func:`iter_vortex_batches` — the StreamedVortex path, which "works
  on the original data set but avoids computing the complete λ2 scalar
  field first": it sweeps the block in slabs, computes λ2 only there,
  collects active cells and emits triangle batches as soon as a
  user-specified number accumulates.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..grids.block import StructuredBlock
from ..grids.geometry import velocity_gradient_tensor
from ..grids.multiblock import MultiBlockDataset
from ..viz.mesh import TriangleMesh
from .isosurface import extract_block_isosurface

__all__ = [
    "lambda2_points",
    "lambda2_field",
    "extract_block_vortices",
    "extract_vortices",
    "iter_vortex_batches",
]


def _middle_eigvalsh3(m: np.ndarray) -> np.ndarray:
    """Middle eigenvalue of symmetric 3x3 tensors ``(..., 3, 3)``.

    Closed-form trigonometric Cardano in the atan2 formulation: the
    discriminant's sine part is assembled directly from the
    characteristic-polynomial coefficients (instead of ``sqrt(1-r**2)``
    from a clipped cosine), which keeps double roots exact instead of
    splitting them by ``sqrt(eps)``.  A collapse guard snaps a pair
    whose computed gap is below 1e-5 relative — the magnitude rounding
    noise can fake for a true multiple root — onto its trace-derived
    center, which is accurate because the remaining isolated root is
    well-conditioned; a true gap that small is itself collapsed with
    error at most half the gap, negligible for a scalar field.
    One pass of elementwise arithmetic instead of a LAPACK call per
    tensor.
    """
    a00 = m[..., 0, 0]
    a11 = m[..., 1, 1]
    a22 = m[..., 2, 2]
    a01 = m[..., 0, 1]
    a02 = m[..., 0, 2]
    a12 = m[..., 1, 2]
    dd = a01 * a01
    ee = a12 * a12
    ff = a02 * a02
    tr = a00 + a11 + a22
    c1 = a00 * a11 + a00 * a22 + a11 * a22 - (dd + ee + ff)
    c0 = a22 * dd + a00 * ee + a11 * ff - a00 * a11 * a22 - 2.0 * a02 * a01 * a12
    p = tr * tr - 3.0 * c1
    q = tr * (p - 1.5 * c1) - 13.5 * c0
    sqrt_p = np.sqrt(np.abs(p))
    disc = 27.0 * (0.25 * c1 * c1 * (p - c1) + c0 * (q + 6.75 * c0))
    phi = np.arctan2(np.sqrt(np.abs(disc)), q) / 3.0
    c = sqrt_p * np.cos(phi)
    s = sqrt_p * np.sin(phi) / np.sqrt(3.0)
    base = (tr - c) / 3.0
    w_max = base + c
    w_mid = base + s
    w_min = base - s
    scale = np.maximum(np.abs(w_max), np.abs(w_min))
    tol = 1e-5 * scale
    lo_pair = w_mid - w_min <= tol
    hi_pair = w_max - w_mid <= tol
    mid = np.where(
        lo_pair,
        0.5 * (tr - w_max),  # lower pair degenerate: w_max is isolated
        np.where(hi_pair, 0.5 * (tr - w_min), w_mid),
    )
    # Triple root: no isolated partner to lean on; the trace is exact.
    return np.where(lo_pair & hi_pair, tr / 3.0, mid)


def lambda2_points(gradients: np.ndarray) -> np.ndarray:
    """λ2 from velocity-gradient tensors ``(..., 3, 3)``.

    Returns the middle (second largest) eigenvalue of S² + Q² per
    point, via the analytic symmetric-3x3 formula (pinned against
    ``np.linalg.eigvalsh`` by the test suite).
    """
    g = np.asarray(gradients, dtype=np.float64)
    s = 0.5 * (g + np.swapaxes(g, -1, -2))
    q = 0.5 * (g - np.swapaxes(g, -1, -2))
    m = s @ s + q @ q  # symmetric by construction
    return _middle_eigvalsh3(m)


def lambda2_field(block: StructuredBlock, velocity: str = "velocity") -> np.ndarray:
    """The full λ2 scalar field of one block, shape ``(ni, nj, nk)``."""
    return lambda2_points(velocity_gradient_tensor(block, velocity))


def extract_block_vortices(
    block: StructuredBlock,
    threshold: float = 0.0,
    velocity: str = "velocity",
    field_name: str = "lambda2",
) -> TriangleMesh:
    """Vortex boundary surface of one block at ``λ2 = threshold``.

    In practice "a value about zero is used to get more accurate
    regions" — slightly negative thresholds tighten the regions (§1.1).
    """
    work = block if block.has_field(field_name) else _with_lambda2(block, velocity, field_name)
    return extract_block_isosurface(work, field_name, threshold)


def _with_lambda2(
    block: StructuredBlock, velocity: str, field_name: str
) -> StructuredBlock:
    block.set_field(field_name, lambda2_field(block, velocity))
    return block


def extract_vortices(
    dataset: MultiBlockDataset,
    threshold: float = 0.0,
    velocity: str = "velocity",
) -> TriangleMesh:
    """Vortex boundaries of a whole time level (batch path)."""
    return TriangleMesh.merge(
        extract_block_vortices(b, threshold, velocity) for b in dataset
    )


def iter_vortex_batches(
    block: StructuredBlock,
    threshold: float = 0.0,
    velocity: str = "velocity",
    batch_cells: int = 256,
    slab_cells: int = 4,
) -> Iterator[tuple[TriangleMesh, int]]:
    """Streamed λ2 extraction: yields ``(fragment, cells_processed)``.

    Sweeps the block in i-slabs of ``slab_cells`` cells (each slab
    carries one ghost point layer so gradients are identical to the
    full-field computation in the slab interior), finds active cells,
    and emits a fragment whenever the pending active-cell list reaches
    ``batch_cells`` — the paper's "active cell list reaches a
    user-specified length" trigger.
    """
    if batch_cells < 1 or slab_cells < 1:
        raise ValueError("batch_cells and slab_cells must be >= 1")
    ni, nj, nk = block.shape
    ci = ni - 1
    pending: list[TriangleMesh] = []
    pending_cells = 0

    for i0 in range(0, ci, slab_cells):
        i1 = min(i0 + slab_cells, ci)
        # Slab of points with one-layer ghost margin for the gradient.
        g0 = max(i0 - 1, 0)
        g1 = min(i1 + 2, ni)
        sub = StructuredBlock(
            block.coords[g0:g1],
            {velocity: block.field(velocity)[g0:g1]},
            block_id=block.block_id,
            time_index=block.time_index,
        )
        sub.set_field("lambda2", lambda2_field(sub, velocity))
        # Cells of the slab, excluding ghost cells.
        lo = i0 - g0
        hi = lo + (i1 - i0)
        cj, ck = nj - 1, nk - 1
        slab_cell_ids = np.arange(lo * cj * ck, hi * cj * ck)
        mesh = extract_block_isosurface(
            sub, "lambda2", threshold, cell_indices=slab_cell_ids
        )
        pending_cells += (i1 - i0) * cj * ck
        if not mesh.is_empty():
            pending.append(mesh)
        if pending and pending_cells >= batch_cells:
            yield TriangleMesh.merge(pending), pending_cells
            pending = []
            pending_cells = 0
    if pending or pending_cells:
        merged = TriangleMesh.merge(pending)
        if not merged.is_empty() or pending_cells:
            yield merged, pending_cells
