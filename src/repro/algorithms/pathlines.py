"""Pathline (and streamline) integration on multi-block time series.

"The applied pathline computation scheme [...] utilizes Runge-Kutta
fourth order integration with adaptive step size control [...].  The
succeeding particle position is computed separately on adjacent time
levels and finally interpolated with respect to the elapsed time."
(§6.3, after [15])

The tracer is written against a *block request protocol*: whenever it
needs a block it does not hold locally, it ``yield``s a
:class:`BlockRequest` and is ``send()``-ed the block.  Driving the
generator from an in-memory dataset gives a plain serial tracer;
driving it from a data proxy inside the simulated cluster gives the
paper's DMS-backed command, whose block request stream is exactly what
the Markov prefetcher learns ("the data requests even of time-dependent
particle tracing can be predicted quite well").

The tracer holds only ``local_cache_blocks`` blocks (workers cannot pin
a 19.5 GB dataset); re-entering an evicted block re-requests it, which
produces the paper's "strongly varying block requirements".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Generator, Sequence

import numpy as np

from ..grids.block import BlockHandle, StructuredBlock
from ..grids.interpolate import CellLocator
from ..grids.multiblock import MultiBlockDataset, TimeSeries
from ..grids.topology import BlockTopology

__all__ = ["BlockRequest", "Pathline", "PathlineTracer", "trace_pathline"]


@dataclass(frozen=True)
class BlockRequest:
    """A tracer's demand for one block of one time level."""

    time_index: int
    block_id: int


@dataclass
class Pathline:
    """One integrated particle trace."""

    seed: np.ndarray
    points: np.ndarray  #: (n, 3)
    times: np.ndarray  #: (n,)
    termination: str  #: 'end_time' | 'left_domain' | 'max_steps' | 'stagnant'

    @property
    def n_points(self) -> int:
        return len(self.points)

    def length(self) -> float:
        if len(self.points) < 2:
            return 0.0
        return float(np.linalg.norm(np.diff(self.points, axis=0), axis=1).sum())


class _OutOfDomain(Exception):
    pass


class PathlineTracer:
    """RK4(adaptive) particle tracer over a multi-block time series."""

    def __init__(
        self,
        handles: Sequence[BlockHandle],
        times: Sequence[float],
        velocity: str = "velocity",
        rtol: float = 1e-4,
        h_initial: float | None = None,
        h_min_factor: float = 1e-3,
        h_max_factor: float = 0.5,
        max_steps: int = 2000,
        local_cache_blocks: int = 8,
    ):
        if len(times) < 1:
            raise ValueError("need at least one time level")
        if local_cache_blocks < 2:
            raise ValueError("local cache needs >= 2 blocks (two time levels)")
        self.topology = BlockTopology(handles)
        self.times = [float(t) for t in times]
        self.velocity = velocity
        self.rtol = rtol
        span = (self.times[-1] - self.times[0]) or 1.0
        self.h_initial = h_initial if h_initial is not None else span / 100.0
        self.h_min = h_min_factor * self.h_initial
        self.h_max = h_max_factor * span
        self.max_steps = max_steps
        self.local_cache_blocks = local_cache_blocks
        # Local state: bounded block cache + per-block locators.
        self._blocks: OrderedDict[tuple[int, int], StructuredBlock] = OrderedDict()
        self._locators: dict[tuple[int, int], CellLocator] = {}
        self._cell_hints: dict[int, tuple[int, int, int]] = {}
        self.request_log: list[BlockRequest] = []
        self.samples = 0  #: velocity samples taken (drives cost charging)

    # ------------------------------------------------------ block access
    def _map_request(self, time_index: int, block_id: int) -> BlockRequest:
        """Hook: translate a sampler demand into an emitted request
        (overridden by the steady-state streamline tracer)."""
        return BlockRequest(time_index, block_id)

    def _get_block(
        self, time_index: int, block_id: int
    ) -> Generator[BlockRequest, StructuredBlock, StructuredBlock]:
        key = (time_index, block_id)
        block = self._blocks.get(key)
        if block is not None:
            self._blocks.move_to_end(key)
            return block
        request = self._map_request(time_index, block_id)
        self.request_log.append(request)
        block = yield request
        if block is None:
            raise _OutOfDomain(f"no data for {request}")
        self._blocks[key] = block
        self._locators[key] = CellLocator(block)
        while len(self._blocks) > self.local_cache_blocks:
            old_key, _ = self._blocks.popitem(last=False)
            del self._locators[old_key]
        return block

    def _sample_level(
        self, point: np.ndarray, time_index: int
    ) -> Generator[BlockRequest, StructuredBlock, np.ndarray]:
        """Velocity at ``point`` on frozen time level ``time_index``."""
        self.samples += 1
        candidates = []
        hint_bid = None
        # Try the block that contained the particle last (cheap walk).
        for bid, hint in list(self._cell_hints.items()):
            candidates.append((bid, hint))
            hint_bid = bid
            break
        for bid in self.topology.candidates(point):
            if bid != hint_bid:
                candidates.append((bid, self._cell_hints.get(bid)))
        for bid, hint in candidates:
            block = yield from self._get_block(time_index, bid)
            locator = self._locators[(time_index, bid)]
            found = locator.locate(point, hint=hint)
            if found is None and hint is not None:
                found = locator.locate(point)
            if found is not None:
                cell, rst = found
                self._cell_hints.clear()
                self._cell_hints[bid] = cell
                return np.asarray(locator.interpolate(self.velocity, cell, rst))
        raise _OutOfDomain(f"point {point} outside all blocks")

    # -------------------------------------------------------- integration
    def _rk4_level(
        self, x: np.ndarray, h: float, time_index: int
    ) -> Generator[BlockRequest, StructuredBlock, np.ndarray]:
        """One classical RK4 step on a frozen time level."""
        k1 = yield from self._sample_level(x, time_index)
        k2 = yield from self._sample_level(x + 0.5 * h * k1, time_index)
        k3 = yield from self._sample_level(x + 0.5 * h * k2, time_index)
        k4 = yield from self._sample_level(x + h * k3, time_index)
        return x + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)

    def _step(
        self, x: np.ndarray, t: float, h: float
    ) -> Generator[BlockRequest, StructuredBlock, np.ndarray]:
        """Advance by ``h``: separate steps on both bracketing levels,
        then interpolate with respect to the elapsed time (paper §6.3)."""
        lo, hi, _w = _bracket(self.times, t)
        x_lo = yield from self._rk4_level(x, h, lo)
        if hi == lo:
            return x_lo
        x_hi = yield from self._rk4_level(x, h, hi)
        _, _, w_end = _bracket(self.times, t + h)
        # Weight of the upper level at the *end* of the step; if the step
        # crossed into the next bracket, clamp to pure upper level.
        if t + h >= self.times[hi]:
            w_end = 1.0
        elif _bracket(self.times, t + h)[0] != lo:
            w_end = 1.0
        return (1.0 - w_end) * x_lo + w_end * x_hi

    def trace(
        self,
        seed: np.ndarray,
        t_start: float | None = None,
        t_end: float | None = None,
    ) -> Generator[BlockRequest, StructuredBlock, Pathline]:
        """Generator protocol: yields block requests, returns a Pathline."""
        seed = np.asarray(seed, dtype=np.float64)
        t0 = self.times[0] if t_start is None else float(t_start)
        t1 = self.times[-1] if t_end is None else float(t_end)
        if t1 <= t0:
            raise ValueError(f"t_end ({t1}) must exceed t_start ({t0})")
        self._cell_hints.clear()
        points = [seed.copy()]
        times = [t0]
        x, t = seed.copy(), t0
        h = min(self.h_initial, t1 - t0)
        termination = "max_steps"
        for _ in range(self.max_steps):
            try:
                x_new = yield from self._adaptive_step(x, t, h)
                x, result_h = x_new
            except _OutOfDomain:
                termination = "left_domain"
                break
            t += result_h
            points.append(x.copy())
            times.append(t)
            h = min(self._next_h, self.h_max, max(t1 - t, self.h_min))
            if t >= t1 - 1e-12:
                termination = "end_time"
                break
            if np.linalg.norm(points[-1] - points[-2]) < 1e-14:
                termination = "stagnant"
                break
        return Pathline(
            seed=seed,
            points=np.asarray(points),
            times=np.asarray(times),
            termination=termination,
        )

    def _adaptive_step(
        self, x: np.ndarray, t: float, h: float
    ) -> Generator[BlockRequest, StructuredBlock, tuple[np.ndarray, float]]:
        """Step doubling: compare one h-step against two h/2-steps."""
        scale = max(float(np.linalg.norm(x)), 1.0)
        while True:
            x_full = yield from self._step(x, t, h)
            x_half = yield from self._step(x, t, 0.5 * h)
            x_half2 = yield from self._step(x_half, t + 0.5 * h, 0.5 * h)
            err = float(np.linalg.norm(x_full - x_half2)) / scale
            if err <= self.rtol or h <= self.h_min * (1 + 1e-9):
                # Accept the more accurate two-half-step result.
                if err < self.rtol / 32.0:
                    self._next_h = min(2.0 * h, self.h_max)
                else:
                    self._next_h = h
                return x_half2, h
            h = max(0.5 * h, self.h_min)

    _next_h: float = 0.0

    # -------------------------------------------------------- convenience
    def reset_cache(self) -> None:
        self._blocks.clear()
        self._locators.clear()
        self._cell_hints.clear()
        self.request_log.clear()
        self.samples = 0


def _bracket(times: list[float], t: float) -> tuple[int, int, float]:
    if t <= times[0]:
        return 0, 0, 0.0
    if t >= times[-1]:
        n = len(times) - 1
        return n, n, 0.0
    hi = int(np.searchsorted(times, t, side="right"))
    lo = hi - 1
    return lo, hi, (t - times[lo]) / (times[hi] - times[lo])


def trace_pathline(
    series: TimeSeries,
    seed: np.ndarray,
    t_start: float | None = None,
    t_end: float | None = None,
    **tracer_kwargs,
) -> Pathline:
    """Serial convenience wrapper: drive the tracer from a TimeSeries."""
    level0 = series.level(0)
    handles = level0.handles()
    tracer = PathlineTracer(handles, series.times, **tracer_kwargs)
    gen = tracer.trace(seed, t_start, t_end)
    try:
        request = next(gen)
        while True:
            block = series.level(request.time_index)[request.block_id]
            request = gen.send(block)
    except StopIteration as stop:
        return stop.value
