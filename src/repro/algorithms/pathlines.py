"""Pathline (and streamline) integration on multi-block time series.

"The applied pathline computation scheme [...] utilizes Runge-Kutta
fourth order integration with adaptive step size control [...].  The
succeeding particle position is computed separately on adjacent time
levels and finally interpolated with respect to the elapsed time."
(§6.3, after [15])

The tracer is written against a *block request protocol*: whenever it
needs a block it does not hold locally, it ``yield``s a
:class:`BlockRequest` and is ``send()``-ed the block.  Driving the
generator from an in-memory dataset gives a plain serial tracer;
driving it from a data proxy inside the simulated cluster gives the
paper's DMS-backed command, whose block request stream is exactly what
the Markov prefetcher learns ("the data requests even of time-dependent
particle tracing can be predicted quite well").

The tracer holds only ``local_cache_blocks`` blocks (workers cannot pin
a 19.5 GB dataset); re-entering an evicted block re-requests it, which
produces the paper's "strongly varying block requirements".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Generator, Sequence

import numpy as np

from ..grids.block import BlockHandle, StructuredBlock
from ..grids.interpolate import CellLocator
from ..grids.multiblock import MultiBlockDataset, TimeSeries
from ..grids.topology import BlockTopology

__all__ = [
    "BlockRequest",
    "Pathline",
    "PathlineTracer",
    "BatchPathlineTracer",
    "trace_pathline",
    "trace_pathlines",
]


@dataclass(frozen=True)
class BlockRequest:
    """A tracer's demand for one block of one time level."""

    time_index: int
    block_id: int


@dataclass
class Pathline:
    """One integrated particle trace."""

    seed: np.ndarray
    points: np.ndarray  #: (n, 3)
    times: np.ndarray  #: (n,)
    termination: str  #: 'end_time' | 'left_domain' | 'max_steps' | 'stagnant'

    @property
    def n_points(self) -> int:
        return len(self.points)

    def length(self) -> float:
        if len(self.points) < 2:
            return 0.0
        return float(np.linalg.norm(np.diff(self.points, axis=0), axis=1).sum())


class _OutOfDomain(Exception):
    pass


class PathlineTracer:
    """RK4(adaptive) particle tracer over a multi-block time series."""

    def __init__(
        self,
        handles: Sequence[BlockHandle],
        times: Sequence[float],
        velocity: str = "velocity",
        rtol: float = 1e-4,
        h_initial: float | None = None,
        h_min_factor: float = 1e-3,
        h_max_factor: float = 0.5,
        max_steps: int = 2000,
        local_cache_blocks: int = 8,
    ):
        if len(times) < 1:
            raise ValueError("need at least one time level")
        if local_cache_blocks < 2:
            raise ValueError("local cache needs >= 2 blocks (two time levels)")
        self.topology = BlockTopology(handles)
        self.times = [float(t) for t in times]
        self.velocity = velocity
        self.rtol = rtol
        span = (self.times[-1] - self.times[0]) or 1.0
        self.h_initial = h_initial if h_initial is not None else span / 100.0
        self.h_min = h_min_factor * self.h_initial
        self.h_max = h_max_factor * span
        self.max_steps = max_steps
        self.local_cache_blocks = local_cache_blocks
        # Local state: bounded block cache + per-block locators.
        self._blocks: OrderedDict[tuple[int, int], StructuredBlock] = OrderedDict()
        self._locators: dict[tuple[int, int], CellLocator] = {}
        self._cell_hints: dict[int, tuple[int, int, int]] = {}
        self.request_log: list[BlockRequest] = []
        self.samples = 0  #: velocity samples taken (drives cost charging)

    # ------------------------------------------------------ block access
    def _map_request(self, time_index: int, block_id: int) -> BlockRequest:
        """Hook: translate a sampler demand into an emitted request
        (overridden by the steady-state streamline tracer)."""
        return BlockRequest(time_index, block_id)

    def _get_block(
        self, time_index: int, block_id: int
    ) -> Generator[BlockRequest, StructuredBlock, StructuredBlock]:
        key = (time_index, block_id)
        block = self._blocks.get(key)
        if block is not None:
            self._blocks.move_to_end(key)
            return block
        request = self._map_request(time_index, block_id)
        self.request_log.append(request)
        block = yield request
        if block is None:
            raise _OutOfDomain(f"no data for {request}")
        self._blocks[key] = block
        self._locators[key] = CellLocator(block)
        while len(self._blocks) > self.local_cache_blocks:
            old_key, _ = self._blocks.popitem(last=False)
            del self._locators[old_key]
        return block

    def _sample_level(
        self, point: np.ndarray, time_index: int
    ) -> Generator[BlockRequest, StructuredBlock, np.ndarray]:
        """Velocity at ``point`` on frozen time level ``time_index``."""
        self.samples += 1
        candidates = []
        hint_bid = None
        # Try the block that contained the particle last (cheap walk).
        for bid, hint in list(self._cell_hints.items()):
            candidates.append((bid, hint))
            hint_bid = bid
            break
        for bid in self.topology.candidates(point):
            if bid != hint_bid:
                candidates.append((bid, self._cell_hints.get(bid)))
        for bid, hint in candidates:
            block = yield from self._get_block(time_index, bid)
            locator = self._locators[(time_index, bid)]
            found = locator.locate(point, hint=hint)
            if found is None and hint is not None:
                found = locator.locate(point)
            if found is not None:
                cell, rst = found
                self._cell_hints.clear()
                self._cell_hints[bid] = cell
                return np.asarray(locator.interpolate(self.velocity, cell, rst))
        raise _OutOfDomain(f"point {point} outside all blocks")

    # -------------------------------------------------------- integration
    def _rk4_level(
        self, x: np.ndarray, h: float, time_index: int
    ) -> Generator[BlockRequest, StructuredBlock, np.ndarray]:
        """One classical RK4 step on a frozen time level."""
        k1 = yield from self._sample_level(x, time_index)
        k2 = yield from self._sample_level(x + 0.5 * h * k1, time_index)
        k3 = yield from self._sample_level(x + 0.5 * h * k2, time_index)
        k4 = yield from self._sample_level(x + h * k3, time_index)
        return x + (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)

    def _step(
        self, x: np.ndarray, t: float, h: float
    ) -> Generator[BlockRequest, StructuredBlock, np.ndarray]:
        """Advance by ``h``: separate steps on both bracketing levels,
        then interpolate with respect to the elapsed time (paper §6.3)."""
        lo, hi, _w = _bracket(self.times, t)
        x_lo = yield from self._rk4_level(x, h, lo)
        if hi == lo:
            return x_lo
        x_hi = yield from self._rk4_level(x, h, hi)
        lo_end, _, w_end = _bracket(self.times, t + h)
        # Weight of the upper level at the *end* of the step; if the step
        # crossed into the next bracket, clamp to pure upper level.
        if t + h >= self.times[hi] or lo_end != lo:
            w_end = 1.0
        return (1.0 - w_end) * x_lo + w_end * x_hi

    def trace(
        self,
        seed: np.ndarray,
        t_start: float | None = None,
        t_end: float | None = None,
    ) -> Generator[BlockRequest, StructuredBlock, Pathline]:
        """Generator protocol: yields block requests, returns a Pathline."""
        seed = np.asarray(seed, dtype=np.float64)
        t0 = self.times[0] if t_start is None else float(t_start)
        t1 = self.times[-1] if t_end is None else float(t_end)
        if t1 <= t0:
            raise ValueError(f"t_end ({t1}) must exceed t_start ({t0})")
        self._cell_hints.clear()
        points = [seed.copy()]
        times = [t0]
        x, t = seed.copy(), t0
        h = min(self.h_initial, t1 - t0)
        termination = "max_steps"
        for _ in range(self.max_steps):
            try:
                x_new = yield from self._adaptive_step(x, t, h)
                x, result_h = x_new
            except _OutOfDomain:
                termination = "left_domain"
                break
            t += result_h
            points.append(x.copy())
            times.append(t)
            h = min(self._next_h, self.h_max, max(t1 - t, self.h_min))
            if t >= t1 - 1e-12:
                termination = "end_time"
                break
            if np.linalg.norm(points[-1] - points[-2]) < 1e-14:
                termination = "stagnant"
                break
        return Pathline(
            seed=seed,
            points=np.asarray(points),
            times=np.asarray(times),
            termination=termination,
        )

    def _adaptive_step(
        self, x: np.ndarray, t: float, h: float
    ) -> Generator[BlockRequest, StructuredBlock, tuple[np.ndarray, float]]:
        """Step doubling: compare one h-step against two h/2-steps."""
        scale = max(float(np.linalg.norm(x)), 1.0)
        while True:
            x_full = yield from self._step(x, t, h)
            x_half = yield from self._step(x, t, 0.5 * h)
            x_half2 = yield from self._step(x_half, t + 0.5 * h, 0.5 * h)
            err = float(np.linalg.norm(x_full - x_half2)) / scale
            if err <= self.rtol or h <= self.h_min * (1 + 1e-9):
                # Accept the more accurate two-half-step result.
                if err < self.rtol / 32.0:
                    self._next_h = min(2.0 * h, self.h_max)
                else:
                    self._next_h = h
                return x_half2, h
            h = max(0.5 * h, self.h_min)

    _next_h: float = 0.0

    # -------------------------------------------------------- convenience
    def reset_cache(self) -> None:
        self._blocks.clear()
        self._locators.clear()
        self._cell_hints.clear()
        self.request_log.clear()
        self.samples = 0


# ------------------------------------------------------------------ batched
#
# Cash-Karp embedded Runge-Kutta 4(5) tableau.  The fifth-order solution
# advances the particles; the difference against the embedded
# fourth-order solution gives the step error directly, replacing the
# scalar tracer's step doubling (three full RK4 evaluations = 12
# velocity samples per level per accepted step) with 6 samples per
# level per attempt — the same ``rtol`` contract at roughly a third of
# the sampling cost.
_CK_A = (
    (),
    (1.0 / 5.0,),
    (3.0 / 40.0, 9.0 / 40.0),
    (3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0),
    (-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0),
    (
        1631.0 / 55296.0,
        175.0 / 512.0,
        575.0 / 13824.0,
        44275.0 / 110592.0,
        253.0 / 4096.0,
    ),
)
_CK_B5 = (37.0 / 378.0, 0.0, 250.0 / 621.0, 125.0 / 594.0, 0.0, 512.0 / 1771.0)
_CK_B4 = (
    2825.0 / 27648.0,
    0.0,
    18575.0 / 48384.0,
    13525.0 / 55296.0,
    277.0 / 14336.0,
    1.0 / 4.0,
)


class BatchPathlineTracer(PathlineTracer):
    """Vectorized multi-particle tracer with coalesced block requests.

    Particle state lives in structure-of-arrays form (positions, times,
    per-particle step sizes, alive masks); every super-step advances all
    live particles together through one embedded RK45 (Cash-Karp)
    attempt per bracketing time level, using the batch kernels of
    :class:`~repro.grids.interpolate.CellLocator`.

    Block demands are *coalesced*: within a super-step each missing
    ``(time level, block)`` pair is requested exactly once no matter how
    many particles need it, which cuts DMS round trips and keeps the
    request stream compact and Markov-learnable.  ``request_triggers``
    records which particle first demanded each emitted request and
    ``demand_log`` the per-particle block-entry streams, so tests can
    assert that coalescing preserves every particle's request order.

    The scalar :class:`PathlineTracer` remains the reference
    implementation; equivalence (same trajectories within tolerance,
    same termination labels) is pinned by the test suite.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: particle index that first demanded each emitted request
        #: (parallel to ``request_log``).
        self.request_triggers: list[int] = []
        #: per-particle block-entry stream, consecutive-deduplicated:
        #: ``demand_log[pid]`` lists ``(time_index, block_id)`` pairs.
        self.demand_log: dict[int, list[tuple[int, int]]] = {}
        #: per-particle walk hints: pid -> (block_id, cell).
        self._hints: dict[int, tuple[int, tuple[int, int, int]]] = {}
        #: effective LRU capacity; grown by :meth:`trace_many` so the
        #: cache covers the batch's super-step working set (memory is
        #: proportional to batch size, as for any batched algorithm).
        self._cache_cap = self.local_cache_blocks

    # ------------------------------------------------------ block access
    def _get_block_batch(
        self, time_index: int, block_id: int, trigger: int
    ) -> Generator[BlockRequest, StructuredBlock, StructuredBlock | None]:
        """Like :meth:`_get_block` but coalescing-aware: a miss emits one
        request (tagged with the triggering particle); a ``None`` answer
        means the block holds no data and is reported to the caller
        instead of aborting the whole batch."""
        key = (time_index, block_id)
        block = self._blocks.get(key)
        if block is not None:
            self._blocks.move_to_end(key)
            return block
        request = self._map_request(time_index, block_id)
        self.request_log.append(request)
        self.request_triggers.append(int(trigger))
        self._demand(trigger, time_index, block_id)
        block = yield request
        if block is None:
            return None
        self._blocks[key] = block
        self._locators[key] = CellLocator(block)
        while len(self._blocks) > self._cache_cap:
            old_key, _ = self._blocks.popitem(last=False)
            del self._locators[old_key]
        return block

    def _demand(self, pid: int, time_index: int, block_id: int) -> None:
        log = self.demand_log.setdefault(int(pid), [])
        entry = (int(time_index), int(block_id))
        if not log or log[-1] != entry:
            log.append(entry)

    # ---------------------------------------------------------- sampling
    def _sample_many(
        self, points: np.ndarray, time_indices: np.ndarray, pids: np.ndarray
    ) -> Generator[BlockRequest, StructuredBlock, tuple[np.ndarray, np.ndarray]]:
        """Velocity for a batch of points on (per-point) frozen levels.

        Returns ``(velocities, ok)``; rows with ``ok`` False lie outside
        every block (the particle left the domain).  Points are grouped
        by candidate block so each needed block is touched — and, on a
        cache miss, requested — once per group, then located and
        interpolated with one vectorized call.
        """
        m = len(points)
        self.samples += m
        vel = np.zeros((m, 3))
        ok = np.zeros(m, dtype=bool)
        if m == 0:
            return vel, ok
        # Candidate lists are built lazily: a row whose walk hint
        # succeeds (the common case once particles are settled) never
        # pays for the bbox scan.  Hinted rows start with just their
        # hint block and fall back to the scan only if it fails.
        cand: list[list[int]] = [[] for _ in range(m)]
        no_hint: list[int] = []
        hint_only: set[int] = set()
        for row in range(m):
            hint = self._hints.get(int(pids[row]))
            if hint is not None:
                cand[row] = [hint[0]]
                hint_only.add(row)
            else:
                no_hint.append(row)
        if no_hint:
            for row, lst in zip(
                no_hint, self.topology.candidates_many(points[no_hint])
            ):
                cand[row] = lst
        rank = [0] * m
        pending = [row for row in range(m) if cand[row]]
        while pending:
            groups: dict[tuple[int, int], list[int]] = {}
            for row in pending:
                key = (int(time_indices[row]), cand[row][rank[row]])
                groups.setdefault(key, []).append(row)
            retry: list[int] = []
            expand: list[int] = []
            for (ti, bid), rows in groups.items():
                block = yield from self._get_block_batch(ti, bid, pids[rows[0]])
                if block is None:
                    failed = rows
                else:
                    locator = self._locators[(ti, bid)]
                    rows_arr = np.asarray(rows)
                    hints = []
                    for r in rows:
                        hint = self._hints.get(int(pids[r]))
                        hints.append(
                            hint[1] if hint is not None and hint[0] == bid else None
                        )
                    cells, rst = locator.locate_many(points[rows_arr], hints=hints)
                    found = cells[:, 0] >= 0
                    if found.any():
                        frows = rows_arr[found]
                        vel[frows] = locator.interpolate_many(
                            self.velocity, cells[found], rst[found]
                        )
                        ok[frows] = True
                        for r, cell in zip(frows, cells[found]):
                            pid = int(pids[r])
                            self._hints[pid] = (
                                bid,
                                (int(cell[0]), int(cell[1]), int(cell[2])),
                            )
                            self._demand(pid, ti, bid)
                    failed = [int(r) for r in rows_arr[~found]]
                for r in failed:
                    rank[r] += 1
                    if rank[r] < len(cand[r]):
                        retry.append(r)
                    elif r in hint_only:
                        expand.append(r)
            if expand:
                # Hinted rows whose hint block failed: do the deferred
                # bbox scan now (one vectorized call for all of them).
                for row, lst in zip(
                    expand, self.topology.candidates_many(points[expand])
                ):
                    hint_only.discard(row)
                    hint_block = cand[row][0]
                    cand[row].extend(b for b in lst if b != hint_block)
                    if rank[row] < len(cand[row]):
                        retry.append(row)
            pending = retry
        return vel, ok

    # -------------------------------------------------------- integration
    def _rk45_level(
        self, x: np.ndarray, hs: np.ndarray, time_indices: np.ndarray, pids: np.ndarray
    ) -> Generator[BlockRequest, StructuredBlock, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """One embedded RK45 attempt for all rows on frozen (per-row)
        time levels; returns ``(x5, x4, ok)``."""
        m = len(x)
        k = np.zeros((6, m, 3))
        ok = np.ones(m, dtype=bool)
        for s in range(6):
            rows = np.nonzero(ok)[0]
            if rows.size == 0:
                break
            y = x[rows].copy()
            for j, a in enumerate(_CK_A[s]):
                if a:
                    y += (hs[rows] * a)[:, None] * k[j][rows]
            v, sok = yield from self._sample_many(
                y, time_indices[rows], pids[rows]
            )
            k[s][rows[sok]] = v[sok]
            ok[rows[~sok]] = False
        x5 = x.copy()
        x4 = x.copy()
        for j in range(6):
            if _CK_B5[j]:
                x5 += (hs * _CK_B5[j])[:, None] * k[j]
            if _CK_B4[j]:
                x4 += (hs * _CK_B4[j])[:, None] * k[j]
        return x5, x4, ok

    def trace_many(
        self,
        seeds: np.ndarray,
        t_start: "float | np.ndarray | None" = None,
        t_end: float | None = None,
    ) -> Generator[BlockRequest, StructuredBlock, list[Pathline]]:
        """Generator protocol: yields coalesced block requests, returns
        one :class:`Pathline` per seed (in seed order).

        ``t_start`` may be a scalar (all particles released together) or
        one release time per seed (the streakline case).
        """
        seeds = np.asarray(seeds, dtype=np.float64).reshape(-1, 3)
        n = len(seeds)
        t1 = self.times[-1] if t_end is None else float(t_end)
        if t_start is None:
            t0 = np.full(n, self.times[0])
        else:
            t0 = np.broadcast_to(
                np.asarray(t_start, dtype=np.float64), (n,)
            ).copy()
        if n and t1 <= t0.max():
            raise ValueError(f"t_end ({t1}) must exceed t_start ({t0.max()})")
        self._hints.clear()
        # Hold the batch's super-step working set: each particle touches
        # at most its own block on the two bracketing time levels (plus
        # RK stage excursions into neighbors).  Without this the batch
        # thrashes a per-particle-sized LRU and re-demands every block
        # each super-step.
        self._cache_cap = max(self.local_cache_blocks, 4 * n)
        x = seeds.copy()
        t = t0.copy()
        h = np.minimum(self.h_initial, t1 - t)
        alive = np.ones(n, dtype=bool)
        termination = ["max_steps"] * n
        steps = np.zeros(n, dtype=np.int64)
        points: list[list[np.ndarray]] = [[seeds[i].copy()] for i in range(n)]
        times_out: list[list[float]] = [[float(t0[i])] for i in range(n)]
        time_axis = np.asarray(self.times)
        while alive.any():
            idx = np.nonzero(alive)[0]
            xa, ta, ha = x[idx], t[idx], h[idx]
            lo, hi, _w = _bracket_many(time_axis, ta)
            # A particle sitting exactly on the first time level still
            # steps *into* the first bracket: open it so the attempt
            # sees both levels (the scalar tracer reaches the upper
            # level through its half-step samples at t + h/2).
            expand = (hi == lo) & (lo < len(time_axis) - 1)
            hi = np.where(expand, lo + 1, hi)
            # Cap each attempt at one bracket past the upper level: the
            # two-level scheme only sees the bracketing velocities, so a
            # step spanning several levels would integrate stale data.
            last = len(time_axis) - 1
            cap = np.where(
                hi < last, time_axis[np.minimum(hi + 1, last)] - ta, np.inf
            )
            ha = np.minimum(ha, np.maximum(cap, self.h_min))
            x5, x4, ok = yield from self._rk45_level(xa, ha, lo, idx)
            err_time = np.zeros(len(idx))
            two = (hi != lo) & ok
            if two.any():
                rows = np.nonzero(two)[0]
                x5_hi, x4_hi, ok2 = yield from self._rk45_level(
                    xa[rows], ha[rows], hi[rows], idx[rows]
                )
                ok[rows] &= ok2
                rows = rows[ok2]
                if rows.size:
                    good = np.nonzero(ok2)[0]
                    # Interpolate "with respect to the elapsed time"
                    # (paper §6.3) at the step *midpoint*, which is
                    # second-order for the piecewise-linear-in-time
                    # field; clamp to the pure upper level once the
                    # midpoint reaches it or the step leaves the bracket.
                    t_mid = ta[rows] + 0.5 * ha[rows]
                    lo2, _hi2, w = _bracket_many(time_axis, t_mid)
                    w = w.copy()
                    w[t_mid >= time_axis[hi[rows]]] = 1.0
                    w[lo2 != lo[rows]] = 1.0
                    level_gap = np.linalg.norm(
                        x5_hi[good] - x5[rows], axis=1
                    )
                    span = time_axis[hi[rows]] - time_axis[lo[rows]]
                    err_time[rows] = level_gap * (ha[rows] / span) ** 2 / 8.0
                    blend = w[:, None]
                    x5[rows] = (1.0 - blend) * x5[rows] + blend * x5_hi[good]
                    x4[rows] = (1.0 - blend) * x4[rows] + blend * x4_hi[good]
            if (~ok).any():
                for i in idx[~ok]:
                    termination[i] = "left_domain"
                    alive[i] = False
            scale = np.maximum(np.linalg.norm(xa, axis=1), 1.0)
            err = (np.linalg.norm(x5 - x4, axis=1) + err_time) / scale
            accept = ok & ((err <= self.rtol) | (ha <= self.h_min * (1 + 1e-9)))
            reject = ok & ~accept
            if reject.any():
                h[idx[reject]] = np.maximum(0.5 * ha[reject], self.h_min)
            rows = np.nonzero(accept)[0]
            if rows.size == 0:
                continue
            gidx = idx[rows]
            x_new = x5[rows]
            t_new = ta[rows] + ha[rows]
            moved = np.linalg.norm(x_new - xa[rows], axis=1)
            e = np.maximum(err[rows], 1e-300)
            fac = np.clip(0.9 * (self.rtol / e) ** 0.2, 1.0, 5.0)
            h_new = np.minimum(
                np.minimum(ha[rows] * fac, self.h_max),
                np.maximum(t1 - t_new, self.h_min),
            )
            x[gidx] = x_new
            t[gidx] = t_new
            h[gidx] = h_new
            steps[gidx] += 1
            for local, i in enumerate(gidx):
                points[i].append(x_new[local].copy())
                times_out[i].append(float(t_new[local]))
                if t_new[local] >= t1 - 1e-12:
                    termination[i] = "end_time"
                    alive[i] = False
                elif moved[local] < 1e-14:
                    termination[i] = "stagnant"
                    alive[i] = False
                elif steps[i] >= self.max_steps:
                    alive[i] = False  # termination stays "max_steps"
        return [
            Pathline(
                seed=seeds[i].copy(),
                points=np.asarray(points[i]),
                times=np.asarray(times_out[i]),
                termination=termination[i],
            )
            for i in range(n)
        ]

    # -------------------------------------------------------- convenience
    def reset_cache(self) -> None:
        super().reset_cache()
        self.request_triggers.clear()
        self.demand_log.clear()
        self._hints.clear()


def _bracket_many(
    times: np.ndarray, t: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`_bracket` over an array of query times."""
    t = np.asarray(t, dtype=np.float64)
    n = len(times) - 1
    hi = np.searchsorted(times, t, side="right")
    lo = np.clip(hi - 1, 0, n)
    hi = np.clip(hi, 0, n)
    below = t <= times[0]
    lo[below] = 0
    hi[below] = 0
    above = t >= times[-1]
    lo[above] = n
    hi[above] = n
    span = times[hi] - times[lo]
    with np.errstate(invalid="ignore", divide="ignore"):
        w = np.where(hi > lo, (t - times[lo]) / np.where(span != 0, span, 1.0), 0.0)
    return lo, hi, w


def _bracket(times: list[float], t: float) -> tuple[int, int, float]:
    if t <= times[0]:
        return 0, 0, 0.0
    if t >= times[-1]:
        n = len(times) - 1
        return n, n, 0.0
    hi = int(np.searchsorted(times, t, side="right"))
    lo = hi - 1
    return lo, hi, (t - times[lo]) / (times[hi] - times[lo])


def trace_pathline(
    series: TimeSeries,
    seed: np.ndarray,
    t_start: float | None = None,
    t_end: float | None = None,
    **tracer_kwargs,
) -> Pathline:
    """Serial convenience wrapper: drive the tracer from a TimeSeries."""
    level0 = series.level(0)
    handles = level0.handles()
    tracer = PathlineTracer(handles, series.times, **tracer_kwargs)
    gen = tracer.trace(seed, t_start, t_end)
    try:
        request = next(gen)
        while True:
            block = series.level(request.time_index)[request.block_id]
            request = gen.send(block)
    except StopIteration as stop:
        return stop.value


def trace_pathlines(
    series: TimeSeries,
    seeds: np.ndarray,
    t_start: "float | np.ndarray | None" = None,
    t_end: float | None = None,
    **tracer_kwargs,
) -> list[Pathline]:
    """Serial convenience wrapper: batch-trace many seeds from a TimeSeries."""
    level0 = series.level(0)
    handles = level0.handles()
    tracer = BatchPathlineTracer(handles, series.times, **tracer_kwargs)
    gen = tracer.trace_many(seeds, t_start, t_end)
    try:
        request = next(gen)
        while True:
            block = series.level(request.time_index)[request.block_id]
            request = gen.send(block)
    except StopIteration as stop:
        return stop.value
