"""Contour lines on triangulated surfaces (marching triangles).

The classic companion of the cut plane: iso-lines of a scalar carried on
a :class:`~repro.viz.mesh.TriangleMesh` (e.g. pressure contours on a
slice, or λ2 level lines on any extracted surface).  Each triangle with
a sign change contributes one segment; the case analysis is trivial and
unambiguous, the 1-D sibling of the tetrahedral decomposition used for
isosurfaces.
"""

from __future__ import annotations

import numpy as np

from ..grids.multiblock import MultiBlockDataset
from ..viz.mesh import TriangleMesh
from ..viz.polyline import PolylineSet
from .cutplane import extract_cutplane

__all__ = ["contour_lines", "cutplane_contours"]


def contour_lines(
    mesh: TriangleMesh, attribute: str, value: float
) -> PolylineSet:
    """Iso-lines of a per-vertex ``attribute`` on a triangle mesh.

    Returns a :class:`PolylineSet` of two-point segments (one per
    crossed triangle).  Vertices exactly at the iso-value are treated as
    infinitesimally below it, which keeps the case analysis two-way.
    """
    if attribute not in mesh.attributes:
        raise KeyError(
            f"mesh has no attribute {attribute!r}; available: "
            f"{sorted(mesh.attributes)}"
        )
    if mesh.is_empty():
        return PolylineSet()
    tri_pts = mesh.triangles  # (n, 3, 3)
    tri_val = mesh.attributes[attribute].reshape(-1, 3)  # (n, 3)
    above = tri_val > value  # "at the value" counts as below

    segments = []
    # The three directed edges of each triangle.
    edges = ((0, 1), (1, 2), (2, 0))
    crossing_count = above.sum(axis=1)
    candidates = np.nonzero((crossing_count == 1) | (crossing_count == 2))[0]
    for t in candidates:
        points = []
        for a, b in edges:
            va, vb = tri_val[t, a], tri_val[t, b]
            if (va > value) == (vb > value):
                continue
            w = (value - va) / (vb - va)
            points.append(tri_pts[t, a] + w * (tri_pts[t, b] - tri_pts[t, a]))
        if len(points) == 2:
            segments.append(points)
    if not segments:
        return PolylineSet()
    vertices = np.asarray(segments, dtype=np.float64).reshape(-1, 3)
    offsets = list(range(0, len(vertices) + 1, 2))
    values = np.full(len(vertices), float(value))
    return PolylineSet(vertices, offsets, {attribute: values})


def cutplane_contours(
    dataset: MultiBlockDataset,
    normal: np.ndarray,
    offset: float,
    scalar: str,
    values: list[float],
) -> PolylineSet:
    """Contour lines of ``scalar`` on the plane ``normal · x = offset``.

    Extracts the cut with the scalar interpolated onto it, then marches
    one contour per requested level.
    """
    cut = extract_cutplane(dataset, normal, offset, attributes=[scalar])
    if cut.is_empty():
        return PolylineSet()
    return PolylineSet.merge(
        [contour_lines(cut, scalar, float(v)) for v in values]
    )
