"""Case tables for isosurface triangulation via tetrahedral decomposition.

Each hexahedral cell is split into six tetrahedra around the main
diagonal (corner 0 → corner 6).  This split is *face-consistent*: the
diagonal chosen on every cell face matches the diagonal the neighboring
cell chooses on its shared face, so the extracted surface is crack-free
across cell boundaries without any table disambiguation (the classic
marching-cubes ambiguous cases cannot occur with tetrahedra).

Corner numbering matches
:meth:`repro.grids.block.StructuredBlock.cell_corner_points` (VTK
hexahedron order).
"""

from __future__ import annotations

import numpy as np

__all__ = ["HEX_TO_TETS", "TET_EDGES", "TET_TRI_TABLE", "TET_TRI_COUNT"]

#: Six tetrahedra around the 0-6 diagonal of the hexahedron.
HEX_TO_TETS = np.array(
    [
        [0, 1, 2, 6],
        [0, 2, 3, 6],
        [0, 3, 7, 6],
        [0, 7, 4, 6],
        [0, 4, 5, 6],
        [0, 5, 1, 6],
    ],
    dtype=np.int64,
)

#: The six edges of a tetrahedron as (vertex, vertex) pairs.
TET_EDGES = np.array(
    [
        [0, 1],  # edge 0
        [0, 2],  # edge 1
        [0, 3],  # edge 2
        [1, 2],  # edge 3
        [1, 3],  # edge 4
        [2, 3],  # edge 5
    ],
    dtype=np.int64,
)

# Case index: bit i set <=> tet vertex i is "inside" (value < isovalue).
# Each entry lists triangles as triples of cut-edge indices; -1 pads.
_RAW_TABLE: list[list[tuple[int, int, int]]] = [
    [],  # 0000: nothing inside
    [(0, 1, 2)],  # 0001: v0
    [(0, 4, 3)],  # 0010: v1
    [(1, 2, 4), (1, 4, 3)],  # 0011: v0 v1
    [(1, 3, 5)],  # 0100: v2
    [(0, 3, 5), (0, 5, 2)],  # 0101: v0 v2
    [(0, 4, 5), (0, 5, 1)],  # 0110: v1 v2
    [(2, 4, 5)],  # 0111: v0 v1 v2 (== not v3)
    [(2, 5, 4)],  # 1000: v3
    [(0, 1, 5), (0, 5, 4)],  # 1001: v0 v3
    [(0, 2, 5), (0, 5, 3)],  # 1010: v1 v3
    [(1, 5, 3)],  # 1011: (== not v2)
    [(1, 4, 2), (1, 3, 4)],  # 1100: v2 v3
    [(0, 3, 4)],  # 1101: (== not v1)
    [(0, 2, 1)],  # 1110: (== not v0)
    [],  # 1111: everything inside
]

#: Padded (16, 2, 3) table: up to two triangles of cut-edge indices.
TET_TRI_TABLE = np.full((16, 2, 3), -1, dtype=np.int64)
for case, tris in enumerate(_RAW_TABLE):
    for t, tri in enumerate(tris):
        TET_TRI_TABLE[case, t] = tri

#: Number of triangles per case.
TET_TRI_COUNT = np.array([len(t) for t in _RAW_TABLE], dtype=np.int64)
