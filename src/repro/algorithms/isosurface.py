"""Isosurface extraction on curvilinear blocks.

"One of the most commonly used post-processing techniques is isosurface
extraction" (§6.3).  Cells whose corner-value interval encloses the
iso-value are *active*; active cells are triangulated at the
intersection points with the iso-value.

Triangulation decomposes each hexahedral cell into six tetrahedra
(:mod:`.tet_tables`), which is deterministic, ambiguity-free and
crack-free across cells.  Everything below is vectorized over cells:
the per-cell Python loop the paper's C++ could afford would dominate
runtime here (see the HPC guides' vectorization rule).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..grids.block import StructuredBlock
from ..grids.multiblock import MultiBlockDataset
from ..viz.mesh import TriangleMesh
from .tet_tables import HEX_TO_TETS, TET_EDGES, TET_TRI_TABLE

__all__ = [
    "gather_cell_corners",
    "active_cell_indices",
    "triangulate_cells",
    "extract_block_isosurface",
    "extract_isosurface",
    "iter_isosurface_batches",
]

_CORNER_OFFSETS = np.array(
    [
        [0, 0, 0],
        [1, 0, 0],
        [1, 1, 0],
        [0, 1, 0],
        [0, 0, 1],
        [1, 0, 1],
        [1, 1, 1],
        [0, 1, 1],
    ],
    dtype=np.int64,
)


def _corner_point_indices(block: StructuredBlock, flat_cells: np.ndarray) -> tuple:
    """Point-lattice indices of the 8 corners of each cell, shape (n, 8)."""
    ci, cj, ck = block.cell_shape
    flat_cells = np.asarray(flat_cells, dtype=np.int64)
    i, rem = np.divmod(flat_cells, cj * ck)
    j, k = np.divmod(rem, ck)
    ii = i[:, None] + _CORNER_OFFSETS[None, :, 0]
    jj = j[:, None] + _CORNER_OFFSETS[None, :, 1]
    kk = k[:, None] + _CORNER_OFFSETS[None, :, 2]
    return ii, jj, kk


def gather_cell_corners(
    block: StructuredBlock, scalar: str, flat_cells: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Corner coordinates ``(n, 8, 3)`` and scalar values ``(n, 8)``."""
    ii, jj, kk = _corner_point_indices(block, flat_cells)
    coords = block.coords[ii, jj, kk]
    values = block.field(scalar)[ii, jj, kk]
    return coords, values


def active_cell_indices(
    block: StructuredBlock, scalar: str, isovalue: float
) -> np.ndarray:
    """Flat indices of cells whose corner interval encloses ``isovalue``."""
    f = block.field(scalar)
    if f.ndim != 3:
        raise ValueError(f"field {scalar!r} is not a scalar")
    stacked = np.stack(
        [
            f[:-1, :-1, :-1],
            f[1:, :-1, :-1],
            f[1:, 1:, :-1],
            f[:-1, 1:, :-1],
            f[:-1, :-1, 1:],
            f[1:, :-1, 1:],
            f[1:, 1:, 1:],
            f[:-1, 1:, 1:],
        ]
    )
    mask = (stacked.min(axis=0) <= isovalue) & (stacked.max(axis=0) >= isovalue)
    return np.nonzero(mask.reshape(-1))[0]


def triangulate_cells(
    coords: np.ndarray,
    values: np.ndarray,
    isovalue: float,
    attributes: dict[str, np.ndarray] | None = None,
) -> TriangleMesh:
    """Triangulate cells given corner coords ``(n,8,3)`` / values ``(n,8)``.

    ``attributes`` maps names to extra per-corner values ``(n, 8)`` to be
    interpolated onto the surface vertices (e.g. pressure for coloring).
    """
    n = len(coords)
    if n == 0:
        return TriangleMesh()
    # Expand hexahedra to tetrahedra: (n, 6, 4) -> (6n, 4).
    tet_vals = values[:, HEX_TO_TETS].reshape(-1, 4)
    tet_coords = coords[:, HEX_TO_TETS].reshape(-1, 4, 3)

    inside = tet_vals < isovalue
    cases = (
        inside[:, 0].astype(np.int64)
        | (inside[:, 1] << 1)
        | (inside[:, 2] << 2)
        | (inside[:, 3] << 3)
    )
    # Per tet, up to two triangles; (n_tets, 2, 3) of cut-edge ids.
    tris = TET_TRI_TABLE[cases]
    tet_idx, tri_idx = np.nonzero(tris[:, :, 0] >= 0)
    if len(tet_idx) == 0:
        return TriangleMesh()
    edge_ids = tris[tet_idx, tri_idx]  # (m, 3)

    # Interpolate the three cut points of every triangle at once.
    v0 = TET_EDGES[edge_ids, 0]  # (m, 3) tet-local vertex ids
    v1 = TET_EDGES[edge_ids, 1]
    rows = tet_idx[:, None]
    a = tet_vals[rows, v0]
    b = tet_vals[rows, v1]
    denom = b - a
    t = np.where(np.abs(denom) > 0, (isovalue - a) / np.where(denom == 0, 1, denom), 0.5)
    t = np.clip(t, 0.0, 1.0)
    pa = tet_coords[rows, v0]
    pb = tet_coords[rows, v1]
    verts = pa + t[..., None] * (pb - pa)  # (m, 3, 3)

    out_attrs = {}
    if attributes:
        for name, corner_vals in attributes.items():
            tv = corner_vals[:, HEX_TO_TETS].reshape(-1, 4)
            fa = tv[rows, v0]
            fb = tv[rows, v1]
            out_attrs[name] = (fa + t * (fb - fa)).reshape(-1)
    mesh = TriangleMesh(verts.reshape(-1, 3), out_attrs)
    return mesh.drop_degenerate()


def extract_block_isosurface(
    block: StructuredBlock,
    scalar: str,
    isovalue: float,
    cell_indices: np.ndarray | None = None,
    attributes: list[str] | None = None,
) -> TriangleMesh:
    """Isosurface of one block (optionally restricted to given cells)."""
    if cell_indices is None:
        cell_indices = active_cell_indices(block, scalar, isovalue)
    cell_indices = np.asarray(cell_indices, dtype=np.int64)
    if len(cell_indices) == 0:
        return TriangleMesh()
    coords, values = gather_cell_corners(block, scalar, cell_indices)
    attr_corners = {}
    for name in attributes or []:
        ii, jj, kk = _corner_point_indices(block, cell_indices)
        attr_corners[name] = block.field(name)[ii, jj, kk]
    return triangulate_cells(coords, values, isovalue, attr_corners or None)


def extract_isosurface(
    dataset: MultiBlockDataset,
    scalar: str,
    isovalue: float,
    attributes: list[str] | None = None,
) -> TriangleMesh:
    """Isosurface of a whole multi-block time level (batch, non-streamed)."""
    return TriangleMesh.merge(
        extract_block_isosurface(b, scalar, isovalue, attributes=attributes)
        for b in dataset
    )


def iter_isosurface_batches(
    block: StructuredBlock,
    scalar: str,
    isovalue: float,
    batch_cells: int = 512,
    cell_order: np.ndarray | None = None,
) -> Iterator[TriangleMesh]:
    """Yield isosurface fragments in batches of active cells.

    This is the unit of streaming: "Whenever a user-specified number of
    triangles is computed, these fragments of the final isosurface are
    directly streamed to the visualization client" (§6.3).  ``cell_order``
    can impose a view-dependent traversal (see
    :mod:`repro.algorithms.view_dep_iso`).
    """
    if batch_cells < 1:
        raise ValueError(f"batch_cells must be >= 1, got {batch_cells}")
    active = active_cell_indices(block, scalar, isovalue)
    if cell_order is not None and len(active) and len(np.ravel(cell_order)):
        # Stable reorder of the active cells by their rank in
        # ``cell_order`` (cells not listed go last, keeping their
        # relative order; a duplicated cell takes its last listed rank).
        order = np.asarray(cell_order, dtype=np.int64).ravel()
        sorter = np.argsort(order, kind="stable")
        ordered = order[sorter]
        right = np.searchsorted(ordered, active, side="right")
        rank = np.full(len(active), len(order), dtype=np.int64)
        hit = (right > 0) & (ordered[np.maximum(right - 1, 0)] == active)
        rank[hit] = sorter[right[hit] - 1]
        active = active[np.argsort(rank, kind="stable")]
    for start in range(0, len(active), batch_cells):
        chunk = active[start : start + batch_cells]
        mesh = extract_block_isosurface(block, scalar, isovalue, cell_indices=chunk)
        if not mesh.is_empty():
            yield mesh
