"""Extraction algorithms (the framework's layer-3 computations)."""

from .isosurface import (
    active_cell_indices,
    extract_block_isosurface,
    extract_isosurface,
    gather_cell_corners,
    iter_isosurface_batches,
    triangulate_cells,
)
from .view_dep_iso import iter_view_dependent_batches, sort_blocks_front_to_back
from .lambda2 import (
    extract_block_vortices,
    extract_vortices,
    iter_vortex_batches,
    lambda2_field,
    lambda2_points,
)
from .pathlines import (
    BatchPathlineTracer,
    BlockRequest,
    Pathline,
    PathlineTracer,
    trace_pathline,
    trace_pathlines,
)
from .streamlines import (
    BatchStreamlineTracer,
    StreamlineTracer,
    trace_streamline,
    trace_streamlines,
)
from .streaklines import Streakline, StreaklineTracer, trace_streakline
from .contours import contour_lines, cutplane_contours
from .criteria import (
    enstrophy_field,
    extract_q_vortices,
    helicity_field,
    q_criterion_field,
    q_criterion_points,
    vorticity_field,
    vorticity_magnitude_field,
)
from .cutplane import (
    extract_block_cutplane,
    extract_cutplane,
    iter_cutplane_batches,
    plane_distance_field,
)

__all__ = [
    "active_cell_indices",
    "extract_block_isosurface",
    "extract_isosurface",
    "gather_cell_corners",
    "iter_isosurface_batches",
    "triangulate_cells",
    "iter_view_dependent_batches",
    "sort_blocks_front_to_back",
    "extract_block_vortices",
    "extract_vortices",
    "iter_vortex_batches",
    "lambda2_field",
    "lambda2_points",
    "BatchPathlineTracer",
    "BlockRequest",
    "Pathline",
    "PathlineTracer",
    "trace_pathline",
    "trace_pathlines",
    "BatchStreamlineTracer",
    "StreamlineTracer",
    "trace_streamline",
    "trace_streamlines",
    "Streakline",
    "StreaklineTracer",
    "trace_streakline",
    "contour_lines",
    "cutplane_contours",
    "enstrophy_field",
    "extract_q_vortices",
    "helicity_field",
    "q_criterion_field",
    "q_criterion_points",
    "vorticity_field",
    "vorticity_magnitude_field",
    "extract_block_cutplane",
    "extract_cutplane",
    "iter_cutplane_batches",
    "plane_distance_field",
]
