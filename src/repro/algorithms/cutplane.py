"""Cut-plane extraction.

Cut planes are the paper's other canonical example of a method whose
"parts generated during this process could be visualized directly"
(§5.1).  A plane cut is exactly the isosurface of the signed-distance
field ``d(x) = n·x - c`` sampled at the grid points, so the tetrahedral
isosurface machinery is reused wholesale — including streaming.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..grids.block import StructuredBlock
from ..grids.multiblock import MultiBlockDataset
from ..viz.mesh import TriangleMesh
from .isosurface import extract_block_isosurface, iter_isosurface_batches

__all__ = ["plane_distance_field", "extract_block_cutplane", "extract_cutplane", "iter_cutplane_batches"]

_FIELD = "_plane_distance"


def plane_distance_field(
    block: StructuredBlock, normal: np.ndarray, offset: float
) -> np.ndarray:
    """Signed distance of every grid point to the plane ``n·x = c``."""
    n = np.asarray(normal, dtype=np.float64)
    norm = np.linalg.norm(n)
    if norm == 0:
        raise ValueError("plane normal must be non-zero")
    n = n / norm
    return np.einsum("...c,c->...", block.coords, n) - float(offset) / norm


def _prepared(block: StructuredBlock, normal, offset) -> StructuredBlock:
    work = StructuredBlock(
        block.coords,
        dict(block.fields),
        block_id=block.block_id,
        time_index=block.time_index,
    )
    work.set_field(_FIELD, plane_distance_field(block, normal, offset))
    return work


def extract_block_cutplane(
    block: StructuredBlock,
    normal: np.ndarray,
    offset: float = 0.0,
    attributes: list[str] | None = None,
) -> TriangleMesh:
    """Cut one block with the plane ``normal · x = offset``.

    ``attributes`` lists scalar fields to interpolate onto the cut (the
    usual coloring use case).
    """
    work = _prepared(block, normal, offset)
    return extract_block_isosurface(work, _FIELD, 0.0, attributes=attributes)


def extract_cutplane(
    dataset: MultiBlockDataset,
    normal: np.ndarray,
    offset: float = 0.0,
    attributes: list[str] | None = None,
) -> TriangleMesh:
    """Cut a whole multi-block time level."""
    return TriangleMesh.merge(
        extract_block_cutplane(b, normal, offset, attributes) for b in dataset
    )


def iter_cutplane_batches(
    block: StructuredBlock,
    normal: np.ndarray,
    offset: float = 0.0,
    batch_cells: int = 512,
) -> Iterator[TriangleMesh]:
    """Streamed cut-plane fragments of one block."""
    work = _prepared(block, normal, offset)
    yield from iter_isosurface_batches(work, _FIELD, 0.0, batch_cells=batch_cells)
