"""Streamlines: steady-state particle traces on one frozen time level.

Listed under the paper's future work ("optimization of particle tracing
algorithms, e.g. pathlines as well as streaklines"); implemented here as
the steady companion of :mod:`.pathlines`, reusing the same RK4 tracer
with the velocity field frozen at a single time level and arc
parameterized by pseudo-time.
"""

from __future__ import annotations

from typing import Generator, Sequence

import numpy as np

from ..grids.block import BlockHandle
from ..grids.multiblock import MultiBlockDataset
from .pathlines import BatchPathlineTracer, BlockRequest, Pathline, PathlineTracer

__all__ = [
    "BatchStreamlineTracer",
    "StreamlineTracer",
    "trace_streamline",
    "trace_streamlines",
]


class StreamlineTracer(PathlineTracer):
    """A pathline tracer pinned to one time level."""

    def __init__(
        self,
        handles: Sequence[BlockHandle],
        level_index: int = 0,
        duration: float = 1.0,
        **kwargs,
    ):
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        # A single synthetic "time axis" spanning the integration length;
        # both bracket levels collapse onto the frozen level.
        super().__init__(handles, times=[0.0, duration], **kwargs)
        self.level_index = level_index

    def _map_request(self, time_index: int, block_id: int):
        # Both pseudo-time levels map to the same frozen dataset level.
        from .pathlines import BlockRequest

        return BlockRequest(self.level_index, block_id)

    def trace_steady(
        self, seed: np.ndarray, duration: float | None = None
    ) -> Generator[BlockRequest, object, Pathline]:
        return (yield from self.trace(seed, 0.0, duration))


class BatchStreamlineTracer(BatchPathlineTracer):
    """The batched companion of :class:`StreamlineTracer`.

    All seeds advance together through the vectorized RK45 stages and
    each frozen-level block is demanded once per super-step.
    """

    def __init__(
        self,
        handles: Sequence[BlockHandle],
        level_index: int = 0,
        duration: float = 1.0,
        **kwargs,
    ):
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        super().__init__(handles, times=[0.0, duration], **kwargs)
        self.level_index = level_index

    def _map_request(self, time_index: int, block_id: int):
        # Both pseudo-time levels map to the same frozen dataset level.
        return BlockRequest(self.level_index, block_id)

    def trace_steady_many(
        self, seeds: np.ndarray, duration: float | None = None
    ) -> Generator[BlockRequest, object, list[Pathline]]:
        return (yield from self.trace_many(seeds, 0.0, duration))


def trace_streamline(
    dataset: MultiBlockDataset,
    seed: np.ndarray,
    duration: float = 1.0,
    **tracer_kwargs,
) -> Pathline:
    """Serial convenience wrapper over one in-memory time level."""
    tracer = StreamlineTracer(dataset.handles(), duration=duration, **tracer_kwargs)
    gen = tracer.trace_steady(seed, duration)
    try:
        request = next(gen)
        while True:
            request = gen.send(dataset[request.block_id])
    except StopIteration as stop:
        return stop.value


def trace_streamlines(
    dataset: MultiBlockDataset,
    seeds: np.ndarray,
    duration: float = 1.0,
    **tracer_kwargs,
) -> list[Pathline]:
    """Batched convenience wrapper: all seeds traced in one pass."""
    tracer = BatchStreamlineTracer(
        dataset.handles(), duration=duration, **tracer_kwargs
    )
    gen = tracer.trace_steady_many(seeds, duration)
    try:
        request = next(gen)
        while True:
            request = gen.send(dataset[request.block_id])
    except StopIteration as stop:
        return stop.value
