"""View-dependent streamed isosurface extraction (the ViewerIso command).

"The algorithm proceeds as follows: In a first step, all blocks are
sorted in a front to back order with respect to the viewer's position.
[...] As soon as a block is in memory, the worker creates a binary
space-partitioning (BSP) tree of its domain and traverses it in a view
dependent fashion.  Thereby, a list of active cells [...] is generated.
[...] branches labeling empty regions are pruned during the traversal.
In a final step, the active cells are triangulated [...]  Whenever a
user-specified number of triangles is computed, these fragments of the
final isosurface are directly streamed to the visualization client."
(§6.3)

Unlike view-dependent culling schemes, "our approach computes not only
the visible parts but always a full isosurface representation" — the
view direction only controls *ordering*, because in a virtual
environment the user will examine the surface from other viewpoints.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..grids.block import BlockHandle, StructuredBlock
from ..grids.bsp import BSPTree
from ..viz.mesh import TriangleMesh
from .isosurface import extract_block_isosurface

__all__ = ["sort_blocks_front_to_back", "iter_view_dependent_batches"]


def sort_blocks_front_to_back(
    handles: Sequence[BlockHandle], viewpoint: np.ndarray
) -> list[BlockHandle]:
    """Step 1: order whole blocks by bbox-center distance to the viewer."""
    vp = np.asarray(viewpoint, dtype=np.float64)
    return sorted(
        handles, key=lambda h: float(np.sum((h.center() - vp) ** 2))
    )


def iter_view_dependent_batches(
    block: StructuredBlock,
    scalar: str,
    isovalue: float,
    viewpoint: np.ndarray,
    max_triangles: int = 2000,
    leaf_size: int = 64,
) -> Iterator[TriangleMesh]:
    """Streamed, view-ordered fragments of one block's isosurface.

    Builds the block's BSP tree *on line* (the paper deliberately does
    not precompute it, "in order to evaluate the 'true cost' of
    streaming"), traverses front-to-back with empty-region pruning, and
    emits a fragment whenever the accumulated triangle count reaches
    ``max_triangles``.
    """
    if max_triangles < 1:
        raise ValueError(f"max_triangles must be >= 1, got {max_triangles}")
    tree = BSPTree(block, scalar, leaf_size=leaf_size)
    pending: list[TriangleMesh] = []
    pending_triangles = 0
    for leaf_cells in tree.traverse_front_to_back(viewpoint, isovalue=isovalue):
        mesh = extract_block_isosurface(
            block, scalar, isovalue, cell_indices=leaf_cells
        )
        if mesh.is_empty():
            continue
        pending.append(mesh)
        pending_triangles += mesh.n_triangles
        if pending_triangles >= max_triangles:
            yield TriangleMesh.merge(pending)
            pending = []
            pending_triangles = 0
    if pending:
        yield TriangleMesh.merge(pending)
