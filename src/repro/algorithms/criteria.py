"""Derived flow quantities beyond λ2.

The paper evaluates the λ2 criterion; a post-processing library for
"the addition of a variety of post-processing methods" (§8) needs its
standard companions: vorticity, the Q criterion (Hunt), helicity and
enstrophy.  All are per-point fields derived from the velocity-gradient
tensor and plug directly into the isosurface machinery, exactly like
λ2 does.
"""

from __future__ import annotations

import numpy as np

from ..grids.block import StructuredBlock
from ..grids.geometry import velocity_gradient_tensor
from ..grids.multiblock import MultiBlockDataset
from ..viz.mesh import TriangleMesh
from .isosurface import extract_block_isosurface

__all__ = [
    "vorticity_field",
    "vorticity_magnitude_field",
    "q_criterion_points",
    "q_criterion_field",
    "helicity_field",
    "enstrophy_field",
    "extract_q_vortices",
]


def vorticity_field(block: StructuredBlock, velocity: str = "velocity") -> np.ndarray:
    """Vorticity vector ω = ∇ × u per point, shape ``(ni, nj, nk, 3)``."""
    g = velocity_gradient_tensor(block, velocity)  # g[..., c, d] = du_c/dx_d
    return np.stack(
        [
            g[..., 2, 1] - g[..., 1, 2],
            g[..., 0, 2] - g[..., 2, 0],
            g[..., 1, 0] - g[..., 0, 1],
        ],
        axis=-1,
    )


def vorticity_magnitude_field(
    block: StructuredBlock, velocity: str = "velocity"
) -> np.ndarray:
    """|ω| per point."""
    return np.linalg.norm(vorticity_field(block, velocity), axis=-1)


def q_criterion_points(gradients: np.ndarray) -> np.ndarray:
    """Q = ½(‖Ω‖² − ‖S‖²) from gradient tensors ``(..., 3, 3)``.

    Q > 0 marks regions where rotation dominates strain (Hunt et al.);
    it is the positive-threshold sibling of the λ2 < 0 criterion.
    """
    g = np.asarray(gradients, dtype=np.float64)
    s = 0.5 * (g + np.swapaxes(g, -1, -2))
    w = 0.5 * (g - np.swapaxes(g, -1, -2))
    return 0.5 * (
        np.sum(w * w, axis=(-2, -1)) - np.sum(s * s, axis=(-2, -1))
    )


def q_criterion_field(block: StructuredBlock, velocity: str = "velocity") -> np.ndarray:
    """The Q scalar field of one block."""
    return q_criterion_points(velocity_gradient_tensor(block, velocity))


def helicity_field(block: StructuredBlock, velocity: str = "velocity") -> np.ndarray:
    """Helicity density h = u · ω per point (swirl alignment)."""
    u = block.field(velocity)
    return np.einsum("...c,...c->...", u, vorticity_field(block, velocity))


def enstrophy_field(block: StructuredBlock, velocity: str = "velocity") -> np.ndarray:
    """Enstrophy density ½|ω|² per point."""
    w = vorticity_field(block, velocity)
    return 0.5 * np.einsum("...c,...c->...", w, w)


def extract_q_vortices(
    dataset: MultiBlockDataset,
    threshold: float = 0.0,
    velocity: str = "velocity",
) -> TriangleMesh:
    """Vortex surfaces at ``Q = threshold`` (Q > threshold inside)."""
    meshes = []
    for block in dataset:
        work = StructuredBlock(
            block.coords,
            {"q": q_criterion_field(block, velocity)},
            block_id=block.block_id,
            time_index=block.time_index,
        )
        meshes.append(extract_block_isosurface(work, "q", threshold))
    return TriangleMesh.merge(meshes)
