"""Streaklines: the paper's named future-work item (§9).

A streakline is the locus, at observation time ``T``, of all particles
continuously released from a fixed seed point since ``t0`` — what a dye
filament in a physical wind tunnel shows.  It is computed by advecting
one particle per release time with the unsteady pathline integrator and
connecting their positions at ``T`` in release order.

The implementation reuses :class:`~repro.algorithms.pathlines.
BatchPathlineTracer` (and its block-request protocol), so streaklines
work both standalone and through the DMS.  All released particles
advance as ONE batch with per-particle release times, so a block is
demanded once per super-step no matter how many particles need it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Sequence

import numpy as np

from ..grids.block import BlockHandle
from ..grids.multiblock import TimeSeries
from .pathlines import BatchPathlineTracer, BlockRequest, Pathline

__all__ = ["Streakline", "StreaklineTracer", "trace_streakline"]


@dataclass
class Streakline:
    """One streakline at a fixed observation time."""

    seed: np.ndarray
    observation_time: float
    release_times: np.ndarray  #: (n,) times the surviving particles started
    points: np.ndarray  #: (n, 3) particle positions at the observation time
    n_released: int  #: particles released (some may have left the domain)

    @property
    def n_particles(self) -> int:
        return len(self.points)

    def length(self) -> float:
        if len(self.points) < 2:
            return 0.0
        return float(np.linalg.norm(np.diff(self.points, axis=0), axis=1).sum())


class StreaklineTracer:
    """Streakline integration over a multi-block time series."""

    def __init__(
        self,
        handles: Sequence[BlockHandle],
        times: Sequence[float],
        **tracer_kwargs,
    ):
        self.tracer = BatchPathlineTracer(handles, times, **tracer_kwargs)
        self.times = self.tracer.times

    def trace(
        self,
        seed: np.ndarray,
        t_start: float | None = None,
        t_observe: float | None = None,
        n_particles: int = 20,
    ) -> Generator[BlockRequest, object, Streakline]:
        """Generator protocol (like the pathline tracer's).

        Releases ``n_particles`` particles at uniform times in
        ``[t_start, t_observe)`` and integrates them to ``t_observe``
        as one batch (each with its own release time).  Particles that
        leave the domain are dropped from the filament.
        """
        if n_particles < 1:
            raise ValueError(f"n_particles must be >= 1, got {n_particles}")
        seed = np.asarray(seed, dtype=np.float64)
        t0 = self.times[0] if t_start is None else float(t_start)
        t1 = self.times[-1] if t_observe is None else float(t_observe)
        if t1 <= t0:
            raise ValueError(f"t_observe ({t1}) must exceed t_start ({t0})")
        releases = np.linspace(t0, t1, n_particles, endpoint=False)
        seeds = np.broadcast_to(seed, (n_particles, 3))
        paths: list[Pathline] = yield from self.tracer.trace_many(
            seeds, t_start=releases, t_end=t1
        )
        kept_points: list[np.ndarray] = []
        kept_times: list[float] = []
        for t_release, path in zip(releases, paths):
            if path.termination == "end_time":
                kept_points.append(path.points[-1])
                kept_times.append(float(t_release))
        return Streakline(
            seed=seed,
            observation_time=t1,
            release_times=np.asarray(kept_times),
            points=(
                np.asarray(kept_points)
                if kept_points
                else np.empty((0, 3), dtype=np.float64)
            ),
            n_released=n_particles,
        )


def trace_streakline(
    series: TimeSeries,
    seed: np.ndarray,
    t_start: float | None = None,
    t_observe: float | None = None,
    n_particles: int = 20,
    **tracer_kwargs,
) -> Streakline:
    """Serial convenience wrapper over an in-memory time series."""
    handles = series.level(0).handles()
    tracer = StreaklineTracer(handles, series.times, **tracer_kwargs)
    gen = tracer.trace(seed, t_start, t_observe, n_particles)
    try:
        request = next(gen)
        while True:
            block = series.level(request.time_index)[request.block_id]
            request = gen.send(block)
    except StopIteration as stop:
        return stop.value
