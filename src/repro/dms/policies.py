"""Cache replacement policies: LRU, LFU and FBR.

The paper evaluated standard replacement algorithms "such as LRU
(replacing the least recently used block), LFU (replacing the least
frequently used block) and FBR (frequency based replacement, a
trade-off between LFU and LRU, proposed in [Robinson & Devarakonda
1990])" and found frequency-based strategies, foremost FBR, to produce
fewer misses on CFD data requests.

All policies share a small interface so :class:`~repro.dms.cache.CacheTier`
can be parameterized; keys are opaque hashables (item identifiers).

Two implementations exist for the frequency-based policies:

* :class:`LFUPolicy` / :class:`FBRPolicy` — frequency-bucket versions
  with O(1) amortized ``on_access``/``victim`` (no full-table scan per
  eviction).  These are what :func:`make_policy` hands out.
* :class:`ScanLFUPolicy` / :class:`ScanFBRPolicy` — the original
  straight-from-the-definition scans, kept as executable references;
  ``tests/dms/test_policy_equivalence.py`` drives both through
  randomized traces and asserts identical victim sequences.

Victim *identity* decides cache placement and therefore every simulated
timestamp downstream, so the bucketed versions are equivalent by
construction, not merely "close": the bucket orderings below are proven
to coincide with the scan orderings in the class docstrings.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Protocol

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "FBRPolicy",
    "ScanLFUPolicy",
    "ScanFBRPolicy",
    "make_policy",
]


class ReplacementPolicy(Protocol):
    """Interface required by cache tiers."""

    def on_insert(self, key: Hashable) -> None: ...

    def on_access(self, key: Hashable) -> None: ...

    def victim(self) -> Hashable: ...

    def remove(self, key: Hashable) -> None: ...

    def __len__(self) -> int: ...

    def __contains__(self, key: Hashable) -> bool: ...


class LRUPolicy:
    """Evict the least recently used key."""

    def __init__(self) -> None:
        self._order: OrderedDict[Hashable, None] = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        if key in self._order:
            raise KeyError(f"key {key!r} already tracked")
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def victim(self) -> Hashable:
        if not self._order:
            raise LookupError("no keys to evict")
        return next(iter(self._order))

    def remove(self, key: Hashable) -> None:
        del self._order[key]

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._order


class LFUPolicy:
    """Evict the least frequently used key (LRU tiebreak) — O(1) amortized.

    ``_buckets[c]`` holds the count-``c`` keys, least recently accessed
    first.  A key's last touch is exactly the event that moved it into
    its current bucket (counts only ever increase), so within-bucket
    FIFO order *is* global recency order restricted to that count, and
    the victim is simply the head of the minimum nonempty bucket —
    identical to :class:`ScanLFUPolicy`'s full scan, without the scan.

    ``_min`` is a monotone cursor over bucket counts: inserts reset it
    to 1 (new keys enter at count 1), :meth:`victim` walks it upward
    past empty buckets.  Each upward step is paid for by a preceding
    count increment, hence amortized O(1).
    """

    def __init__(self) -> None:
        self._counts: dict[Hashable, int] = {}
        self._buckets: dict[int, OrderedDict[Hashable, None]] = {}
        self._min = 1

    def on_insert(self, key: Hashable) -> None:
        if key in self._counts:
            raise KeyError(f"key {key!r} already tracked")
        self._counts[key] = 1
        bucket = self._buckets.get(1)
        if bucket is None:
            bucket = self._buckets[1] = OrderedDict()
        bucket[key] = None
        self._min = 1

    def on_access(self, key: Hashable) -> None:
        count = self._counts[key]
        self._counts[key] = count + 1
        bucket = self._buckets[count]
        del bucket[key]
        if not bucket:
            del self._buckets[count]
        nxt = self._buckets.get(count + 1)
        if nxt is None:
            nxt = self._buckets[count + 1] = OrderedDict()
        nxt[key] = None

    def victim(self) -> Hashable:
        if not self._counts:
            raise LookupError("no keys to evict")
        buckets = self._buckets
        m = self._min
        while m not in buckets:
            m += 1
        self._min = m
        return next(iter(buckets[m]))

    def remove(self, key: Hashable) -> None:
        count = self._counts.pop(key)
        bucket = self._buckets[count]
        del bucket[key]
        if not bucket:
            del self._buckets[count]

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts


class FBRPolicy:
    """Frequency-based replacement (Robinson & Devarakonda, 1990).

    The recency stack is partitioned into a *new*, *middle* and *old*
    section.  Hits in the new section do **not** increment the reference
    count — this factors out short-term temporal locality, which plain
    LFU wrongly counts as long-term popularity.  The victim is the
    least-frequently-used key within the old section (LRU tiebreak).
    Counts are periodically halved once the average exceeds ``a_max``
    so the policy can adapt to shifting access patterns.

    This implementation is O(1) amortized per operation where
    :class:`ScanFBRPolicy` rebuilds the whole stack as a list on every
    access *and* sums every count to test for rescaling.  It keeps:

    * a doubly-linked recency list (``_nxt``/``_prv`` keyed by key,
      LRU at the head side) so moves are pointer splices;
    * the new section as a set plus a ``_new_first`` cursor on its
      LRU-most member — the section is always a contiguous MRU suffix,
      so membership growth/shrink only ever moves the cursor by one;
    * the old section as ``{key: count-at-entry}`` plus frequency
      buckets in entry order and an ``_old_last`` cursor on its
      MRU-most member.  A key enters the old section only as the
      positional successor of the current section (boundary growth),
      which is strictly more recent than every member, so bucket entry
      order coincides with positional LRU order and the victim is the
      head of the minimum bucket — the same key the scan finds;
    * a running ``_total`` of counts so the rescale trigger
      (``sum/len > a_max``, same integer arithmetic as the scan) is
      O(1).  The rescale itself stays O(n), exactly as in the scan,
      and rebuilds the old-section buckets in one prefix walk.

    Section target sizes are recomputed from ``len`` with the exact
    ``max(1, int(round(fraction * n)))`` expressions of the scan, and
    every mutation rebalances both boundaries (each moves by at most
    one key per operation).  Small-``n`` overlap — where one key falls
    in *both* the new and old sections — is legal here just as in the
    scan: the new-section check wins for counting, while the old
    structures keep the key eligible for eviction.
    """

    def __init__(self, new_fraction: float = 0.3, old_fraction: float = 0.3, a_max: float = 10.0):
        if not 0.0 <= new_fraction < 1.0 or not 0.0 < old_fraction <= 1.0:
            raise ValueError("section fractions must lie in [0, 1)")
        if new_fraction + old_fraction > 1.0:
            raise ValueError("new and old sections may not overlap completely")
        self.new_fraction = new_fraction
        self.old_fraction = old_fraction
        self.a_max = a_max
        self._counts: dict[Hashable, int] = {}
        self._total = 0
        # Recency list: _head <-> LRU ... MRU <-> _tail.
        self._head = object()
        self._tail = object()
        self._nxt: dict = {self._head: self._tail}
        self._prv: dict = {self._tail: self._head}
        # New section (contiguous MRU suffix).
        self._new: set = set()
        self._new_first: Hashable | None = None
        # Old section (contiguous LRU prefix) with frequency buckets.
        self._old: dict[Hashable, int] = {}
        self._old_last: Hashable | None = None
        self._obuckets: dict[int, OrderedDict[Hashable, None]] = {}
        self._omin = 1

    # -- recency list -------------------------------------------------
    def _link_tail(self, key: Hashable) -> None:
        tail = self._tail
        prev = self._prv[tail]
        self._nxt[prev] = key
        self._prv[key] = prev
        self._nxt[key] = tail
        self._prv[tail] = key

    def _unlink(self, key: Hashable) -> None:
        prev = self._prv.pop(key)
        nxt = self._nxt.pop(key)
        self._nxt[prev] = nxt
        self._prv[nxt] = prev

    # -- section boundaries -------------------------------------------
    def _targets(self) -> tuple[int, int]:
        n = len(self._counts)
        if not n:
            return 0, 0
        return (
            max(1, int(round(self.new_fraction * n))),
            max(1, int(round(self.old_fraction * n))),
        )

    def _old_add_last(self, key: Hashable) -> None:
        count = self._counts[key]
        self._old[key] = count
        bucket = self._obuckets.get(count)
        if bucket is None:
            bucket = self._obuckets[count] = OrderedDict()
        bucket[key] = None
        if count < self._omin:
            self._omin = count
        self._old_last = key

    def _old_discard(self, key: Hashable) -> None:
        """Drop ``key`` from the old structures (key must still be linked)."""
        count = self._old.pop(key)
        bucket = self._obuckets[count]
        del bucket[key]
        if not bucket:
            del self._obuckets[count]
        if key == self._old_last:
            prev = self._prv[key]
            self._old_last = prev if prev in self._old else None

    def _old_grow(self) -> bool:
        anchor = self._old_last if self._old_last is not None else self._head
        nxt = self._nxt[anchor]
        if nxt is self._tail:
            return False
        self._old_add_last(nxt)
        return True

    def _new_trim(self, target: int) -> None:
        while len(self._new) > target:
            first = self._new_first
            self._new.remove(first)
            self._new_first = self._nxt[first] if self._new else None

    def _new_grow(self, target: int) -> None:
        while len(self._new) < target:
            anchor = self._new_first if self._new_first is not None else self._tail
            cand = self._prv[anchor]
            if cand is self._head:
                break
            self._new.add(cand)
            self._new_first = cand

    def _rebalance(self) -> None:
        new_target, old_target = self._targets()
        self._new_trim(new_target)
        self._new_grow(new_target)
        while len(self._old) > old_target:
            self._old_discard(self._old_last)
        while len(self._old) < old_target:
            if not self._old_grow():
                break

    # -- policy interface ---------------------------------------------
    def on_insert(self, key: Hashable) -> None:
        if key in self._counts:
            raise KeyError(f"key {key!r} already tracked")
        self._counts[key] = 1
        self._total += 1
        self._link_tail(key)
        self._new.add(key)
        if self._new_first is None:
            self._new_first = key
        self._rebalance()

    def on_access(self, key: Hashable) -> None:
        if key not in self._counts:
            raise KeyError(f"key {key!r} not tracked")
        if key == self._prv[self._tail]:
            # Already MRU — and the MRU key is always in the new
            # section (size >= 1), so the access neither counts nor
            # moves anything.
            return
        if key in self._old:
            self._old_discard(key)
        if key not in self._new:
            # Middle/old hit: counts, exactly like the scan (increment,
            # then the rescale check, then the recency move).
            self._counts[key] += 1
            self._total += 1
            if self._total / len(self._counts) > self.a_max:
                self._rescale()
        elif key == self._new_first:
            self._new_first = self._nxt[key]
        self._unlink(key)
        self._link_tail(key)
        self._new.add(key)
        new_target, old_target = self._targets()
        self._new_trim(new_target)
        while len(self._old) < old_target:
            if not self._old_grow():
                break

    def _rescale(self) -> None:
        counts = self._counts
        for k in counts:
            counts[k] = (counts[k] + 1) // 2
        self._total = sum(counts.values())
        # Re-bucket the old section under the halved counts, walking the
        # recency prefix so entry order (== LRU order) is preserved.
        obuckets: dict[int, OrderedDict[Hashable, None]] = {}
        old = self._old
        remaining = len(old)
        node = self._nxt[self._head]
        while remaining and node is not self._tail:
            if node in old:
                count = counts[node]
                old[node] = count
                bucket = obuckets.get(count)
                if bucket is None:
                    bucket = obuckets[count] = OrderedDict()
                bucket[node] = None
                remaining -= 1
            node = self._nxt[node]
        self._obuckets = obuckets
        self._omin = 1

    def victim(self) -> Hashable:
        if not self._counts:
            raise LookupError("no keys to evict")
        obuckets = self._obuckets
        m = self._omin
        if m not in obuckets:
            # Lazy repair: the cached minimum's bucket emptied.  Buckets
            # below ``_omin`` can never exist (adds lower the cursor
            # eagerly), so when present it *is* the minimum.
            m = min(obuckets)
            self._omin = m
        return next(iter(obuckets[m]))

    def remove(self, key: Hashable) -> None:
        count = self._counts.pop(key)
        self._total -= count
        if key in self._old:
            self._old_discard(key)
        if key in self._new:
            if key == self._new_first:
                nxt = self._nxt[key]
                self._new_first = nxt if nxt is not self._tail else None
            self._new.remove(key)
            if not self._new:
                self._new_first = None
        self._unlink(key)
        self._rebalance()

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts


class ScanLFUPolicy:
    """Reference LFU: full min-scan per eviction (kept for equivalence tests)."""

    def __init__(self) -> None:
        self._counts: dict[Hashable, int] = {}
        self._order: OrderedDict[Hashable, None] = OrderedDict()  # recency tiebreak

    def on_insert(self, key: Hashable) -> None:
        if key in self._counts:
            raise KeyError(f"key {key!r} already tracked")
        self._counts[key] = 1
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        self._counts[key] += 1
        self._order.move_to_end(key)

    def victim(self) -> Hashable:
        if not self._counts:
            raise LookupError("no keys to evict")
        min_count = min(self._counts.values())
        for key in self._order:  # oldest first among minimum-count keys
            if self._counts[key] == min_count:
                return key
        raise AssertionError("unreachable")

    def remove(self, key: Hashable) -> None:
        del self._counts[key]
        del self._order[key]

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts


class ScanFBRPolicy:
    """Reference FBR: positional stack walk per operation (for equivalence tests)."""

    def __init__(self, new_fraction: float = 0.3, old_fraction: float = 0.3, a_max: float = 10.0):
        if not 0.0 <= new_fraction < 1.0 or not 0.0 < old_fraction <= 1.0:
            raise ValueError("section fractions must lie in [0, 1)")
        if new_fraction + old_fraction > 1.0:
            raise ValueError("new and old sections may not overlap completely")
        self.new_fraction = new_fraction
        self.old_fraction = old_fraction
        self.a_max = a_max
        self._counts: dict[Hashable, int] = {}
        self._order: OrderedDict[Hashable, None] = OrderedDict()  # MRU last

    # -- section boundaries -------------------------------------------
    def _section_of(self, key: Hashable) -> str:
        n = len(self._order)
        new_size = max(1, int(round(self.new_fraction * n))) if n else 0
        old_size = max(1, int(round(self.old_fraction * n))) if n else 0
        keys = list(self._order)  # LRU -> MRU
        idx = keys.index(key)
        if idx >= n - new_size:
            return "new"
        if idx < old_size:
            return "old"
        return "middle"

    def on_insert(self, key: Hashable) -> None:
        if key in self._counts:
            raise KeyError(f"key {key!r} already tracked")
        self._counts[key] = 1
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        if self._section_of(key) != "new":
            self._counts[key] += 1
            self._maybe_rescale()
        self._order.move_to_end(key)

    def _maybe_rescale(self) -> None:
        if self._counts and sum(self._counts.values()) / len(self._counts) > self.a_max:
            for k in self._counts:
                self._counts[k] = (self._counts[k] + 1) // 2

    def victim(self) -> Hashable:
        if not self._counts:
            raise LookupError("no keys to evict")
        n = len(self._order)
        old_size = max(1, int(round(self.old_fraction * n)))
        old_keys = list(self._order)[:old_size]  # LRU end
        min_count = min(self._counts[k] for k in old_keys)
        for key in old_keys:
            if self._counts[key] == min_count:
                return key
        raise AssertionError("unreachable")

    def remove(self, key: Hashable) -> None:
        del self._counts[key]
        del self._order[key]

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts


_POLICIES = {"lru": LRUPolicy, "lfu": LFUPolicy, "fbr": FBRPolicy}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a policy by its lowercase name ('lru', 'lfu', 'fbr')."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
