"""Cache replacement policies: LRU, LFU and FBR.

The paper evaluated standard replacement algorithms "such as LRU
(replacing the least recently used block), LFU (replacing the least
frequently used block) and FBR (frequency based replacement, a
trade-off between LFU and LRU, proposed in [Robinson & Devarakonda
1990])" and found frequency-based strategies, foremost FBR, to produce
fewer misses on CFD data requests.

All policies share a small interface so :class:`~repro.dms.cache.CacheTier`
can be parameterized; keys are opaque hashables (item identifiers).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Protocol

__all__ = ["ReplacementPolicy", "LRUPolicy", "LFUPolicy", "FBRPolicy", "make_policy"]


class ReplacementPolicy(Protocol):
    """Interface required by cache tiers."""

    def on_insert(self, key: Hashable) -> None: ...

    def on_access(self, key: Hashable) -> None: ...

    def victim(self) -> Hashable: ...

    def remove(self, key: Hashable) -> None: ...

    def __len__(self) -> int: ...

    def __contains__(self, key: Hashable) -> bool: ...


class LRUPolicy:
    """Evict the least recently used key."""

    def __init__(self) -> None:
        self._order: OrderedDict[Hashable, None] = OrderedDict()

    def on_insert(self, key: Hashable) -> None:
        if key in self._order:
            raise KeyError(f"key {key!r} already tracked")
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def victim(self) -> Hashable:
        if not self._order:
            raise LookupError("no keys to evict")
        return next(iter(self._order))

    def remove(self, key: Hashable) -> None:
        del self._order[key]

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._order


class LFUPolicy:
    """Evict the least frequently used key (LRU tiebreak)."""

    def __init__(self) -> None:
        self._counts: dict[Hashable, int] = {}
        self._order: OrderedDict[Hashable, None] = OrderedDict()  # recency tiebreak

    def on_insert(self, key: Hashable) -> None:
        if key in self._counts:
            raise KeyError(f"key {key!r} already tracked")
        self._counts[key] = 1
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        self._counts[key] += 1
        self._order.move_to_end(key)

    def victim(self) -> Hashable:
        if not self._counts:
            raise LookupError("no keys to evict")
        min_count = min(self._counts.values())
        for key in self._order:  # oldest first among minimum-count keys
            if self._counts[key] == min_count:
                return key
        raise AssertionError("unreachable")

    def remove(self, key: Hashable) -> None:
        del self._counts[key]
        del self._order[key]

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts


class FBRPolicy:
    """Frequency-based replacement (Robinson & Devarakonda, 1990).

    The recency stack is partitioned into a *new*, *middle* and *old*
    section.  Hits in the new section do **not** increment the reference
    count — this factors out short-term temporal locality, which plain
    LFU wrongly counts as long-term popularity.  The victim is the
    least-frequently-used key within the old section (LRU tiebreak).
    Counts are periodically halved once the average exceeds ``a_max``
    so the policy can adapt to shifting access patterns.
    """

    def __init__(self, new_fraction: float = 0.3, old_fraction: float = 0.3, a_max: float = 10.0):
        if not 0.0 <= new_fraction < 1.0 or not 0.0 < old_fraction <= 1.0:
            raise ValueError("section fractions must lie in [0, 1)")
        if new_fraction + old_fraction > 1.0:
            raise ValueError("new and old sections may not overlap completely")
        self.new_fraction = new_fraction
        self.old_fraction = old_fraction
        self.a_max = a_max
        self._counts: dict[Hashable, int] = {}
        self._order: OrderedDict[Hashable, None] = OrderedDict()  # MRU last

    # -- section boundaries -------------------------------------------
    def _section_of(self, key: Hashable) -> str:
        n = len(self._order)
        new_size = max(1, int(round(self.new_fraction * n))) if n else 0
        old_size = max(1, int(round(self.old_fraction * n))) if n else 0
        keys = list(self._order)  # LRU -> MRU
        idx = keys.index(key)
        if idx >= n - new_size:
            return "new"
        if idx < old_size:
            return "old"
        return "middle"

    def on_insert(self, key: Hashable) -> None:
        if key in self._counts:
            raise KeyError(f"key {key!r} already tracked")
        self._counts[key] = 1
        self._order[key] = None

    def on_access(self, key: Hashable) -> None:
        if self._section_of(key) != "new":
            self._counts[key] += 1
            self._maybe_rescale()
        self._order.move_to_end(key)

    def _maybe_rescale(self) -> None:
        if self._counts and sum(self._counts.values()) / len(self._counts) > self.a_max:
            for k in self._counts:
                self._counts[k] = (self._counts[k] + 1) // 2

    def victim(self) -> Hashable:
        if not self._counts:
            raise LookupError("no keys to evict")
        n = len(self._order)
        old_size = max(1, int(round(self.old_fraction * n)))
        old_keys = list(self._order)[:old_size]  # LRU end
        min_count = min(self._counts[k] for k in old_keys)
        for key in old_keys:
            if self._counts[key] == min_count:
                return key
        raise AssertionError("unreachable")

    def remove(self, key: Hashable) -> None:
        del self._counts[key]
        del self._order[key]

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts


_POLICIES = {"lru": LRUPolicy, "lfu": LFUPolicy, "fbr": FBRPolicy}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a policy by its lowercase name ('lru', 'lfu', 'fbr')."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
