"""The two-tiered data cache.

"The Viracocha-DMS uses a two-tiered data cache with a primary cache in
main memory and an optional secondary cache on local hard drives caching
data that come from network fileservers.  [...]  If this first level
cache is not able to include new data items since it is almost full,
selected cached data blocks are moved to the secondary cache." (§4.2)

Tiers here are pure bookkeeping: they hold payloads and decide victims;
the *time cost* of moving bytes between tiers is charged by the runtime
(DES) or implicit (real I/O) at the proxy layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from .policies import ReplacementPolicy, make_policy

__all__ = ["CacheStats", "CacheTier", "TwoTierCache"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


class CacheTier:
    """One capacity-bounded tier with a pluggable replacement policy."""

    def __init__(self, capacity_bytes: int, policy: ReplacementPolicy | str = "fbr", name: str = "cache"):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.name = name
        self._entries: dict[Hashable, tuple[Any, int]] = {}
        self._used = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------ state
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def keys(self) -> list[Hashable]:
        return list(self._entries)

    def size_of(self, key: Hashable) -> int:
        return self._entries[key][1]

    # ----------------------------------------------------------- access
    def get(self, key: Hashable) -> Any | None:
        """Payload for ``key`` or ``None``; counts a hit or a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.policy.on_access(key)
        return entry[0]

    def peek(self, key: Hashable) -> Any | None:
        """Payload without touching stats or recency (for inspection)."""
        entry = self._entries.get(key)
        return entry[0] if entry else None

    def put(self, key: Hashable, payload: Any, nbytes: int) -> list[tuple[Hashable, Any, int]]:
        """Insert ``key``; returns the ``(key, payload, nbytes)`` evicted.

        Items larger than the whole tier are rejected (not cached) and
        reported as an immediate self-eviction of nothing — callers see
        an empty list and a still-absent key.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if key in self._entries:
            # Refresh payload in place (same identity, maybe new size).
            _, old = self._entries[key]
            self._entries[key] = (payload, nbytes)
            self._used += nbytes - old
            self.policy.on_access(key)
            return self._evict_down()
        if nbytes > self.capacity_bytes:
            return []
        self._entries[key] = (payload, nbytes)
        self._used += nbytes
        self.policy.on_insert(key)
        self.stats.insertions += 1
        return self._evict_down(exclude=key)

    def _evict_down(self, exclude: Hashable | None = None) -> list[tuple[Hashable, Any, int]]:
        evicted = []
        while self._used > self.capacity_bytes and len(self._entries) > 1:
            victim = self.policy.victim()
            if victim == exclude:
                # Never evict the entry just inserted unless it is alone.
                # Take it out of the policy's view so the *policy's*
                # next-best victim is chosen (not dict insertion order),
                # then restore it; the entry was inserted this call, so
                # re-inserting reproduces its state (count 1, MRU).
                self.policy.remove(exclude)
                try:
                    victim = self.policy.victim()
                finally:
                    self.policy.on_insert(exclude)
            payload, nbytes = self._entries[victim]
            evicted.append((victim, payload, nbytes))
            self.remove(victim)
            self.stats.evictions += 1
        return evicted

    def remove(self, key: Hashable) -> None:
        payload, nbytes = self._entries.pop(key)
        self._used -= nbytes
        self.policy.remove(key)

    def clear(self) -> None:
        for key in list(self._entries):
            self.remove(key)


class TwoTierCache:
    """Primary (memory) tier over an optional secondary (local disk) tier.

    ``get`` promotes L2 hits into L1; ``put`` inserts into L1 and spills
    L1 evictions into L2.  The ``promoted`` / ``spilled`` lists returned
    let the caller charge disk time for tier crossings.
    """

    def __init__(self, l1: CacheTier, l2: CacheTier | None = None):
        self.l1 = l1
        self.l2 = l2

    def get(self, key: Hashable) -> tuple[Any | None, str]:
        """Returns ``(payload, where)`` with ``where`` in {'l1','l2','miss'}."""
        payload = self.l1.get(key)
        if payload is not None:
            return payload, "l1"
        if self.l2 is not None:
            payload = self.l2.get(key)
            if payload is not None:
                nbytes = self.l2.size_of(key)
                self.l2.remove(key)
                self._spill(self.l1.put(key, payload, nbytes))
                return payload, "l2"
        return None, "miss"

    def put(self, key: Hashable, payload: Any, nbytes: int) -> list[tuple[Hashable, Any, int]]:
        """Insert into L1; returns items spilled to L2 (for cost charging)."""
        evicted = self.l1.put(key, payload, nbytes)
        self._spill(evicted)
        return evicted

    def _spill(self, evicted: list[tuple[Hashable, Any, int]]) -> None:
        if self.l2 is None:
            return
        for key, payload, nbytes in evicted:
            if key not in self.l2:
                self.l2.put(key, payload, nbytes)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.l1 or (self.l2 is not None and key in self.l2)

    def holds(self, key: Hashable) -> str | None:
        if key in self.l1:
            return "l1"
        if self.l2 is not None and key in self.l2:
            return "l2"
        return None

    def clear(self) -> None:
        self.l1.clear()
        if self.l2 is not None:
            self.l2.clear()
