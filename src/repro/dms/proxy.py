"""Per-node data proxies.

"Every computing node owns a data proxy that is responsible for the
retrieval of data asked for by a command.  Proxies act like a black box
with the possibility to change system parameters from outside but not
the result of a data request." (§4.1)

A proxy combines the node's two-tier cache, its name resolver, the
prefetcher, and — on every forced load — a strategy query to the
central data manager server.  All time costs are charged on the
simulated cluster: local-disk transfers for L2 crossings, fabric
messages for strategy queries and node-to-node transfers, fileserver
reads for cold loads.

Proxies are deliberately *not* arranged in work groups: they may
exchange data across group boundaries (the greedy cooperative cache).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..des.cluster import SimCluster, SimNode
from ..des.kernel import Environment, Event
from ..des.network import TransferToken
from ..grids.block import StructuredBlock
from .cache import CacheTier, TwoTierCache
from .compression import CompressionModel
from .items import ItemName, NameResolver
from .loading import LoadContext, NodeTransferLoad
from .prefetch import NoPrefetcher, Prefetcher
from .server import DataManagerServer
from .source import BlockSource
from .stats import DMSStatistics

__all__ = ["DMSConfig", "DataProxy"]

#: size of the strategy-query / reply messages on the fabric.
_QUERY_BYTES = 256


@dataclass
class DMSConfig:
    """Tunable parameters of one proxy (the "black box" dials)."""

    l1_capacity: int = 2 * 1024**3
    l2_capacity: int | None = 8 * 1024**3  #: None disables the disk tier
    replacement: str = "fbr"
    enable_prefetch: bool = True
    #: extra fabric round trip to the server per forced load (§4.3).
    strategy_query: bool = True
    #: cap on concurrently in-flight prefetch loads per proxy; OBL is by
    #: definition one-block-lookahead, so speculative reads must not
    #: stampede the fileserver ahead of demand misses.
    max_inflight_prefetches: int = 4
    #: cluster-wide single flight: concurrent commands/tenants hitting
    #: the same item dedupe to one physical load, with followers
    #: attaching to the winner's transfer and pulling the block over
    #: the fabric afterwards.  Off by default — the paper's per-proxy
    #: behavior, and the configuration the golden fingerprints pin.
    cluster_dedup: bool = False
    #: wire codec for fileserver/fabric transfer paths; ``None``
    #: reproduces the paper's call of shipping raw bytes.  With a codec
    #: set, every transfer makes a compress-vs-raw decision against the
    #: link's current effective bandwidth (see
    #: :meth:`DataProxy._wire_transfer`).
    compression: CompressionModel | None = None
    #: feed live link utilization (busy streams + queue depth per
    #: stream) into the strategy fitness functions instead of the bare
    #: queue length.  Off by default for fingerprint stability.
    contention_aware: bool = False
    #: the dataset is replicated on every node's scratch disk, enabling
    #: the paper's direct-from-hard-disk loading strategy.
    local_replica: bool = False


class DataProxy:
    """One node's gateway to named data items."""

    def __init__(
        self,
        env: Environment,
        cluster: SimCluster,
        node: SimNode,
        server: DataManagerServer,
        source: BlockSource,
        config: DMSConfig | None = None,
        prefetcher: Prefetcher | None = None,
        trace=None,
        tracer=None,
    ):
        self.env = env
        self.cluster = cluster
        self.node = node
        self.server = server
        self.source = source
        self.config = config or DMSConfig()
        l1 = CacheTier(self.config.l1_capacity, self.config.replacement, name="l1")
        l2 = (
            CacheTier(self.config.l2_capacity, self.config.replacement, name="l2")
            if self.config.l2_capacity
            else None
        )
        self.cache = TwoTierCache(l1, l2)
        self.resolver = NameResolver(server.names)
        self.prefetcher = prefetcher if prefetcher is not None else NoPrefetcher()
        self.stats = DMSStatistics()
        self.trace = trace
        self.tracer = tracer  #: optional repro.obs.SpanTracer
        self._inflight: dict[int, Event] = {}
        self._inflight_tokens: dict[int, "TransferToken"] = {}
        self._inflight_prefetches = 0
        #: tenant whose command this proxy's worker is currently
        #: serving; the scheduler sets it while the work group is held
        #: (groups are exclusive, so one value per proxy suffices).
        self.current_tenant = "default"

    # ---------------------------------------------------------- helpers
    def holds(self, item: ItemName) -> str | None:
        return self.cache.holds(self.resolver.resolve(item))

    def _admit(self, ident: int, payload: StructuredBlock, nbytes: int) -> list:
        spilled = self.cache.put(ident, payload, nbytes)
        self.server.register_holder(ident, self.node.node_id)
        # Items that fell out of both tiers are gone from this node.
        for key, _payload, _nb in spilled:
            if self.cache.holds(key) is None:
                self.server.unregister_holder(key, self.node.node_id)
                self.stats.forget_prefetched(key)
        return spilled

    def _build_context(self, ident: int, nbytes: int) -> LoadContext:
        # Bandwidths are *effective* values: fault episodes degrade a
        # link, and the fitness functions should see that degradation so
        # the selector can route around a slow fileserver (§4.3's
        # "react on environment changes").
        cfg = self.cluster.config
        extra = {}
        if self.config.contention_aware:
            # Live utilization: transfers holding a stream right now,
            # and how many streams each link actually has.  The default
            # context (0 busy / 1 stream) reduces the pressure term to
            # the bare queue depth, so turning this on is the only way
            # fitness scores can differ from the original model.
            fs_wire = self.cluster.fileserver._wire
            fab_wire = self.cluster.fabric._wire
            extra = dict(
                fileserver_busy=fs_wire.count,
                fileserver_streams=fs_wire.capacity,
                fabric_busy=fab_wire.count,
                fabric_streams=fab_wire.capacity,
            )
        return LoadContext(
            key=ident,
            nbytes=nbytes,
            requester=self.node.node_id,
            holders=self.server.holders(ident),
            fileserver_queue=self.cluster.fileserver._wire.queue_len,
            fabric_queue=self.cluster.fabric._wire.queue_len,
            concurrent_requesters=self.server.concurrent_requesters(ident),
            fileserver_bandwidth=self.cluster.fileserver.effective_bandwidth,
            fileserver_latency=cfg.fileserver_latency,
            fabric_bandwidth=self.cluster.fabric.effective_bandwidth,
            fabric_latency=cfg.fabric_latency,
            fileserver_reliability=self.server.fileserver_reliability,
            local_replica=self.config.local_replica,
            local_disk_bandwidth=self.node.local_disk.effective_bandwidth,
            local_disk_latency=cfg.local_disk_latency,
            **extra,
        )

    # ------------------------------------------------------------- wire
    def _wire_transfer(
        self,
        link_name: str,
        nbytes: int,
        priority: int = 0,
        token: "TransferToken | None" = None,
        parent_span=None,
    ) -> Generator[Event, None, None]:
        """Process body: move ``nbytes`` to this node over one link.

        ``link_name`` is ``"fileserver"`` or ``"fabric"``.  With a
        codec configured (``DMSConfig.compression``) each transfer
        makes a cost-aware compress-vs-raw call against the link's
        *current* effective bandwidth — nominal rate, fault
        degradation, and stream pressure all included — so the same
        codec ships raw on an idle shared-memory fabric (the paper's
        2004 judgement) and compressed over a congested or WAN-grade
        fileserver link.  Codec seconds run on this node's CPU (the
        model gives neither the fileserver nor a donor node a CPU of
        its own) inside ``decompress``-kind spans, which the
        critical-path taxonomy charges to the ``decompress`` phase.
        """
        codec = self.config.compression
        link = (
            self.cluster.fileserver
            if link_name == "fileserver"
            else self.cluster.fabric
        )
        if codec is not None:
            wire = link._wire
            pressure = (wire.count + wire.queue_len) / wire.capacity
            eff = link.effective_bandwidth / (1.0 + pressure)
            if codec.worthwhile(nbytes, eff, link.latency):
                compress_s = nbytes / codec.compress_rate
                decompress_s = nbytes / codec.decompress_rate
                wire_bytes = max(1, int(nbytes * codec.ratio))
                rate = self.node.config.cpu_rate
                cspan = None
                if self.tracer is not None:
                    cspan = self.tracer.begin(
                        "decompress", name=f"{codec.name}-compress",
                        node=self.node.node_id, parent=parent_span,
                        nbytes=nbytes, link=link_name,
                    )
                yield from self.node.compute(compress_s * rate)
                if cspan is not None:
                    self.tracer.end(cspan)
                if link_name == "fileserver":
                    yield from self.cluster.read_fileserver(
                        self.node, wire_bytes, priority=priority, token=token
                    )
                else:
                    yield from self.cluster.fabric_transfer(
                        self.node, wire_bytes, account="read"
                    )
                dspan = None
                if self.tracer is not None:
                    dspan = self.tracer.begin(
                        "decompress", name=f"{codec.name}-decompress",
                        node=self.node.node_id, parent=parent_span,
                        nbytes=nbytes, link=link_name,
                    )
                yield from self.node.compute(decompress_s * rate)
                if dspan is not None:
                    self.tracer.end(dspan)
                self.stats.record_compression(
                    "compress", nbytes, wire_bytes, compress_s + decompress_s
                )
                return
            self.stats.record_compression("raw", nbytes, nbytes, 0.0)
        if link_name == "fileserver":
            yield from self.cluster.read_fileserver(
                self.node, nbytes, priority=priority, token=token
            )
        else:
            yield from self.cluster.fabric_transfer(
                self.node, nbytes, account="read"
            )

    # ------------------------------------------------------------- load
    def _forced_load(
        self,
        item: ItemName,
        ident: int,
        nbytes: int,
        demand: bool,
        token: "TransferToken | None" = None,
        parent_span=None,
    ) -> Generator[Event, None, StructuredBlock]:
        """Process body: run one forced load, charging simulated time."""
        self.server.note_request_start(ident)
        span = None
        strategy_name: str | None = None
        span_attrs: dict = {}
        flight = None
        if self.tracer is not None:
            span = self.tracer.begin(
                "dms-strategy-load", name=str(item), node=self.node.node_id,
                parent=parent_span, demand=demand, nbytes=nbytes,
            )
        try:
            t_load = self.env.now
            # A stalled server (fault injection) answers nothing until
            # the stall ends; the proxy blocks rather than losing the
            # request, so commands still terminate.
            stall = self.server.stall_extra(self.env.now)
            if stall > 0.0:
                yield self.env.timeout(stall)
            if self.config.strategy_query:
                # Ask the central server which strategy to use (§4.3's
                # "additional communication for every load operation").
                yield from self.cluster.fabric_transfer(
                    self.node, _QUERY_BYTES, account="other"
                )
            if self.config.cluster_dedup:
                # Cluster-wide single flight: if another node is already
                # loading this item, attach to its flight instead of
                # issuing a second physical load; on wake-up, pull the
                # block from the winner's cache over the fabric.  A
                # failed winner (crash mid-load) leaves no holder, and
                # the follower loops back to contend for the flight
                # itself — nothing ever hangs on a dead flight.
                while True:
                    entry = self.server.flight_entry(ident)
                    if entry is None:
                        flight = self.server.flight_begin(
                            ident, self.node.node_id, self.env.event(),
                            tenant=self.current_tenant, nbytes=nbytes,
                        )
                        break
                    if entry.node == self.node.node_id:
                        # This node already owns the flight (re-load
                        # after a mid-wait eviction): just load again.
                        break
                    self.server.flight_attach(entry, tenant=self.current_tenant)
                    self.stats.record_dedup_follow(nbytes)
                    span_attrs["dedup"] = "follow"
                    span_attrs["winner"] = entry.node
                    yield entry.event
                    if self.server.holders(ident) - {self.node.node_id}:
                        yield from self._wire_transfer(
                            "fabric", nbytes, parent_span=span
                        )
                        strategy_name = "dedup-follow"
                        self.stats.record_load(
                            strategy_name, nbytes, self.env.now - t_load
                        )
                        if self.trace is not None:
                            self.trace.record(
                                self.env.now, self.node.node_id, "load",
                                item=str(item), strategy=strategy_name,
                                nbytes=nbytes, demand=demand,
                            )
                        payload = self.source.get(item)
                        spilled = self._admit(ident, payload, nbytes)
                        if self.cache.l2 is not None:
                            for _key, _p, spill_bytes in spilled:
                                yield from self.node.write_local(spill_bytes)
                        return payload
            strategy = self.server.choose_strategy(
                self._build_context(ident, nbytes)
            )
            strategy_name = strategy.name
            priority = 0 if demand else 1  # prefetch I/O yields to demand
            if isinstance(strategy, NodeTransferLoad):
                yield from self._wire_transfer(
                    "fabric", nbytes, parent_span=span
                )
            elif strategy.name == "collective":
                k = self.server.concurrent_requesters(ident)
                # One shared fileserver read, then a fabric broadcast;
                # the shared read's cost is split across participants.
                yield from self._wire_transfer(
                    "fileserver", nbytes // max(k, 1), priority=priority,
                    parent_span=span,
                )
                yield from self._wire_transfer(
                    "fabric", nbytes, parent_span=span
                )
            elif strategy.name == "direct-disk":
                # The dataset replica on this node's scratch disk.
                yield from self.node.read_local(nbytes)
            else:
                yield from self._wire_transfer(
                    "fileserver", nbytes, priority=priority, token=token,
                    parent_span=span,
                )
            self.stats.record_load(strategy.name, nbytes, self.env.now - t_load)
            if self.trace is not None:
                self.trace.record(
                    self.env.now,
                    self.node.node_id,
                    "load",
                    item=str(item),
                    strategy=strategy.name,
                    nbytes=nbytes,
                    demand=demand,
                )
            payload = self.source.get(item)
            spilled = self._admit(ident, payload, nbytes)
            # Spills to the disk tier cost a local write.
            if self.cache.l2 is not None:
                for _key, _p, spill_bytes in spilled:
                    yield from self.node.write_local(spill_bytes)
            return payload
        finally:
            if flight is not None:
                self.server.flight_end(flight)
                if flight.followers:
                    span_attrs["dedup_followers"] = flight.followers
            if span is not None:
                if strategy_name:
                    span_attrs["strategy"] = strategy_name
                self.tracer.end(span, **span_attrs)
            self.server.note_request_end(ident)

    # ---------------------------------------------------------- request
    def request(
        self, item: ItemName, parent_span=None
    ) -> Generator[Event, None, StructuredBlock]:
        """Process body: return the block for ``item`` (demand access)."""
        ident = self.resolver.resolve(item)
        lookup = None
        if self.tracer is not None:
            lookup = self.tracer.begin(
                "dms-lookup", name=str(item), node=self.node.node_id,
                parent=parent_span,
            )
        payload, where = self.cache.get(ident)
        self.stats.record_request(ident, where)
        try:
            if where == "l2":
                # Promotion from the disk tier costs a local read.
                yield from self.node.read_local(self.source.modeled_bytes(item))
        finally:
            if lookup is not None and lookup.t_end is None:
                self.tracer.end(lookup, where=where)
        if payload is None:
            pending = self._inflight.get(ident)
            if pending is not None:
                # Demand now depends on an in-flight (possibly
                # background-priority) load: escalate it.
                boost = self._inflight_tokens.get(ident)
                if boost is not None:
                    boost.boost()
                self.stats.record_inflight_hit(ident)
                t_wait = self.env.now
                yield pending
                self.node.breakdown.read += self.env.now - t_wait
                payload, _ = self.cache.get(ident)
                if payload is None:  # evicted between load and wakeup
                    payload = yield from self._forced_load(
                        item, ident, self.source.modeled_bytes(item),
                        demand=True, parent_span=parent_span,
                    )
            else:
                done = self.env.event()
                self._inflight[ident] = done
                try:
                    payload = yield from self._forced_load(
                        item, ident, self.source.modeled_bytes(item),
                        demand=True, parent_span=parent_span,
                    )
                finally:
                    del self._inflight[ident]
                    done.succeed()
        self._issue_prefetches(item, was_hit=where != "miss", parent_span=parent_span)
        return payload

    # ---------------------------------------------------------- derived
    def lookup_derived(
        self, item: ItemName, count_miss: bool = True
    ) -> tuple[Any, str | None]:
        """Cache-only lookup of a derived item (no load path exists).

        Derived items are computed, not read, so a miss has no transfer
        strategy to fall back on — the caller recomputes and calls
        :meth:`store_derived`.  Returns ``(payload, where)`` with
        ``where`` in ``("l1", "l2")`` on a hit and ``None`` on a miss.
        ``count_miss=False`` keeps a *probe* miss out of the statistics:
        the caller will look up again (and then miss for real) once it
        has gathered the inputs to derive the item.
        """
        ident = self.resolver.resolve(item)
        payload, where = self.cache.get(ident)
        if payload is not None:
            self.stats.record_derived(where)
        elif count_miss:
            self.stats.record_derived(None)
        return payload, (where if payload is not None else None)

    def store_derived(
        self, item: ItemName, payload: Any, nbytes: int
    ) -> Generator[Event, None, None]:
        """Process body: admit a freshly derived item, charging spills."""
        ident = self.resolver.resolve(item)
        spilled = self._admit(ident, payload, nbytes)
        # Spills to the disk tier cost a local write.
        if self.cache.l2 is not None:
            for _key, _p, spill_bytes in spilled:
                yield from self.node.write_local(spill_bytes)

    # --------------------------------------------------------- prefetch
    def _issue_prefetches(
        self, item: ItemName, was_hit: bool, parent_span=None
    ) -> None:
        suggestions = self.prefetcher.observe(item, was_hit)
        if not self.config.enable_prefetch:
            return
        for suggestion in suggestions:
            self.prefetch(suggestion, parent_span=parent_span)

    def prefetch(self, item: ItemName, parent_span=None) -> bool:
        """Start a background load of ``item``; returns True if issued.

        Used both by the system prefetcher and for code prefetching,
        where "the worker command itself is responsible to determine a
        suitable code location and a useful time" (§4.2).
        """
        ident = self.resolver.resolve(item)
        # Prefetch only opportunistically: skip when already cached or
        # in flight, when this proxy's lookahead budget is in use, or
        # when demand reads are already queueing at the fileserver — at
        # saturation a speculative read cannot help (it only adds bytes
        # to the binding resource), so it must not be issued at all.
        if (
            self.cache.holds(ident) is not None
            or ident in self._inflight
            or self._inflight_prefetches >= self.config.max_inflight_prefetches
            or self.cluster.fileserver._wire.queue_len > 0
        ):
            self.stats.record_prefetch(ident, issued=False)
            return False
        done = self.env.event()
        token = TransferToken(self.env)
        self._inflight[ident] = done
        self._inflight_tokens[ident] = token
        self._inflight_prefetches += 1

        def runner():
            pspan = None
            if self.tracer is not None:
                pspan = self.tracer.begin(
                    "dms-prefetch", name=str(item), node=self.node.node_id,
                    parent=parent_span,
                )
            try:
                yield from self._forced_load(
                    item,
                    ident,
                    self.source.modeled_bytes(item),
                    demand=False,
                    token=token,
                    parent_span=pspan,
                )
            finally:
                if pspan is not None:
                    self.tracer.end(pspan)
                del self._inflight[ident]
                del self._inflight_tokens[ident]
                self._inflight_prefetches -= 1
                done.succeed()

        self.env.process(runner(), name=f"prefetch-{ident}")
        self.stats.record_prefetch(ident, issued=True)
        return True
