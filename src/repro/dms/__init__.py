"""The Viracocha Data Management System (paper §4)."""

from .items import ItemName, NameResolver, NameService, block_item
from .policies import FBRPolicy, LFUPolicy, LRUPolicy, make_policy
from .cache import CacheStats, CacheTier, TwoTierCache
from .prefetch import (
    BlockMarkovPrefetcher,
    MarkovOBLPrefetcher,
    MarkovPrefetcher,
    NoPrefetcher,
    OBLPrefetcher,
    PrefetchOnMissPrefetcher,
    Prefetcher,
    SequenceOrder,
    make_prefetcher,
)
from .compression import CompressionModel, GZIP_2004, LZO_2004, ZSTD_2020
from .loading import (
    AdaptiveSelector,
    CollectiveLoad,
    FileServerLoad,
    LoadContext,
    LoadingStrategy,
    LocalDiskLoad,
    NodeTransferLoad,
)
from .stats import DMSStatistics
from .server import DataManagerServer, InflightLoad
from .source import BlockSource, StoreSource, SyntheticSource
from .proxy import DataProxy, DMSConfig

__all__ = [
    "ItemName",
    "NameResolver",
    "NameService",
    "block_item",
    "FBRPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "make_policy",
    "CacheStats",
    "CacheTier",
    "TwoTierCache",
    "BlockMarkovPrefetcher",
    "MarkovOBLPrefetcher",
    "MarkovPrefetcher",
    "NoPrefetcher",
    "OBLPrefetcher",
    "PrefetchOnMissPrefetcher",
    "Prefetcher",
    "SequenceOrder",
    "make_prefetcher",
    "AdaptiveSelector",
    "CollectiveLoad",
    "CompressionModel",
    "GZIP_2004",
    "LZO_2004",
    "ZSTD_2020",
    "FileServerLoad",
    "LoadContext",
    "LoadingStrategy",
    "LocalDiskLoad",
    "NodeTransferLoad",
    "DMSStatistics",
    "DataManagerServer",
    "InflightLoad",
    "BlockSource",
    "StoreSource",
    "SyntheticSource",
    "DataProxy",
    "DMSConfig",
]
