"""Loading strategies and adaptive, fitness-based strategy selection.

"The Viracocha-DMS provides a set of loading strategies.  A centralized
component located at the scheduler node decides on their usage. [...]
This decision is made based on a fitness function that depends on one
or more parameters like bandwidth, reliability, or latency." (§4.3)

Strategies implemented, as in the paper: direct loading from the (hard
disk /) file server, transferring data across computing nodes (the
greedy cooperative cache), and collective I/O.  The selector estimates
each candidate's effective throughput for the request at hand and picks
the fittest; the extra round-trip to ask the server is charged by the
proxy ("The drawback is additional communication for every load
operation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

__all__ = [
    "LoadContext",
    "LoadingStrategy",
    "FileServerLoad",
    "NodeTransferLoad",
    "CollectiveLoad",
    "AdaptiveSelector",
]


@dataclass(frozen=True)
class LoadContext:
    """Everything the fitness functions may consult for one request.

    Bandwidths are the links' *effective* (possibly fault-degraded)
    values at request time, not the nominal hardware figures — a
    slow-disk or slow-fileserver episode injected by :mod:`repro.faults`
    lowers them, and the fitness ranking then steers loads toward the
    cooperative cache until the episode ends.
    """

    key: Hashable
    nbytes: int
    requester: int  #: node id
    holders: frozenset[int] = frozenset()  #: nodes whose caches hold the item
    fileserver_queue: int = 0  #: transfers currently queued at the fileserver
    fabric_queue: int = 0
    concurrent_requesters: int = 1  #: nodes requesting this item right now
    fileserver_bandwidth: float = 1.0  #: effective (degraded) bytes/s
    fileserver_latency: float = 0.0
    fabric_bandwidth: float = 1.0  #: effective (degraded) bytes/s
    fabric_latency: float = 0.0
    fileserver_reliability: float = 1.0  #: 0..1; degraded on observed failures


class LoadingStrategy:
    """Interface: availability test plus a fitness score (higher = better)."""

    name = "base"

    def available(self, ctx: LoadContext) -> bool:
        raise NotImplementedError

    def fitness(self, ctx: LoadContext) -> float:
        """Estimated effective throughput (bytes/s) for this request."""
        raise NotImplementedError


class FileServerLoad(LoadingStrategy):
    """Direct read from the network file server (always possible)."""

    name = "fileserver"

    def available(self, ctx: LoadContext) -> bool:
        return True

    def fitness(self, ctx: LoadContext) -> float:
        # Queued transfers share the server; latency converts to an
        # equivalent bandwidth loss for this transfer size.
        eff = ctx.fileserver_bandwidth / (1.0 + ctx.fileserver_queue)
        t = ctx.fileserver_latency + ctx.nbytes / max(eff, 1e-9)
        return ctx.fileserver_reliability * ctx.nbytes / max(t, 1e-12)


class NodeTransferLoad(LoadingStrategy):
    """Fetch from another node's cache over the fabric.

    "Data transfer across nodes forms a sort of cooperative cache
    pursuing a greedy caching strategy since no duplicates are deleted
    and every proxy manages its local cache independently." (§4.3)
    """

    name = "node-transfer"

    def available(self, ctx: LoadContext) -> bool:
        return bool(ctx.holders - {ctx.requester})

    def fitness(self, ctx: LoadContext) -> float:
        eff = ctx.fabric_bandwidth / (1.0 + ctx.fabric_queue)
        t = ctx.fabric_latency + ctx.nbytes / max(eff, 1e-9)
        return ctx.nbytes / max(t, 1e-12)

    def pick_holder(self, ctx: LoadContext) -> int:
        """Deterministic donor choice: the lowest-numbered other holder."""
        return min(ctx.holders - {ctx.requester})


class CollectiveLoad(LoadingStrategy):
    """Coordinated read when several nodes want the same item at once.

    One node reads from the file server and broadcasts over the fabric.
    The paper finds this "of limited use in Viracocha because
    coordinating proxies [...] is more expensive than the benefit" —
    the coordination overhead below makes the selector reach the same
    conclusion except at genuine cold-start stampedes.
    """

    name = "collective"

    #: fixed coordination cost in seconds (barrier + bookkeeping).
    coordination_overhead = 0.01

    def available(self, ctx: LoadContext) -> bool:
        return ctx.concurrent_requesters > 1

    def fitness(self, ctx: LoadContext) -> float:
        k = ctx.concurrent_requesters
        read = ctx.fileserver_latency + ctx.nbytes / max(
            ctx.fileserver_bandwidth / (1.0 + ctx.fileserver_queue), 1e-9
        )
        bcast = ctx.fabric_latency + ctx.nbytes / max(ctx.fabric_bandwidth, 1e-9)
        # Per-requester effective time: one shared read, one broadcast,
        # plus coordination, versus k independent reads without it.
        t = (read / k) + bcast + self.coordination_overhead
        return ctx.fileserver_reliability * ctx.nbytes / max(t, 1e-12)


class AdaptiveSelector:
    """Central strategy chooser living at the scheduler node.

    ``adaptive=False`` pins the file server strategy (the ablation
    baseline); otherwise the available strategy with the best fitness
    wins.
    """

    def __init__(
        self,
        strategies: Sequence[LoadingStrategy] | None = None,
        adaptive: bool = True,
    ):
        self.strategies = (
            list(strategies)
            if strategies is not None
            else [FileServerLoad(), NodeTransferLoad(), CollectiveLoad()]
        )
        if not self.strategies:
            raise ValueError("need at least one loading strategy")
        self.adaptive = adaptive
        self.decisions: dict[str, int] = {s.name: 0 for s in self.strategies}
        #: fitness scores of the last adaptive decision, by strategy —
        #: observability into *why* the selector chose what it chose.
        self.last_fitness: dict[str, float] = {}

    def select(self, ctx: LoadContext) -> LoadingStrategy:
        if not self.adaptive:
            chosen = self.strategies[0]
        else:
            candidates = [s for s in self.strategies if s.available(ctx)]
            if not candidates:
                raise LookupError(f"no loading strategy available for {ctx.key!r}")
            self.last_fitness = {s.name: s.fitness(ctx) for s in candidates}
            chosen = max(candidates, key=lambda s: self.last_fitness[s.name])
        self.decisions[chosen.name] = self.decisions.get(chosen.name, 0) + 1
        return chosen

    def publish_metrics(self, registry) -> None:
        """Gauge the most recent fitness scores into a registry."""
        for name, score in sorted(self.last_fitness.items()):
            registry.gauge(
                "viracocha_dms_strategy_fitness",
                {"strategy": name},
                help="effective-throughput fitness of the last adaptive decision",
            ).set(score)
