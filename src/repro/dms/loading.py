"""Loading strategies and adaptive, fitness-based strategy selection.

"The Viracocha-DMS provides a set of loading strategies.  A centralized
component located at the scheduler node decides on their usage. [...]
This decision is made based on a fitness function that depends on one
or more parameters like bandwidth, reliability, or latency." (§4.3)

Strategies implemented, as in the paper: direct loading from the (hard
disk /) file server, transferring data across computing nodes (the
greedy cooperative cache), and collective I/O.  The selector estimates
each candidate's effective throughput for the request at hand and picks
the fittest; the extra round-trip to ask the server is charged by the
proxy ("The drawback is additional communication for every load
operation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

__all__ = [
    "LoadContext",
    "LoadingStrategy",
    "FileServerLoad",
    "NodeTransferLoad",
    "CollectiveLoad",
    "LocalDiskLoad",
    "AdaptiveSelector",
]


@dataclass(frozen=True)
class LoadContext:
    """Everything the fitness functions may consult for one request.

    Bandwidths are the links' *effective* (possibly fault-degraded)
    values at request time, not the nominal hardware figures — a
    slow-disk or slow-fileserver episode injected by :mod:`repro.faults`
    lowers them, and the fitness ranking then steers loads toward the
    cooperative cache until the episode ends.
    """

    key: Hashable
    nbytes: int
    requester: int  #: node id
    holders: frozenset[int] = frozenset()  #: nodes whose caches hold the item
    fileserver_queue: int = 0  #: transfers currently queued at the fileserver
    fabric_queue: int = 0
    concurrent_requesters: int = 1  #: nodes requesting this item right now
    fileserver_bandwidth: float = 1.0  #: effective (degraded) bytes/s
    fileserver_latency: float = 0.0
    fabric_bandwidth: float = 1.0  #: effective (degraded) bytes/s
    fabric_latency: float = 0.0
    fileserver_reliability: float = 1.0  #: 0..1; degraded on observed failures
    # Live utilization (contention-aware fitness).  ``*_busy`` counts
    # transfers currently *holding* a stream, ``*_streams`` is the
    # link's parallel-stream capacity.  The defaults (0 busy across 1
    # stream) make the pressure term collapse to the plain queue depth,
    # so fitness scores are bit-identical to the pre-contention model
    # unless a proxy populates the live values
    # (``DMSConfig.contention_aware``).
    fileserver_busy: int = 0
    fileserver_streams: int = 1
    fabric_busy: int = 0
    fabric_streams: int = 1
    #: the dataset is replicated on the requester's scratch disk, so the
    #: paper's "hard disk" direct-load strategy is a real candidate.
    local_replica: bool = False
    local_disk_bandwidth: float = 0.0  #: effective (degraded) bytes/s
    local_disk_latency: float = 0.0

    @property
    def fileserver_pressure(self) -> float:
        """Occupied-plus-queued transfers per fileserver stream."""
        return (self.fileserver_busy + self.fileserver_queue) / self.fileserver_streams

    @property
    def fabric_pressure(self) -> float:
        """Occupied-plus-queued transfers per fabric stream."""
        return (self.fabric_busy + self.fabric_queue) / self.fabric_streams


class LoadingStrategy:
    """Interface: availability test plus a fitness score (higher = better)."""

    name = "base"

    def available(self, ctx: LoadContext) -> bool:
        raise NotImplementedError

    def fitness(self, ctx: LoadContext) -> float:
        """Estimated effective throughput (bytes/s) for this request."""
        raise NotImplementedError


class FileServerLoad(LoadingStrategy):
    """Direct read from the network file server (always possible)."""

    name = "fileserver"

    def available(self, ctx: LoadContext) -> bool:
        return True

    def fitness(self, ctx: LoadContext) -> float:
        # Busy and queued transfers share the server's streams; latency
        # converts to an equivalent bandwidth loss for this transfer
        # size.  With the default (no live-utilization) context the
        # pressure term is exactly the queue depth.
        eff = ctx.fileserver_bandwidth / (1.0 + ctx.fileserver_pressure)
        t = ctx.fileserver_latency + ctx.nbytes / max(eff, 1e-9)
        return ctx.fileserver_reliability * ctx.nbytes / max(t, 1e-12)


class NodeTransferLoad(LoadingStrategy):
    """Fetch from another node's cache over the fabric.

    "Data transfer across nodes forms a sort of cooperative cache
    pursuing a greedy caching strategy since no duplicates are deleted
    and every proxy manages its local cache independently." (§4.3)
    """

    name = "node-transfer"

    def available(self, ctx: LoadContext) -> bool:
        return bool(ctx.holders - {ctx.requester})

    def fitness(self, ctx: LoadContext) -> float:
        eff = ctx.fabric_bandwidth / (1.0 + ctx.fabric_pressure)
        t = ctx.fabric_latency + ctx.nbytes / max(eff, 1e-9)
        return ctx.nbytes / max(t, 1e-12)

    def pick_holder(self, ctx: LoadContext) -> int:
        """Deterministic donor choice: the lowest-numbered other holder."""
        return min(ctx.holders - {ctx.requester})


class CollectiveLoad(LoadingStrategy):
    """Coordinated read when several nodes want the same item at once.

    One node reads from the file server and broadcasts over the fabric.
    The paper finds this "of limited use in Viracocha because
    coordinating proxies [...] is more expensive than the benefit" —
    the coordination overhead below makes the selector reach the same
    conclusion except at genuine cold-start stampedes.
    """

    name = "collective"

    #: fixed coordination cost in seconds (barrier + bookkeeping).
    coordination_overhead = 0.01

    def available(self, ctx: LoadContext) -> bool:
        return ctx.concurrent_requesters > 1

    def fitness(self, ctx: LoadContext) -> float:
        k = ctx.concurrent_requesters
        read = ctx.fileserver_latency + ctx.nbytes / max(
            ctx.fileserver_bandwidth / (1.0 + ctx.fileserver_pressure), 1e-9
        )
        # The broadcast is a one-shot push on the fabric; queue depth is
        # deliberately *not* folded in here (a broadcast rides the next
        # free stream), keeping the term identical to the original model.
        bcast = ctx.fabric_latency + ctx.nbytes / max(ctx.fabric_bandwidth, 1e-9)
        # Per-requester effective time: one shared read, one broadcast,
        # plus coordination, versus k independent reads without it.
        t = (read / k) + bcast + self.coordination_overhead
        return ctx.fileserver_reliability * ctx.nbytes / max(t, 1e-12)


class LocalDiskLoad(LoadingStrategy):
    """Direct read from a node-local dataset replica.

    §4.3 names "loading data directly from hard disc" as the first of
    the strategy set; it only makes sense when the dataset (or the
    requested timestep) is actually resident on the node's scratch disk
    — ``DMSConfig.local_replica`` asserts exactly that.  Its fitness
    needs no shared-resource pressure term: the scratch disk is private
    to the requester, which is precisely why it wins whenever the
    shared fileserver is remote, congested, or degraded.
    """

    name = "direct-disk"

    def available(self, ctx: LoadContext) -> bool:
        return ctx.local_replica and ctx.local_disk_bandwidth > 0.0

    def fitness(self, ctx: LoadContext) -> float:
        t = ctx.local_disk_latency + ctx.nbytes / max(
            ctx.local_disk_bandwidth, 1e-9
        )
        return ctx.nbytes / max(t, 1e-12)


class AdaptiveSelector:
    """Central strategy chooser living at the scheduler node.

    ``adaptive=False`` pins the file server strategy (the ablation
    baseline); otherwise the available strategy with the best fitness
    wins.
    """

    def __init__(
        self,
        strategies: Sequence[LoadingStrategy] | None = None,
        adaptive: bool = True,
    ):
        # FileServerLoad must stay first: ``adaptive=False`` pins
        # ``strategies[0]`` as the ablation baseline.  LocalDiskLoad is
        # inert unless a context carries ``local_replica=True``.
        self.strategies = (
            list(strategies)
            if strategies is not None
            else [
                FileServerLoad(),
                NodeTransferLoad(),
                CollectiveLoad(),
                LocalDiskLoad(),
            ]
        )
        if not self.strategies:
            raise ValueError("need at least one loading strategy")
        self.adaptive = adaptive
        self.decisions: dict[str, int] = {s.name: 0 for s in self.strategies}
        #: fitness scores of the last adaptive decision, by strategy —
        #: observability into *why* the selector chose what it chose.
        self.last_fitness: dict[str, float] = {}

    def select(self, ctx: LoadContext) -> LoadingStrategy:
        if not self.adaptive:
            chosen = self.strategies[0]
        else:
            candidates = [s for s in self.strategies if s.available(ctx)]
            if not candidates:
                raise LookupError(f"no loading strategy available for {ctx.key!r}")
            self.last_fitness = {s.name: s.fitness(ctx) for s in candidates}
            chosen = max(candidates, key=lambda s: self.last_fitness[s.name])
        self.decisions[chosen.name] = self.decisions.get(chosen.name, 0) + 1
        return chosen

    def publish_metrics(self, registry) -> None:
        """Gauge the most recent fitness scores into a registry."""
        for name, score in sorted(self.last_fitness.items()):
            registry.gauge(
                "viracocha_dms_strategy_fitness",
                {"strategy": name},
                help="effective-throughput fitness of the last adaptive decision",
            ).set(score)
