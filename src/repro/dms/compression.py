"""Compression trade-off model for data transfers.

The paper considered compressing node-to-node transfers in the
cooperative cache but rejected it: "Data compression has been
considered, too, but has been found ineffective due to long runtimes
and low compression rates compared to transmission time" (§4.3).

This module makes that engineering judgement reproducible: given a
codec's throughput and ratio and a link's bandwidth, it answers whether
compressing a transfer wins.  CFD float fields compress poorly (ratios
near 1.2-1.4 for lossless codecs of the era) and 2004-class CPUs
compressed at a few tens of MB/s — hopeless against a shared-memory
fabric, marginal even against fast LANs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CompressionModel", "GZIP_2004", "LZO_2004"]


@dataclass(frozen=True)
class CompressionModel:
    """One codec's characteristics on CFD block data."""

    name: str
    #: achieved size ratio (compressed / raw); CFD floats compress badly.
    ratio: float
    #: compression throughput in raw bytes/s.
    compress_rate: float
    #: decompression throughput in raw bytes/s.
    decompress_rate: float

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {self.ratio}")
        if self.compress_rate <= 0 or self.decompress_rate <= 0:
            raise ValueError("codec rates must be positive")

    def plain_time(self, nbytes: int, bandwidth: float, latency: float = 0.0) -> float:
        """Wire time for an uncompressed transfer."""
        return latency + nbytes / bandwidth

    def compressed_time(
        self, nbytes: int, bandwidth: float, latency: float = 0.0
    ) -> float:
        """End-to-end time: compress, ship the smaller payload, decompress.

        Compression and transfer are assumed non-overlapped (store-and-
        forward, as a simple sender-side implementation would behave).
        """
        return (
            nbytes / self.compress_rate
            + latency
            + (nbytes * self.ratio) / bandwidth
            + nbytes / self.decompress_rate
        )

    def worthwhile(self, nbytes: int, bandwidth: float, latency: float = 0.0) -> bool:
        """Does compressing this transfer reduce end-to-end time?"""
        return self.compressed_time(nbytes, bandwidth, latency) < self.plain_time(
            nbytes, bandwidth, latency
        )

    def breakeven_bandwidth(self) -> float:
        """Link bandwidth below which compression starts to pay off.

        Solves plain == compressed for the bandwidth (independent of the
        transfer size once latency is negligible).
        """
        codec = 1.0 / self.compress_rate + 1.0 / self.decompress_rate
        return (1.0 - self.ratio) / codec


#: gzip-class codec on float CFD blocks, 2004-era CPU.
GZIP_2004 = CompressionModel(
    name="gzip", ratio=0.75, compress_rate=15e6, decompress_rate=60e6
)

#: fast-but-weak LZO-class codec.
LZO_2004 = CompressionModel(
    name="lzo", ratio=0.85, compress_rate=80e6, decompress_rate=200e6
)
