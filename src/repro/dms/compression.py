"""Compression trade-off model for data transfers.

The paper considered compressing node-to-node transfers in the
cooperative cache but rejected it: "Data compression has been
considered, too, but has been found ineffective due to long runtimes
and low compression rates compared to transmission time" (§4.3).

This module makes that engineering judgement reproducible: given a
codec's throughput and ratio and a link's bandwidth, it answers whether
compressing a transfer wins.  CFD float fields compress poorly (ratios
near 1.2-1.4 for lossless codecs of the era) and 2004-class CPUs
compressed at a few tens of MB/s — hopeless against a shared-memory
fabric, marginal even against fast LANs.

Two decades later the trade flips: zstd-class codecs compress float
blocks at hundreds of MB/s per core, so on anything slower than a local
SAN (WAN hops, a 2004-class fileserver, a degraded link) shipping the
smaller payload wins.  :data:`ZSTD_2020` models that regime; the DMS
transfer path (:meth:`repro.dms.proxy.DataProxy` with
``DMSConfig.compression`` set) makes the compress-vs-raw call per
transfer against the link's *current* effective bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CompressionModel", "GZIP_2004", "LZO_2004", "ZSTD_2020"]


@dataclass(frozen=True)
class CompressionModel:
    """One codec's characteristics on CFD block data."""

    name: str
    #: achieved size ratio (compressed / raw); CFD floats compress badly.
    ratio: float
    #: compression throughput in raw bytes/s.
    compress_rate: float
    #: decompression throughput in raw bytes/s.
    decompress_rate: float

    def __post_init__(self) -> None:
        if not 0.0 < self.ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {self.ratio}")
        if self.compress_rate <= 0 or self.decompress_rate <= 0:
            raise ValueError("codec rates must be positive")

    def plain_time(self, nbytes: int, bandwidth: float, latency: float = 0.0) -> float:
        """Wire time for an uncompressed transfer (one message)."""
        return latency + nbytes / bandwidth

    def compressed_time(
        self, nbytes: int, bandwidth: float, latency: float = 0.0
    ) -> float:
        """End-to-end time: compress, ship the smaller payload, decompress.

        Compression and transfer are assumed non-overlapped (store-and-
        forward, as a simple sender-side implementation would behave).
        A compressed transfer costs one extra message round on top of
        the payload: the sender announces the compressed framing
        (codec, raw/compressed lengths) so the receiver can size its
        decompression buffer — so per-message latency is paid twice.
        """
        return (
            nbytes / self.compress_rate
            + 2.0 * latency
            + (nbytes * self.ratio) / bandwidth
            + nbytes / self.decompress_rate
        )

    def worthwhile(self, nbytes: int, bandwidth: float, latency: float = 0.0) -> bool:
        """Does compressing this transfer reduce end-to-end time?"""
        return self.compressed_time(nbytes, bandwidth, latency) < self.plain_time(
            nbytes, bandwidth, latency
        )

    def breakeven_bandwidth(self) -> float:
        """Link bandwidth below which compression starts to pay off.

        Solves plain == compressed for the bandwidth in the
        **latency-free regime**: the extra framing round a compressed
        transfer pays (see :meth:`compressed_time`) is dropped, which
        makes the break-even independent of the transfer size.  This is
        the large-transfer asymptote of
        :meth:`breakeven_bandwidth_at` — good to ~1% once the wire time
        dwarfs the link latency, increasingly optimistic about
        compression for small messages on high-latency links.  Use
        :meth:`breakeven_bandwidth_at` when latency matters.
        """
        codec = 1.0 / self.compress_rate + 1.0 / self.decompress_rate
        return (1.0 - self.ratio) / codec

    def breakeven_bandwidth_at(self, nbytes: int, latency: float = 0.0) -> float:
        """Exact break-even bandwidth for one transfer size and latency.

        Solves ``plain_time == compressed_time`` for the bandwidth with
        the framing round included: compression pays off on links slower
        than the returned value.  Converges to
        :meth:`breakeven_bandwidth` as ``nbytes / latency`` grows; for
        small transfers on chatty links the extra round trip eats the
        byte savings and the break-even drops toward zero (compression
        never worthwhile).
        """
        if nbytes <= 0:
            return 0.0
        codec = nbytes / self.compress_rate + nbytes / self.decompress_rate
        denominator = codec + latency
        return (1.0 - self.ratio) * nbytes / denominator


#: gzip-class codec on float CFD blocks, 2004-era CPU.
GZIP_2004 = CompressionModel(
    name="gzip", ratio=0.75, compress_rate=15e6, decompress_rate=60e6
)

#: fast-but-weak LZO-class codec.
LZO_2004 = CompressionModel(
    name="lzo", ratio=0.85, compress_rate=80e6, decompress_rate=200e6
)

#: zstd-class codec on float CFD blocks, modern core: ~400 MB/s in,
#: ~1.2 GB/s out at a ~0.65 size ratio.  Break-even ≈ 105 MB/s — above
#: the model's 60 MB/s fileserver, so the 2004 judgement flips for
#: every link slower than a local SAN while the 800 MB/s fabric still
#: prefers raw transfers.
ZSTD_2020 = CompressionModel(
    name="zstd", ratio=0.65, compress_rate=400e6, decompress_rate=1200e6
)
