"""The central data manager server (scheduler-node component).

"A centralized data server that resides at the scheduler node
coordinates all proxies.  It maintains information about the proxies'
local state and deals with data requests [...]  while the data manager
server contains a name server handling unambiguous identifiers, proxies
include a name resolver" (§4.1).

The server also hosts the adaptive loading-strategy selector (§4.3) and
the global holder registry that makes node-to-node transfers (the
greedy cooperative cache) possible.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Hashable

from .items import ItemName, NameService
from .loading import AdaptiveSelector, LoadContext
from .stats import DMSStatistics

__all__ = ["DataManagerServer", "InflightLoad"]


@dataclass
class InflightLoad:
    """One physical load registered in the cluster-wide flight table.

    The *winner* node performs the actual transfer; any other node that
    asks the server about the same item while the flight is open
    becomes a *follower*: it waits on ``event`` and then pulls the
    block from the winner's cache over the fabric instead of issuing a
    second physical load.
    """

    ident: int
    node: int  #: winner node id
    event: object  #: DES event; succeeds when the flight closes
    tenant: str = "default"
    nbytes: int = 0
    followers: int = 0
    #: tenants that attached as followers (cross-tenant sharing proof).
    follower_tenants: Counter = field(default_factory=Counter)


class DataManagerServer:
    """Central coordination state shared by all data proxies."""

    def __init__(self, selector: AdaptiveSelector | None = None):
        self.names = NameService()
        self.selector = selector if selector is not None else AdaptiveSelector()
        self._holders: dict[int, set[int]] = defaultdict(set)  # ident -> node ids
        self._inflight_counts: dict[int, int] = defaultdict(int)
        self.global_stats = DMSStatistics()
        self.strategy_queries = 0
        #: observed fileserver health in [0, 1]; failures decay it, and
        #: the fitness functions then steer loads toward other sources
        #: ("react on environment changes like ... file server
        #: failures", §4.3).
        self.fileserver_reliability = 1.0
        #: simulated time until which the server is stalled (fault
        #: injection): proxies wait out the stall before each strategy
        #: query, so a wedged central component shows up as load latency
        #: rather than as lost requests.
        self.stalled_until = 0.0
        self.stall_waits = 0
        #: cluster-wide single-flight table (``DMSConfig.cluster_dedup``):
        #: ident -> the one physical load currently in the air.
        self._flights: dict[int, InflightLoad] = {}
        #: flights that served at least one follower.
        self.dedup_flights = 0
        #: follower attaches across the whole session.
        self.dedup_followers = 0
        #: fileserver bytes followers did not re-read.
        self.dedup_bytes_saved = 0
        #: follower attaches by (winner tenant, follower tenant) — the
        #: cross-tenant sharing ledger for the serving layer.
        self.dedup_followers_by_tenant: Counter = Counter()

    # ---------------------------------------------------- health signals
    def report_fileserver_failure(self) -> None:
        self.fileserver_reliability = max(0.05, 0.5 * self.fileserver_reliability)

    def report_fileserver_success(self) -> None:
        self.fileserver_reliability = min(
            1.0, self.fileserver_reliability + 0.1 * (1.0 - self.fileserver_reliability)
        )

    # ----------------------------------------------------------- stalls
    def stall(self, now: float, duration: float) -> None:
        """Wedge the server until ``now + duration`` (fault injection)."""
        if duration < 0:
            raise ValueError(f"negative stall duration {duration}")
        self.stalled_until = max(self.stalled_until, now + duration)

    def stall_extra(self, now: float) -> float:
        """Seconds a proxy must wait before the server answers."""
        extra = self.stalled_until - now
        if extra > 0.0:
            self.stall_waits += 1
            return extra
        return 0.0

    # ------------------------------------------------------- registry
    def register_holder(self, ident: int, node: int) -> None:
        self._holders[ident].add(node)

    def unregister_holder(self, ident: int, node: int) -> None:
        self._holders[ident].discard(node)
        if not self._holders[ident]:
            del self._holders[ident]

    def holders(self, ident: int) -> frozenset[int]:
        return frozenset(self._holders.get(ident, ()))

    # ------------------------------------------------ cluster-wide flights
    def flight_entry(self, ident: int) -> InflightLoad | None:
        """The open flight for ``ident``, if any."""
        return self._flights.get(ident)

    def flight_begin(
        self, ident: int, node: int, event, tenant: str = "default",
        nbytes: int = 0,
    ) -> InflightLoad:
        """Register ``node`` as the winner of the physical load."""
        if ident in self._flights:
            raise RuntimeError(
                f"flight for {ident} already open (winner "
                f"{self._flights[ident].node}); check flight_entry first"
            )
        flight = InflightLoad(
            ident=ident, node=node, event=event, tenant=tenant, nbytes=nbytes
        )
        self._flights[ident] = flight
        return flight

    def flight_attach(self, flight: InflightLoad, tenant: str = "default") -> None:
        """Count one follower on an open flight."""
        flight.followers += 1
        flight.follower_tenants[tenant] += 1
        self.dedup_followers += 1
        self.dedup_bytes_saved += flight.nbytes
        self.dedup_followers_by_tenant[(flight.tenant, tenant)] += 1

    def flight_end(self, flight: InflightLoad) -> None:
        """Close a flight and wake every follower.

        Always called (win or crash) from the winner's ``finally``:
        followers must never hang on a dead flight.  They re-check the
        holder table on wake-up, so a failed winner just sends them
        back through the strategy machinery.
        """
        if self._flights.get(flight.ident) is flight:
            del self._flights[flight.ident]
            if flight.followers:
                self.dedup_flights += 1
        if not flight.event.triggered:
            flight.event.succeed()

    # ---------------------------------------------- concurrent requests
    def note_request_start(self, ident: int) -> None:
        self._inflight_counts[ident] += 1

    def note_request_end(self, ident: int) -> None:
        self._inflight_counts[ident] -= 1
        if self._inflight_counts[ident] <= 0:
            del self._inflight_counts[ident]

    def concurrent_requesters(self, ident: int) -> int:
        return max(1, self._inflight_counts.get(ident, 0))

    # ---------------------------------------------------- strategy query
    def choose_strategy(self, ctx: LoadContext):
        """Pick a loading strategy for one forced load (counted per call)."""
        self.strategy_queries += 1
        return self.selector.select(ctx)

    # ----------------------------------------------------------- metrics
    def publish_metrics(self, registry) -> None:
        """Sync server-side counters into a :class:`MetricsRegistry`.

        Idempotent per state (counters are set to current totals), like
        :meth:`repro.dms.stats.DMSStatistics.publish`.
        """
        registry.counter(
            "viracocha_dms_strategy_queries_total",
            help="strategy round-trips answered by the data manager server",
        ).set(self.strategy_queries)
        registry.gauge(
            "viracocha_fileserver_reliability",
            help="observed fileserver health in [0, 1]",
        ).set(self.fileserver_reliability)
        registry.counter(
            "viracocha_dms_server_stall_waits_total",
            help="proxy requests that had to wait out a server stall",
        ).set(self.stall_waits)
        for strategy, count in sorted(self.selector.decisions.items()):
            registry.counter(
                "viracocha_dms_strategy_decisions_total",
                {"strategy": strategy},
                help="adaptive selector decisions by strategy",
            ).set(count)
        # Dedup series appear only once cluster-wide single flight has
        # actually deduped something, keeping default runs' metric
        # tables unchanged.
        if self.dedup_followers:
            registry.counter(
                "viracocha_dms_dedup_flights_total",
                help="physical loads that served at least one follower",
            ).set(self.dedup_flights)
            registry.counter(
                "viracocha_dms_dedup_followers_total",
                help="forced loads deduped onto another node's flight",
            ).set(self.dedup_followers)
            registry.counter(
                "viracocha_dms_dedup_bytes_saved_total",
                help="fileserver bytes saved by cluster-wide single flight",
            ).set(self.dedup_bytes_saved)
            for (winner, follower), count in sorted(
                self.dedup_followers_by_tenant.items()
            ):
                if winner == "default" and follower == "default":
                    continue
                registry.counter(
                    "viracocha_dms_dedup_followers_total",
                    {"winner_tenant": winner, "follower_tenant": follower},
                    help="forced loads deduped onto another node's flight",
                ).set(count)
