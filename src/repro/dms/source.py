"""Block sources: where data items ultimately come from.

The DMS "handles raw data without any information about its type or
structure.  For accessing this data, manipulation methods have to be
implemented on the application layer" (§4).  A :class:`BlockSource` is
that application-layer manipulation method for multi-block CFD data: it
materializes a named item's payload and knows the item's modeled
(paper-scale) size for cost accounting.
"""

from __future__ import annotations

from typing import Protocol

from ..grids.block import StructuredBlock
from ..io.dataset_io import DatasetStore
from ..synth.base import SyntheticDataset
from .items import ItemName, block_item

__all__ = ["BlockSource", "SyntheticSource", "StoreSource"]


class BlockSource(Protocol):
    """Application-layer loader for named block items."""

    name: str

    def get(self, item: ItemName) -> StructuredBlock: ...

    def modeled_bytes(self, item: ItemName) -> int: ...

    def item_sequence(self, time_index: int) -> list[ItemName]: ...

    def handles(self, time_index: int = 0) -> list: ...

    @property
    def n_timesteps(self) -> int: ...

    @property
    def n_blocks(self) -> int: ...

    @property
    def times(self) -> list[float]: ...


def _indices(item: ItemName) -> tuple[int, int]:
    time_index = item.param("time")
    block_id = item.param("block")
    if time_index is None or block_id is None:
        raise KeyError(f"item {item} does not name a block (missing time/block)")
    return int(time_index), int(block_id)


class SyntheticSource:
    """Serves items straight from a :class:`SyntheticDataset` generator."""

    def __init__(self, dataset: SyntheticDataset):
        self.dataset = dataset
        self.name = dataset.spec.name

    def get(self, item: ItemName) -> StructuredBlock:
        t, b = _indices(item)
        return self.dataset.build_block(t, b)

    def modeled_bytes(self, item: ItemName) -> int:
        _, b = _indices(item)
        return self.dataset.spec.block_bytes(b)

    def item_sequence(self, time_index: int) -> list[ItemName]:
        return [
            block_item(self.name, time_index, b)
            for b in range(self.dataset.spec.n_blocks)
        ]

    def handles(self, time_index: int = 0) -> list:
        return self.dataset.handles(time_index)

    @property
    def n_timesteps(self) -> int:
        return self.dataset.spec.n_timesteps

    @property
    def n_blocks(self) -> int:
        return self.dataset.spec.n_blocks

    @property
    def times(self) -> list[float]:
        return self.dataset.spec.times


class StoreSource:
    """Serves items from an on-disk :class:`DatasetStore`.

    Payloads materialize through the zero-copy path: mmap-backed
    buffers parsed by :func:`~repro.io.format.block_from_buffer` with
    lazy per-field float64 upcasts, so a forced load (and the proxy's
    node-to-node transfer path that re-materializes the item) never
    pays the eager ``<f4`` → float64 doubling for fields the command
    does not touch.  Set ``lazy=False`` to restore eager reads.
    """

    def __init__(self, store: DatasetStore, lazy: bool = True):
        self.store = store
        self.name = store.name
        self.lazy = lazy

    def get(self, item: ItemName) -> StructuredBlock:
        t, b = _indices(item)
        return self.store.read_block(t, b, lazy=self.lazy)

    def get_bytes(self, item: ItemName) -> memoryview:
        """The item's serialized payload (mmap-backed, no copies)."""
        t, b = _indices(item)
        return self.store.block_buffer(t, b)

    def modeled_bytes(self, item: ItemName) -> int:
        _, b = _indices(item)
        rec = self.store.meta["blocks"][b]
        ni, nj, nk = rec["modeled_shape"]
        from ..synth.base import BYTES_PER_POINT

        return ni * nj * nk * BYTES_PER_POINT

    def item_sequence(self, time_index: int) -> list[ItemName]:
        return [
            block_item(self.name, time_index, b) for b in range(self.store.n_blocks)
        ]

    def handles(self, time_index: int = 0) -> list:
        return self.store.handles(time_index)

    @property
    def n_timesteps(self) -> int:
        return self.store.n_timesteps

    @property
    def n_blocks(self) -> int:
        return self.store.n_blocks

    @property
    def times(self) -> list[float]:
        return self.store.times
