"""Block sources: where data items ultimately come from.

The DMS "handles raw data without any information about its type or
structure.  For accessing this data, manipulation methods have to be
implemented on the application layer" (§4).  A :class:`BlockSource` is
that application-layer manipulation method for multi-block CFD data: it
materializes a named item's payload and knows the item's modeled
(paper-scale) size for cost accounting.
"""

from __future__ import annotations

from typing import Protocol

from ..grids.block import StructuredBlock
from ..io.dataset_io import DatasetStore
from ..synth.base import SyntheticDataset
from .items import ItemName, block_item

__all__ = ["BlockSource", "SyntheticSource", "StoreSource"]


class BlockSource(Protocol):
    """Application-layer loader for named block items."""

    name: str

    def get(self, item: ItemName) -> StructuredBlock: ...

    def modeled_bytes(self, item: ItemName) -> int: ...

    def item_sequence(self, time_index: int) -> list[ItemName]: ...

    def handles(self, time_index: int = 0) -> list: ...

    @property
    def n_timesteps(self) -> int: ...

    @property
    def n_blocks(self) -> int: ...

    @property
    def times(self) -> list[float]: ...


def _indices(item: ItemName) -> tuple[int, int]:
    time_index = item.param("time")
    block_id = item.param("block")
    if time_index is None or block_id is None:
        raise KeyError(f"item {item} does not name a block (missing time/block)")
    return int(time_index), int(block_id)


class SyntheticSource:
    """Serves items straight from a :class:`SyntheticDataset` generator."""

    def __init__(self, dataset: SyntheticDataset):
        self.dataset = dataset
        self.name = dataset.spec.name

    def get(self, item: ItemName) -> StructuredBlock:
        t, b = _indices(item)
        return self.dataset.build_block(t, b)

    def modeled_bytes(self, item: ItemName) -> int:
        _, b = _indices(item)
        return self.dataset.spec.block_bytes(b)

    def item_sequence(self, time_index: int) -> list[ItemName]:
        return [
            block_item(self.name, time_index, b)
            for b in range(self.dataset.spec.n_blocks)
        ]

    def handles(self, time_index: int = 0) -> list:
        return self.dataset.handles(time_index)

    @property
    def n_timesteps(self) -> int:
        return self.dataset.spec.n_timesteps

    @property
    def n_blocks(self) -> int:
        return self.dataset.spec.n_blocks

    @property
    def times(self) -> list[float]:
        return self.dataset.spec.times


class StoreSource:
    """Serves items from an on-disk :class:`DatasetStore`."""

    def __init__(self, store: DatasetStore):
        self.store = store
        self.name = store.name

    def get(self, item: ItemName) -> StructuredBlock:
        t, b = _indices(item)
        return self.store.read_block(t, b)

    def modeled_bytes(self, item: ItemName) -> int:
        _, b = _indices(item)
        rec = self.store.meta["blocks"][b]
        ni, nj, nk = rec["modeled_shape"]
        from ..synth.base import BYTES_PER_POINT

        return ni * nj * nk * BYTES_PER_POINT

    def item_sequence(self, time_index: int) -> list[ItemName]:
        return [
            block_item(self.name, time_index, b) for b in range(self.store.n_blocks)
        ]

    def handles(self, time_index: int = 0) -> list:
        return self.store.handles(time_index)

    @property
    def n_timesteps(self) -> int:
        return self.store.n_timesteps

    @property
    def n_blocks(self) -> int:
        return self.store.n_blocks

    @property
    def times(self) -> list[float]:
        return self.store.times
