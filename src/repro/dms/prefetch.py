"""Prefetchers: OBL, prefetch-on-miss, and the Markov(+OBL) predictor.

"The system prefetcher uses sequential prefetching with
one-block-lookahead (OBL, loading the successor block) or
prefetch-on-miss (prefetching of next block only when a miss occurs) as
well as a markov prefetcher that learns relationships between blocks
over time."  The variant used in the paper falls back to OBL whenever
the Markov table has no successor information for the current block
(§4.2).

Prefetchers observe the access stream via :meth:`observe` and emit
predicted keys; actually loading them is the proxy's business.  The
"next block" relation for sequential prefetchers is an explicit
ordering (file-storage order by default), since "neighboring relations
in 3-dimensional CFD data sets are not obvious at all times".
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

__all__ = [
    "Prefetcher",
    "NoPrefetcher",
    "OBLPrefetcher",
    "PrefetchOnMissPrefetcher",
    "MarkovPrefetcher",
    "MarkovOBLPrefetcher",
    "SequenceOrder",
    "TransitionTable",
    "make_prefetcher",
]


class TransitionTable:
    """Array-backed successor counts for one Markov context.

    Replaces the previous ``Counter`` per context: successor counts
    live in a dense ``list`` indexed through an interning dict, and the
    running argmax is cached so the ``width == 1`` prediction (the
    common configuration) is a single list index instead of a
    ``most_common`` sort per observation.

    Prediction order is identical to ``Counter.most_common``: highest
    count first, ties broken by first-observation order.  For the
    cached argmax this follows from counts only ever increasing — the
    winner is replaced exactly when a successor strictly exceeds it or
    ties it with an earlier insertion index.  Read access mirrors the
    Counter mapping API (``table[key]``, ``.get``) for callers and
    tests that inspect learned counts.
    """

    __slots__ = ("keys", "counts", "pos", "best")

    def __init__(self) -> None:
        self.keys: list[Hashable] = []
        self.counts: list[int] = []
        self.pos: dict[Hashable, int] = {}
        self.best = -1

    def increment(self, key: Hashable) -> None:
        i = self.pos.get(key)
        if i is None:
            i = self.pos[key] = len(self.keys)
            self.keys.append(key)
            self.counts.append(0)
        counts = self.counts
        count = counts[i] + 1
        counts[i] = count
        best = self.best
        if best < 0 or count > counts[best] or (count == counts[best] and i < best):
            self.best = i

    def top(self, width: int) -> list:
        if self.best < 0:
            return []
        if width == 1:
            return [self.keys[self.best]]
        order = sorted(
            range(len(self.counts)), key=self.counts.__getitem__, reverse=True
        )
        return [self.keys[i] for i in order[:width]]

    # -- Counter-compatible reads -------------------------------------
    def __getitem__(self, key: Hashable) -> int:
        i = self.pos.get(key)
        return self.counts[i] if i is not None else 0

    def get(self, key: Hashable, default=None):
        i = self.pos.get(key)
        return self.counts[i] if i is not None else default

    def __len__(self) -> int:
        return len(self.keys)

    def __bool__(self) -> bool:
        return bool(self.keys)

    def __iter__(self):
        return iter(self.keys)

    def items(self):
        return zip(self.keys, self.counts)


class SequenceOrder:
    """An explicit "next block" relation over item keys."""

    def __init__(self, sequence: Sequence[Hashable]):
        self._next: dict[Hashable, Hashable] = {}
        for a, b in zip(sequence, list(sequence)[1:]):
            self._next[a] = b

    def successor(self, key: Hashable) -> Hashable | None:
        return self._next.get(key)

    def extend(self, sequence: Sequence[Hashable]) -> None:
        for a, b in zip(sequence, list(sequence)[1:]):
            self._next.setdefault(a, b)


class Prefetcher:
    """Base: observe accesses, suggest keys to prefetch."""

    name = "base"

    def observe(self, key: Hashable, was_hit: bool) -> list[Hashable]:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget learned state (a new investigation session)."""

    def describe(self) -> dict[str, object]:
        """Observability summary (name + learned-state size, if any)."""
        return {"name": self.name}


class NoPrefetcher(Prefetcher):
    """Prefetching disabled."""

    name = "none"

    def observe(self, key: Hashable, was_hit: bool) -> list[Hashable]:
        return []


class OBLPrefetcher(Prefetcher):
    """One-block-lookahead: always suggest the successor block."""

    name = "obl"

    def __init__(self, order: SequenceOrder):
        self.order = order

    def observe(self, key: Hashable, was_hit: bool) -> list[Hashable]:
        nxt = self.order.successor(key)
        return [nxt] if nxt is not None else []


class PrefetchOnMissPrefetcher(Prefetcher):
    """Suggest the successor only when the access was a miss."""

    name = "on-miss"

    def __init__(self, order: SequenceOrder):
        self.order = order

    def observe(self, key: Hashable, was_hit: bool) -> list[Hashable]:
        if was_hit:
            return []
        nxt = self.order.successor(key)
        return [nxt] if nxt is not None else []


class MarkovPrefetcher(Prefetcher):
    """First-order Markov predictor over the observed request stream.

    Builds a probability graph of successor relations; suggests the
    ``width`` most likely successors of the current key.  Higher-order
    variants condition on the last ``order`` keys.
    """

    name = "markov"

    def __init__(self, order: int = 1, width: int = 1):
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self.order = order
        self.width = width
        self._table: dict[tuple, TransitionTable] = {}
        self._history: list[Hashable] = []

    def observe(self, key: Hashable, was_hit: bool) -> list[Hashable]:
        table = self._table
        history = self._history
        if len(history) >= self.order:
            context = tuple(history[-self.order :])
            transitions = table.get(context)
            if transitions is None:
                transitions = table[context] = TransitionTable()
            transitions.increment(key)
        history.append(key)
        if len(history) > self.order:
            del history[: len(history) - self.order]
        context = tuple(history[-self.order :])
        transitions = table.get(context)
        if not transitions:
            return []
        return transitions.top(self.width)

    def reset(self) -> None:
        self._table.clear()
        self._history.clear()

    def describe(self) -> dict[str, object]:
        return {"name": self.name, "order": self.order, "width": self.width,
                "n_contexts": self.n_contexts}

    def _peek(self, key: Hashable) -> list[Hashable]:
        """Current prediction after ``key`` without recording a transition."""
        if self.order != 1:
            return []
        transitions = self._table.get((key,))
        if not transitions:
            return []
        return transitions.top(self.width)

    @property
    def n_contexts(self) -> int:
        return len(self._table)


class MarkovOBLPrefetcher(Prefetcher):
    """Markov predictor with OBL fallback (the paper's variant).

    "Whenever the markov prefetcher is incapable to provide a prefetch
    suggestion because of missing successor information about the
    current block, the 'next' block is suggested by OBL."
    """

    name = "markov+obl"

    def __init__(self, order: SequenceOrder, markov_order: int = 1, width: int = 1):
        self.markov = MarkovPrefetcher(order=markov_order, width=width)
        self.obl = OBLPrefetcher(order)
        self.fallbacks = 0  #: how often OBL had to stand in

    def observe(self, key: Hashable, was_hit: bool) -> list[Hashable]:
        suggestions = self.markov.observe(key, was_hit)
        if suggestions:
            return suggestions
        self.fallbacks += 1
        return self.obl.observe(key, was_hit)

    def reset(self) -> None:
        self.markov.reset()
        self.fallbacks = 0

    def describe(self) -> dict[str, object]:
        return {"name": self.name, "fallbacks": self.fallbacks,
                "n_contexts": self.markov.n_contexts}


class BlockMarkovPrefetcher(Prefetcher):
    """Markov prediction on *spatial* block ids, lifted back to items.

    Particle traces request the same block at two adjacent time levels
    and then move to a neighboring block; the recurring structure is the
    block-to-block trajectory, not the (time, block) pair — a pair is
    requested only once per trace, so an item-level Markov table could
    never predict a compulsory miss.  This prefetcher learns
    ``block -> next block`` transitions (collapsing the duplicate
    adjacent-time-level requests) and suggests the predicted block at
    both bracketing time levels.  OBL over the block-id file order is
    the fallback while a transition is still unknown (§4.2).

    ``table`` may be shared between the proxies of a work group: the
    paper's "statistical unit of the DMS" that feeds the system
    prefetcher is a central component, so every worker's observations
    train one probability graph.  The per-proxy traversal state
    (``_last_block``) stays private.
    """

    name = "block-markov"

    def __init__(
        self,
        dataset: str,
        n_timesteps: int,
        block_order: Sequence[Hashable],
        width: int = 1,
        time_offset: int = 0,
        table: dict | None = None,
    ):
        from .items import block_item

        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        self._block_item = block_item
        self.dataset = dataset
        self.n_timesteps = n_timesteps
        self.time_offset = time_offset
        self.width = width
        #: ``block -> TransitionTable``; may be shared between proxies.
        self.table: dict = table if table is not None else {}
        self.obl = OBLPrefetcher(SequenceOrder(block_order))
        self.fallbacks = 0
        self._last_block: Hashable | None = None

    def _predict(self, block: Hashable) -> list[Hashable]:
        transitions = self.table.get(block)
        if not transitions:
            return []
        return transitions.top(self.width)

    def observe(self, key, was_hit: bool) -> list:
        block = key.param("block")
        time_index = key.param("time")
        if block is None or time_index is None:
            return []
        if block != self._last_block:
            if self._last_block is not None:
                transitions = self.table.get(self._last_block)
                if transitions is None:
                    transitions = self.table[self._last_block] = TransitionTable()
                transitions.increment(block)
            self._last_block = block
        t_hi = self.time_offset + self.n_timesteps - 1
        predicted: list = []
        # Temporal lookahead first: a trace that touches (t, b) will
        # bracket into (t+1, b) next and (t+2, b) soon after — the
        # "uncached next time levels" pattern of time-varying data (§7.2).
        for dt in (1, 2):
            if time_index + dt <= t_hi:
                predicted.append(
                    self._block_item(self.dataset, time_index + dt, block)
                )
        # Then the learned spatial transition, with OBL as fallback.
        blocks = self._predict(block)
        if not blocks:
            self.fallbacks += 1
            blocks = self.obl.observe(block, was_hit)
        for b in blocks:
            for t in (time_index, min(time_index + 1, t_hi)):
                item = self._block_item(self.dataset, t, b)
                if item != key and item not in predicted:
                    predicted.append(item)
        return predicted

    @property
    def n_contexts(self) -> int:
        return len(self.table)

    def reset(self) -> None:
        self.table.clear()
        self.fallbacks = 0
        self._last_block = None

    def describe(self) -> dict[str, object]:
        return {"name": self.name, "fallbacks": self.fallbacks,
                "n_contexts": self.n_contexts, "width": self.width}


def make_prefetcher(
    name: str,
    order: SequenceOrder | None = None,
    **kwargs,
) -> Prefetcher:
    """Factory: 'none', 'obl', 'on-miss', 'markov', 'markov+obl'."""
    name = name.lower()
    if name == "none":
        return NoPrefetcher()
    if name == "markov":
        return MarkovPrefetcher(**kwargs)
    if order is None:
        raise ValueError(f"prefetcher {name!r} needs a SequenceOrder")
    if name == "obl":
        return OBLPrefetcher(order)
    if name == "on-miss":
        return PrefetchOnMissPrefetcher(order)
    if name == "markov+obl":
        return MarkovOBLPrefetcher(order, **kwargs)
    raise ValueError(f"unknown prefetcher {name!r}")
