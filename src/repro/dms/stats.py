"""The statistical unit of the DMS.

"...the system prefetch mechanism utilizes information gathered from a
statistical unit of the DMS that records various information of the
system behavior" (§4.2).  This module also tracks prefetch usefulness
(how many misses prefetching eliminated — paper Fig. 14 reports up to
95 % of cache misses removed for pathlines).

The counters here are the *source of truth*; :meth:`DMSStatistics.publish`
syncs them into a :class:`repro.obs.MetricsRegistry` so per-node and
global views unify under one metric namespace (``viracocha_dms_*``).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["DMSStatistics"]

#: the only cache-lookup outcomes proxies report; anything else is
#: normalized to a miss (defensive: an unknown tier label must never
#: inflate prefetch usefulness).
_HIT_TIERS = frozenset({"l1", "l2"})
_KNOWN_WHERE = frozenset({"l1", "l2", "miss"})

#: default cap on the rolling request log (ring buffer) so long
#: pathline runs don't grow memory linearly with every block request.
DEFAULT_REQUEST_LOG_CAP = 10_000


@dataclass
class DMSStatistics:
    """Counters describing observed DMS behavior on one node or globally."""

    requests: int = 0
    hits_l1: int = 0
    hits_l2: int = 0
    misses: int = 0
    loads_by_strategy: Counter = field(default_factory=Counter)
    #: simulated seconds spent in forced loads, by strategy — the raw
    #: material for the critical-path load_disk/load_wire phase split.
    load_seconds_by_strategy: Counter = field(default_factory=Counter)
    bytes_loaded: int = 0
    prefetches_issued: int = 0
    prefetches_useful: int = 0
    prefetches_dropped: int = 0
    #: demand misses that at least overlapped an in-flight prefetch.
    misses_covered: int = 0
    #: forced loads that attached to another node's in-flight load
    #: instead of issuing their own (cluster-wide single flight).
    dedup_follows: int = 0
    #: fileserver bytes those followers did not have to re-read.
    dedup_bytes_saved: int = 0
    #: per-transfer compress-vs-raw decisions ({"compress": n, "raw": m}).
    compression_decisions: Counter = field(default_factory=Counter)
    #: wire bytes saved by compressed transfers (raw - shipped).
    compression_bytes_saved: int = 0
    #: simulated seconds spent in codec work (compress + decompress).
    compression_seconds: float = 0.0
    #: derived-item (e.g. block-pyramid) cache lookups, by outcome.
    #: Separate from the block counters: derived items have no load
    #: path, so a derived miss means recomputation, not a transfer.
    derived_hits_l1: int = 0
    derived_hits_l2: int = 0
    derived_misses: int = 0
    #: most recent request keys, capped at ``max_request_log`` entries.
    request_log: deque = None  # type: ignore[assignment]
    _pending_prefetched: set = field(default_factory=set)
    max_request_log: int = DEFAULT_REQUEST_LOG_CAP
    #: pre-bound metric handles, keyed by (registry id, node label) so
    #: repeated :meth:`publish` calls skip the (name, label-key) lookup.
    _handles: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_request_log < 1:
            raise ValueError(
                f"max_request_log must be >= 1, got {self.max_request_log}"
            )
        if self.request_log is None:
            self.request_log = deque(maxlen=self.max_request_log)
        elif not isinstance(self.request_log, deque) or (
            self.request_log.maxlen != self.max_request_log
        ):
            self.request_log = deque(self.request_log, maxlen=self.max_request_log)

    # --------------------------------------------------------- recording
    @staticmethod
    def normalize_where(where: str) -> str:
        """Map a cache-lookup outcome onto {'l1', 'l2', 'miss'}."""
        return where if where in _KNOWN_WHERE else "miss"

    def record_request(self, key: Hashable, where: str) -> None:
        where = self.normalize_where(where)
        self.requests += 1
        self.request_log.append(key)
        if where == "l1":
            self.hits_l1 += 1
        elif where == "l2":
            self.hits_l2 += 1
        else:
            self.misses += 1
        # Prefetch usefulness counts only on genuine cache hits; a miss
        # that overlapped an in-flight prefetch is credited separately
        # via record_inflight_hit.
        if key in self._pending_prefetched and where in _HIT_TIERS:
            self.prefetches_useful += 1
            self._pending_prefetched.discard(key)

    def record_load(self, strategy: str, nbytes: int, seconds: float = 0.0) -> None:
        self.loads_by_strategy[strategy] += 1
        self.load_seconds_by_strategy[strategy] += seconds
        self.bytes_loaded += nbytes

    def record_derived(self, where: str | None) -> None:
        """One derived-item cache lookup; ``where`` is l1/l2 or None."""
        if where == "l1":
            self.derived_hits_l1 += 1
        elif where == "l2":
            self.derived_hits_l2 += 1
        else:
            self.derived_misses += 1

    def record_dedup_follow(self, nbytes: int) -> None:
        """A forced load attached to another node's in-flight load."""
        self.dedup_follows += 1
        self.dedup_bytes_saved += nbytes

    def record_compression(
        self, decision: str, nbytes: int, wire_bytes: int, seconds: float
    ) -> None:
        """One compress-vs-raw call on the transfer path.

        ``decision`` is ``"compress"`` or ``"raw"``; ``wire_bytes`` is
        what actually crossed the link, ``seconds`` the simulated codec
        time charged (0 for raw transfers).
        """
        self.compression_decisions[decision] += 1
        self.compression_bytes_saved += nbytes - wire_bytes
        self.compression_seconds += seconds

    def record_prefetch(self, key: Hashable, issued: bool) -> None:
        if issued:
            self.prefetches_issued += 1
            self._pending_prefetched.add(key)
        else:
            self.prefetches_dropped += 1

    def record_inflight_hit(self, key: Hashable) -> None:
        """A demand access arrived while the prefetch was still loading.

        The prefetch still overlapped part of the I/O, so it counts as
        useful even though the demand access itself was a miss.
        """
        if key in self._pending_prefetched:
            self.prefetches_useful += 1
            self.misses_covered += 1
            self._pending_prefetched.discard(key)

    def forget_prefetched(self, key: Hashable) -> None:
        """A prefetched item was evicted before any demand access."""
        self._pending_prefetched.discard(key)

    # ------------------------------------------------------------ derived
    @property
    def hits(self) -> int:
        return self.hits_l1 + self.hits_l2

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.requests if self.requests else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        return (
            self.prefetches_useful / self.prefetches_issued
            if self.prefetches_issued
            else 0.0
        )

    def misses_eliminated_fraction(self, baseline_misses: int) -> float:
        """Fraction of a no-prefetch baseline's misses this run avoided."""
        if baseline_misses <= 0:
            return 0.0
        return max(0.0, 1.0 - self.misses / baseline_misses)

    def merge(self, other: "DMSStatistics") -> None:
        self.requests += other.requests
        self.hits_l1 += other.hits_l1
        self.hits_l2 += other.hits_l2
        self.misses += other.misses
        self.loads_by_strategy.update(other.loads_by_strategy)
        self.load_seconds_by_strategy.update(other.load_seconds_by_strategy)
        self.bytes_loaded += other.bytes_loaded
        self.prefetches_issued += other.prefetches_issued
        self.prefetches_useful += other.prefetches_useful
        self.prefetches_dropped += other.prefetches_dropped
        self.misses_covered += other.misses_covered
        self.dedup_follows += other.dedup_follows
        self.dedup_bytes_saved += other.dedup_bytes_saved
        self.compression_decisions.update(other.compression_decisions)
        self.compression_bytes_saved += other.compression_bytes_saved
        self.compression_seconds += other.compression_seconds
        self.derived_hits_l1 += other.derived_hits_l1
        self.derived_hits_l2 += other.derived_hits_l2
        self.derived_misses += other.derived_misses
        self.request_log.extend(other.request_log)

    # ---------------------------------------------------------- metrics
    def publish(self, registry, node: str = "all") -> None:
        """Sync these cumulative counters into a metrics registry.

        Safe to call repeatedly (idempotent per state): counters are
        *set* to the current totals rather than incremented, gauges
        carry the derived rates.  ``node`` labels the series so one
        registry holds every proxy's view next to the global merge.
        """
        handles = self._handles.get((id(registry), node))
        if handles is None:
            handles = self._handles[(id(registry), node)] = (
                self._bind(registry, node)
            )
        (requests, hits_l1, hits_l2, misses, bytes_loaded, issued, useful,
         dropped, covered, hit_rate, accuracy, loads, load_seconds) = handles
        requests.set(self.requests)
        hits_l1.set(self.hits_l1)
        hits_l2.set(self.hits_l2)
        misses.set(self.misses)
        bytes_loaded.set(self.bytes_loaded)
        for strategy, count in sorted(self.loads_by_strategy.items()):
            handle = loads.get(strategy)
            if handle is None:
                handle = loads[strategy] = registry.counter(
                    "viracocha_dms_loads_total",
                    {"node": node, "strategy": strategy},
                    help="forced loads by loading strategy",
                )
            handle.set(count)
        for strategy, seconds in sorted(self.load_seconds_by_strategy.items()):
            handle = load_seconds.get(strategy)
            if handle is None:
                handle = load_seconds[strategy] = registry.counter(
                    "viracocha_dms_load_seconds_total",
                    {"node": node, "strategy": strategy},
                    help="simulated seconds spent in forced loads by strategy",
                )
            handle.set(seconds)
        issued.set(self.prefetches_issued)
        useful.set(self.prefetches_useful)
        dropped.set(self.prefetches_dropped)
        covered.set(self.misses_covered)
        hit_rate.set(self.hit_rate)
        accuracy.set(self.prefetch_accuracy)
        # Cluster-dedup and wire-compression series appear only once
        # the features have fired, so default runs publish exactly the
        # pre-existing metric set.
        labels = {"node": node}
        if self.dedup_follows:
            registry.counter(
                "viracocha_dms_dedup_follows_total", labels,
                help="forced loads that attached to another node's in-flight load",
            ).set(self.dedup_follows)
            registry.counter(
                "viracocha_dms_dedup_bytes_saved_total", labels,
                help="fileserver bytes saved by cluster-wide single flight",
            ).set(self.dedup_bytes_saved)
        for decision, count in sorted(self.compression_decisions.items()):
            registry.counter(
                "viracocha_dms_compression_decisions_total",
                {**labels, "decision": decision},
                help="per-transfer compress-vs-raw decisions",
            ).set(count)
        if self.compression_decisions:
            registry.counter(
                "viracocha_dms_compression_bytes_saved_total", labels,
                help="wire bytes saved by compressed transfers",
            ).set(self.compression_bytes_saved)
            registry.counter(
                "viracocha_dms_compression_seconds_total", labels,
                help="simulated codec seconds (compress + decompress)",
            ).set(self.compression_seconds)
        # Derived-item series appear only for commands that cache
        # derived data (e.g. progressive pyramids), same contract.
        if self.derived_hits_l1 or self.derived_hits_l2 or self.derived_misses:
            for tier, value in (
                ("l1", self.derived_hits_l1), ("l2", self.derived_hits_l2),
            ):
                registry.counter(
                    "viracocha_dms_derived_hits_total", {**labels, "tier": tier},
                    help="derived-item cache hits by tier",
                ).set(value)
            registry.counter(
                "viracocha_dms_derived_misses_total", labels,
                help="derived-item cache misses (recomputations)",
            ).set(self.derived_misses)

    def _bind(self, registry, node: str) -> tuple:
        """Create/look up every fixed series once; see ``_handles``."""
        labels = {"node": node}
        return (
            registry.counter(
                "viracocha_dms_requests_total", labels,
                help="block requests seen by the DMS",
            ),
            registry.counter(
                "viracocha_dms_hits_total", {**labels, "tier": "l1"},
                help="cache hits by tier",
            ),
            registry.counter(
                "viracocha_dms_hits_total", {**labels, "tier": "l2"},
                help="cache hits by tier",
            ),
            registry.counter(
                "viracocha_dms_misses_total", labels, help="cache misses",
            ),
            registry.counter(
                "viracocha_dms_bytes_loaded_total", labels,
                help="bytes brought in by forced loads",
            ),
            registry.counter(
                "viracocha_dms_prefetches_issued_total", labels,
                help="prefetch loads started",
            ),
            registry.counter(
                "viracocha_dms_prefetches_useful_total", labels,
                help="prefetches later hit by demand",
            ),
            registry.counter(
                "viracocha_dms_prefetches_dropped_total", labels,
                help="prefetch suggestions not issued",
            ),
            registry.counter(
                "viracocha_dms_misses_covered_total", labels,
                help="demand misses that overlapped an in-flight prefetch",
            ),
            registry.gauge(
                "viracocha_dms_hit_rate", labels, help="cache hit rate",
            ),
            registry.gauge(
                "viracocha_dms_prefetch_accuracy", labels,
                help="useful / issued prefetches",
            ),
            {},  # per-strategy viracocha_dms_loads_total handles
            {},  # per-strategy viracocha_dms_load_seconds_total handles
        )
